//! Commutativity-based optimistic concurrency (transactional boosting)
//! with abstract locks derived from access points.
//!
//! Sixteen threads hammer a shared "bank" of counters: deposits commute,
//! so the abstract lock manager lets them all run in parallel (zero
//! conflicts), while balance audits serialize against pending deposits via
//! conflict-and-retry.
//!
//! Run with: `cargo run --release --example boosted_accounts`

use crace::{translate, LockManager};
use crace_spec::builtin;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let spec = builtin::counter();
    let inc = spec.method_id("inc").unwrap();
    let read = spec.method_id("read").unwrap();
    let manager = Arc::new(LockManager::new(Arc::new(translate(&spec).unwrap())));
    let balance = Arc::new(AtomicI64::new(0));
    let audits_done = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Depositors: all increments commute.
    for _ in 0..8 {
        let manager = Arc::clone(&manager);
        let balance = Arc::clone(&balance);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                loop {
                    let mut tx = manager.begin();
                    if manager.try_lock(&mut tx, inc, &[]) {
                        balance.fetch_add(1, Ordering::Relaxed);
                        manager.commit(tx);
                        break;
                    }
                    manager.abort(tx);
                    std::thread::yield_now();
                }
            }
        }));
    }
    // An auditor: balance reads do NOT commute with deposits, so they
    // conflict and retry until a quiescent window.
    {
        let manager = Arc::clone(&manager);
        let balance = Arc::clone(&balance);
        let audits_done = Arc::clone(&audits_done);
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                loop {
                    let mut tx = manager.begin();
                    if manager.try_lock(&mut tx, read, &[]) {
                        let _ = balance.load(Ordering::Relaxed);
                        manager.commit(tx);
                        audits_done.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    manager.abort(tx);
                    std::thread::yield_now();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let stats = manager.stats();
    println!("final balance: {}", balance.load(Ordering::Relaxed));
    println!("audits completed: {}", audits_done.load(Ordering::Relaxed));
    println!(
        "lock stats: {} acquired, {} conflicts, {} commits, {} aborts",
        stats.acquired, stats.conflicts, stats.commits, stats.aborts
    );
    assert_eq!(balance.load(Ordering::Relaxed), 8 * 2_000);
    println!(
        "\ndeposits conflicted only with audits — commuting operations ran \
         lock-free in parallel."
    );
}
