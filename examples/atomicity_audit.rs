//! Atomicity checking over access points — the §8 extension in action.
//!
//! Shows the generalization the paper argues for: a read-write atomicity
//! checker must flag any write-interleaved transactions, while the
//! commutativity-aware checker accepts interleavings of *commuting*
//! operations (counter increments) and still rejects genuinely
//! non-serializable ones (dictionary read-modify-writes).
//!
//! Run with: `cargo run --example atomicity_audit`

use crace::{translate, Action, AtomicityChecker, ObjId, ThreadId, Value};
use crace_spec::builtin;
use std::sync::Arc;

fn main() {
    let o = ObjId(1);
    let (t1, t2) = (ThreadId(1), ThreadId(2));

    // 1. Interleaved counter increments: serializable, because incs
    //    commute — a low-level checker would cry wolf here.
    let counter = builtin::counter();
    let inc = counter.method_id("inc").unwrap();
    let mut checker = AtomicityChecker::new();
    checker.register(o, Arc::new(translate(&counter).unwrap()));
    checker.begin(t1);
    checker.action(t1, &Action::new(o, inc, vec![], Value::Nil));
    checker.begin(t2);
    checker.action(t2, &Action::new(o, inc, vec![], Value::Nil));
    checker.action(t1, &Action::new(o, inc, vec![], Value::Nil));
    checker.action(t2, &Action::new(o, inc, vec![], Value::Nil));
    checker.end(t1);
    checker.end(t2);
    println!(
        "interleaved counter increments: {} violation(s) — increments commute",
        checker.violations().len()
    );
    assert!(checker.violations().is_empty());

    // 2. Interleaved dictionary read-modify-writes on one key: a classic
    //    lost update, correctly flagged as non-serializable.
    let dict = builtin::dictionary();
    let get = dict.method_id("get").unwrap();
    let put = dict.method_id("put").unwrap();
    let mut checker = AtomicityChecker::new();
    checker.register(o, Arc::new(translate(&dict).unwrap()));
    checker.begin(t1);
    checker.action(t1, &Action::new(o, get, vec![Value::Int(7)], Value::Int(0)));
    checker.begin(t2);
    checker.action(t2, &Action::new(o, get, vec![Value::Int(7)], Value::Int(0)));
    checker.action(
        t1,
        &Action::new(o, put, vec![Value::Int(7), Value::Int(1)], Value::Int(0)),
    );
    checker.action(
        t2,
        &Action::new(o, put, vec![Value::Int(7), Value::Int(2)], Value::Int(1)),
    );
    checker.end(t1);
    checker.end(t2);
    println!(
        "interleaved dictionary RMWs:    {} violation(s):",
        checker.violations().len()
    );
    for v in checker.violations() {
        println!("  - {v}");
    }
    assert_eq!(checker.violations().len(), 1);
}
