//! Audit the mini-MVStore with both detectors, reproducing the two H2
//! findings of §7:
//!
//! 1. races on the `freedPageSpace` map (lost space accounting),
//! 2. races on the `chunks` map (duplicated chunk computation),
//!
//! and showing that FastTrack sees neither — its races live in plain
//! statistics fields instead.
//!
//! Run with: `cargo run --release --example mvstore_audit`

use crace::workloads::circuits::{run_circuit, Circuit, CircuitConfig};
use crace::{Analysis, FastTrack, Rd2};
use std::sync::Arc;

fn main() {
    let config = CircuitConfig {
        workers: 4,
        ops_per_worker: 5_000,
        keys_per_worker: 512,
        busy_units: 10,
        seed: 42,
        locked_maintenance: false, // stress mode: make the buggy paths hot
    };

    println!("circuit: {}", Circuit::ComplexConcurrency);
    println!(
        "         {} workers × {} ops, {} keys each\n",
        config.workers, config.ops_per_worker, config.keys_per_worker
    );

    // RD2: commutativity races at the map interface.
    let rd2 = Arc::new(Rd2::new());
    let r = run_circuit(Circuit::ComplexConcurrency, rd2.clone(), &config);
    let rd2_report = rd2.report();
    println!("RD2:       {:>9.0} qps, races {rd2_report}", r.qps());
    for race in rd2_report.samples().iter().take(4) {
        println!("  - {race}");
    }
    println!(
        "  → races concentrate on {} map object(s): the freedPageSpace\n \
           read-modify-write and the chunks check-then-act.\n",
        rd2_report.distinct()
    );

    // FastTrack: low-level races in plain fields; the map misuse is
    // invisible.
    let ft = Arc::new(FastTrack::new());
    let r = run_circuit(Circuit::ComplexConcurrency, ft.clone(), &config);
    let ft_report = ft.report();
    println!("FastTrack: {:>9.0} qps, races {ft_report}", r.qps());
    for race in ft_report.samples().iter().take(4) {
        println!("  - {race}");
    }
    println!(
        "  → {} distinct racy memory locations (statistics fields), but\n \
           zero insight into the harmful map-level races.",
        ft_report.distinct()
    );

    assert!(rd2_report.total() > 0);
    assert!(rd2_report.distinct() <= 2);
}
