//! Quickstart: detect the paper's running example race.
//!
//! Two threads `put` the same key of a shared dictionary concurrently; a
//! `size()` after the joinall is safely ordered. RD2 reports exactly the
//! put/put commutativity race.
//!
//! Run with: `cargo run --example quickstart`

use crace::{translate, Analysis, MonitoredDict, Rd2, Runtime, Value};
use std::sync::Arc;

fn main() {
    // 1. The detector and the instrumented runtime.
    let rd2 = Arc::new(Rd2::new());
    let rt = Runtime::new(rd2.clone());
    let main = rt.main_ctx();

    // 2. A monitored dictionary (ConcurrentHashMap analogue), checked
    //    against the Fig. 6 specification.
    let dict = MonitoredDict::new(&rt);

    // 3. The §2 program: two threads race to connect to 'a.com'.
    let mut workers = Vec::new();
    for connection in [1i64, 2] {
        let dict = dict.clone();
        workers.push(rt.spawn(&main, move |ctx| {
            dict.put(ctx, Value::str("a.com"), Value::Int(connection));
        }));
    }
    for w in workers {
        w.join(&main).unwrap(); // joinall
    }
    let connections = dict.size(&main); // safely ordered after the joins

    // 4. The verdict.
    let report = rd2.report();
    println!("{connections} connection(s) established");
    println!("commutativity races: {report}");
    for race in report.samples() {
        println!("  - {race}");
    }
    assert_eq!(report.total(), 1, "the two same-key puts race");

    // Bonus: what the detector ran on — the Fig. 7 access points.
    let compiled = translate(MonitoredDict::spec()).expect("builtin is ECL");
    println!("\n{compiled}");
}
