//! Offline analysis of a recorded trace: write a trace in the textual
//! format, then replay it into RD2, the direct detector and FastTrack —
//! the `crace replay` workflow as a library call.
//!
//! Run with: `cargo run --example offline_replay`

use crace::cli::{parse_trace, render_trace};
use crace::{translate, Direct, FastTrack, ObjId, TraceDetector};
use crace_model::replay;
use crace_spec::builtin;
use std::sync::Arc;

const TRACE: &str = r#"
# The Fig. 3 trace, without the joinall (so size() also races).
fork 0 1
fork 0 2
act 2 o1 put("a.com", 1)/nil
act 1 o1 put("a.com", 2)/1
act 0 o1 size()/1
"#;

fn main() {
    let spec = builtin::dictionary();
    let trace = parse_trace(TRACE, &spec).expect("well-formed trace");
    println!("trace ({} events):\n{trace}", trace.len());

    // RD2 — the access-point detector.
    let rd2 = TraceDetector::new();
    rd2.register(ObjId(1), Arc::new(translate(&spec).unwrap()));
    let report = replay(&trace, &rd2);
    println!("RD2:       {report}");
    for r in report.samples() {
        println!("  - {r}");
    }

    // The direct detector agrees on existence, counting pairs.
    let direct = Direct::new();
    direct.register(ObjId(1), Arc::new(spec.clone()));
    println!("direct:    {}", replay(&trace, &direct));

    // FastTrack sees no memory events in this trace at all.
    println!("fasttrack: {}", replay(&trace, &FastTrack::new()));

    // Round-trip: render the parsed trace back to text.
    let rendered = render_trace(&trace, &spec);
    assert_eq!(parse_trace(&rendered, &spec).unwrap(), trace);
    println!("\nround-tripped trace:\n{rendered}");
}
