//! Specification playground: parse ECL specifications, classify their
//! fragments, translate them to access points, and show the compiler-style
//! diagnostics on broken input.
//!
//! Run with: `cargo run --example spec_playground [path/to/spec.crace]`
//!
//! Without an argument, a tour of the builtin specifications is printed.

use crace::spec::builtin;
use crace::{parse_spec, translate};
use std::env;
use std::fs;

fn show(spec: &crace::Spec) {
    println!("──────────────────────────────────────────────");
    println!("{spec}\n");
    println!(
        "ECL: {} | undeclared pairs (default false): {}",
        spec.is_ecl(),
        spec.missing_rules().len()
    );
    match translate(spec) {
        Ok(compiled) => {
            let stats = compiled.stats();
            println!(
                "translated: {} symbolic classes → {} after optimization, \
                 max conflict degree {} (Θ(1) checks per action)\n",
                stats.raw_classes, stats.classes, stats.max_conflict_degree
            );
            println!("{compiled}");
        }
        Err(e) => println!("not translatable: {e}"),
    }
}

fn main() {
    if let Some(path) = env::args().nth(1) {
        let source = fs::read_to_string(&path).expect("read spec file");
        match parse_spec(&source) {
            Ok(spec) => show(&spec),
            Err(e) => {
                eprintln!("{}", e.render(&source));
                std::process::exit(1);
            }
        }
        return;
    }

    println!("=== builtin specifications ===");
    for spec in builtin::all() {
        show(&spec);
    }

    println!("\n=== diagnostics tour ===");
    for (label, bad) in [
        (
            "cross-action equality is outside ECL",
            "spec s { method m(a); commute m(x1), m(x2) when x1 == x2; }",
        ),
        (
            "arity mismatch",
            "spec s { method m(a, b); commute m(x), m(_, _) when true; }",
        ),
        (
            "asymmetric same-method rule",
            "spec s { method m(a) -> r; commute m(x1) -> r1, m(_) -> _ when x1 == r1; }",
        ),
        ("syntax error", "spec s { method m(; }"),
    ] {
        let err = parse_spec(bad).expect_err(label);
        println!("\n# {label}\n{}", err.render(bad));
    }
}
