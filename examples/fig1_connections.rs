//! The Fig. 1 motivating example: concurrently establishing connections to
//! a list of hosts, with and without duplicate hostnames.
//!
//! With duplicates, the successful `put` in one thread and the overwriting
//! `put` in another form a commutativity race, and a connection object is
//! created but never used (the leak §2 warns about).
//!
//! Run with: `cargo run --example fig1_connections`

use crace::workloads::connections::run_connections;
use crace::{Analysis, Rd2};
use std::sync::Arc;

fn audit(label: &str, hosts: &[&'static str]) {
    let rd2 = Arc::new(Rd2::new());
    let result = run_connections(rd2.clone(), hosts);
    let report = rd2.report();
    println!("== {label}: hosts = {hosts:?}");
    println!(
        "   {} connections established, {} connection objects created",
        result.connections, result.created
    );
    println!("   commutativity races: {report}");
    for race in report.samples().iter().take(3) {
        println!("     - {race}");
    }
    if result.created > result.connections as u64 {
        println!(
            "   ⚠ {} short-lived connection(s) leaked — the duplicate-host bug",
            result.created - result.connections as u64
        );
    }
    println!();
}

fn main() {
    audit("unique hosts", &["a.com", "b.com", "c.com"]);
    audit("duplicate hosts", &["a.com", "a.com", "b.com"]);
}
