//! Audit the Cassandra DynamicEndpointSnitch simulation — the third
//! finding of §7: entries are added to the `samples` map while its
//! `size()` is concurrently used as a performance hint during node-rank
//! recalculation.
//!
//! This is the Table 2 row where RD2 finds *more* races than FastTrack:
//! the snitch's maps are perfectly synchronized, so the misuse exists only
//! at the library interface.
//!
//! Run with: `cargo run --release --example snitch_audit`

use crace::workloads::snitch::{run_snitch, SnitchConfig};
use crace::{Analysis, FastTrack, NoopAnalysis, Rd2};
use std::sync::Arc;

fn main() {
    let config = SnitchConfig {
        nodes: 16,
        samplers: 4,
        updates_per_sampler: 5_000,
        rank_iterations: 200,
        busy_units: 10,
        seed: 1,
    };
    println!(
        "snitch: {} nodes, {} samplers × {} updates, 2 rankers × {} recalcs\n",
        config.nodes, config.samplers, config.updates_per_sampler, config.rank_iterations
    );

    let base = run_snitch(Arc::new(NoopAnalysis::new()), &config);
    println!("uninstrumented: {:.3} s", base.elapsed.as_secs_f64());

    let ft = Arc::new(FastTrack::new());
    let r = run_snitch(ft.clone(), &config);
    println!(
        "FastTrack:      {:.3} s, races {}",
        r.elapsed.as_secs_f64(),
        ft.report()
    );

    let rd2 = Arc::new(Rd2::new());
    let r = run_snitch(rd2.clone(), &config);
    let report = rd2.report();
    println!(
        "RD2:            {:.3} s, races {}",
        r.elapsed.as_secs_f64(),
        report
    );
    for race in report.samples().iter().take(5) {
        println!("  - {race}");
    }
    println!(
        "\nRD2 found {} races on {} object(s); FastTrack found {} on {} —\n\
         the harmful size()-as-hint pattern is invisible below the map interface.",
        report.total(),
        report.distinct(),
        ft.report().total(),
        ft.report().distinct()
    );
    assert!(report.total() > ft.report().total());
}
