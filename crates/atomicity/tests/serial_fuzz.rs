//! Fuzz invariant: *serial* executions (transactions never interleave)
//! are trivially serializable — the checker must never report a violation
//! on one, for arbitrary operation contents and transaction boundaries.
//! Conversely, on randomly interleaved executions, every reported
//! violation must involve genuinely overlapping transactions.

use crace_atomicity::AtomicityChecker;
use crace_core::translate;
use crace_model::{Action, ObjId, ThreadId, Value};
use crace_spec::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const O: ObjId = ObjId(1);

fn random_action(rng: &mut StdRng, spec: &crace_spec::Spec) -> Action {
    let m = crace_model::MethodId(rng.gen_range(0..spec.num_methods() as u32));
    let value = |rng: &mut StdRng| match rng.gen_range(0..3) {
        0 => Value::Nil,
        _ => Value::Int(rng.gen_range(0..3)),
    };
    let args = (0..spec.sig(m).num_args()).map(|_| value(rng)).collect();
    let ret = value(rng);
    Action::new(O, m, args, ret)
}

#[test]
fn serial_transactions_never_violate_atomicity() {
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).unwrap());
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut checker = AtomicityChecker::new();
        checker.register(O, Arc::clone(&compiled));
        // A sequence of complete (begin … end) transactions from random
        // threads — never two open at once.
        for _ in 0..rng.gen_range(1..12) {
            let tid = ThreadId(rng.gen_range(0..4));
            checker.begin(tid);
            for _ in 0..rng.gen_range(0..5) {
                checker.action(tid, &random_action(&mut rng, &spec));
            }
            checker.end(tid);
        }
        assert!(
            checker.violations().is_empty(),
            "seed {seed}: serial execution flagged: {:?}",
            checker.violations()
        );
    }
}

#[test]
fn interleaved_commuting_transactions_never_violate() {
    // Transactions whose bodies only read (get/size) commute entirely:
    // any interleaving is serializable.
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).unwrap());
    let get = spec.method_id("get").unwrap();
    let size = spec.method_id("size").unwrap();
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut checker = AtomicityChecker::new();
        checker.register(O, Arc::clone(&compiled));
        let threads = [ThreadId(1), ThreadId(2), ThreadId(3)];
        for &t in &threads {
            checker.begin(t);
        }
        for _ in 0..30 {
            let t = threads[rng.gen_range(0..threads.len())];
            let action = if rng.gen_bool(0.7) {
                Action::new(
                    O,
                    get,
                    vec![Value::Int(rng.gen_range(0..3))],
                    Value::Int(rng.gen_range(0..3)),
                )
            } else {
                Action::new(O, size, vec![], Value::Int(rng.gen_range(0..4)))
            };
            checker.action(t, &action);
        }
        for &t in &threads {
            checker.end(t);
        }
        assert!(checker.violations().is_empty(), "seed {seed}");
    }
}

#[test]
fn violations_only_ever_name_distinct_transactions() {
    // Sanity on the violation records themselves under heavy random
    // interleaving: the cycle endpoints are distinct transactions, and
    // their threads differ (per-thread program order is acyclic).
    let spec = builtin::dictionary();
    let compiled = Arc::new(translate(&spec).unwrap());
    let mut total_violations = 0;
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let mut checker = AtomicityChecker::new();
        checker.register(O, Arc::clone(&compiled));
        let threads = [ThreadId(1), ThreadId(2)];
        for &t in &threads {
            checker.begin(t);
        }
        for _ in 0..20 {
            let t = threads[rng.gen_range(0..threads.len())];
            checker.action(t, &random_action(&mut rng, &spec));
        }
        for &t in &threads {
            checker.end(t);
        }
        for v in checker.violations() {
            total_violations += 1;
            assert_ne!(v.txn, v.conflicting);
            assert_ne!(
                checker.txn_thread(v.txn),
                checker.txn_thread(v.conflicting),
                "seed {seed}: cycle within one thread's program order"
            );
        }
    }
    // The generator interleaves writes on a 3-key space: violations must
    // actually occur for this test to mean anything.
    assert!(
        total_violations > 10,
        "only {total_violations} violations sampled"
    );
}
