//! Atomicity checking over access points — the generalization the paper
//! proposes in §8 (“the techniques presented in this work are applicable
//! to generalizing atomicity detectors as well”).
//!
//! Velodrome (Flanagan, Freund, Yi — PLDI'08) checks *conflict
//! serializability*: each transaction becomes a node in a transactional
//! happens-before graph whose edges come from program order,
//! synchronization, and **conflicting accesses**; a cycle means no serial
//! order of the transactions explains the execution. Velodrome's conflicts
//! are low-level reads/writes; this crate swaps in the access-point
//! conflict relation of a commutativity specification, so that e.g. two
//! transactions interleaving *commuting* counter increments remain
//! serializable while interleaved register writes do not.
//!
//! The checker is offline (single consumer) and uses last-touch conflict
//! edges: every reported violation is a real cycle (soundness); rarely, a
//! violation whose earlier conflicting access was superseded may be missed
//! (see [`AtomicityChecker`] docs).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use crace_atomicity::AtomicityChecker;
//! use crace_core::translate;
//! use crace_model::{Action, ObjId, ThreadId, Value};
//! use crace_spec::builtin;
//!
//! let spec = builtin::dictionary();
//! let put = spec.method_id("put").unwrap();
//! let get = spec.method_id("get").unwrap();
//! let o = ObjId(1);
//! let mut checker = AtomicityChecker::new();
//! checker.register(o, Arc::new(translate(&spec)?));
//!
//! // Two "read-modify-write" transactions interleave on the same key:
//! // T1: get(k)/0 … put(k,1)    T2: get(k)/0 … put(k,2)
//! let (t1, t2) = (ThreadId(1), ThreadId(2));
//! checker.begin(t1);
//! checker.action(t1, &Action::new(o, get, vec![Value::Int(7)], Value::Int(0)));
//! checker.begin(t2);
//! checker.action(t2, &Action::new(o, get, vec![Value::Int(7)], Value::Int(0)));
//! checker.action(t1, &Action::new(o, put, vec![Value::Int(7), Value::Int(1)], Value::Int(0)));
//! checker.action(t2, &Action::new(o, put, vec![Value::Int(7), Value::Int(2)], Value::Int(1)));
//! checker.end(t1);
//! checker.end(t2);
//! assert!(!checker.violations().is_empty()); // not serializable
//! # Ok::<(), crace_core::TranslateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crace_core::{AccessPoint, CompiledSpec};
use crace_model::{Action, Event, LockId, ObjId, ThreadId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a transaction node in the serializability graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub usize);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// A detected atomicity violation: adding `edge` closed a cycle through
/// the transactional happens-before graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicityViolation {
    /// The transaction observed later (the edge head).
    pub txn: TxnId,
    /// The earlier transaction the conflict edge comes from.
    pub conflicting: TxnId,
    /// The thread executing `txn`.
    pub tid: ThreadId,
    /// Human-readable detail (the conflicting access-point labels).
    pub detail: String,
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "atomicity violation: {} ↔ {} form a cycle ({})",
            self.conflicting, self.txn, self.detail
        )
    }
}

#[derive(Clone, Debug, Default)]
struct TxnNode {
    tid: ThreadId,
    open: bool,
    /// Outgoing happens-before edges.
    succs: Vec<TxnId>,
}

/// The access-point atomicity checker.
///
/// Drive it with [`AtomicityChecker::begin`] / [`AtomicityChecker::end`]
/// around each thread's atomic blocks, [`AtomicityChecker::action`] for
/// method invocations, and [`AtomicityChecker::sync`] for fork / join /
/// lock events. Actions outside any block run as unary transactions
/// (exactly as in Velodrome).
///
/// Edges:
/// * **program order** — each thread's previous transaction precedes its
///   next,
/// * **synchronization** — fork/join and release→acquire pairs order the
///   enclosing transactions,
/// * **conflict** — when an action touches an access point conflicting
///   with a point last touched by a *different* transaction, that
///   transaction precedes this one.
///
/// A conflict edge that closes a cycle is reported as an
/// [`AtomicityViolation`]. Only the most recent transaction per access
/// point is remembered, so a violation against an older superseded access
/// can be missed; every *reported* violation is a genuine cycle.
pub struct AtomicityChecker {
    registry: HashMap<ObjId, Arc<CompiledSpec>>,
    txns: Vec<TxnNode>,
    /// Open (explicit) transaction per thread.
    current: HashMap<ThreadId, TxnId>,
    /// Last transaction per thread, for program-order edges.
    last_of_thread: HashMap<ThreadId, TxnId>,
    /// Last transaction to release each lock.
    last_release: HashMap<LockId, TxnId>,
    /// Last transaction to touch each access point, per object.
    point_last: HashMap<ObjId, HashMap<AccessPoint, TxnId>>,
    violations: Vec<AtomicityViolation>,
}

impl AtomicityChecker {
    /// Creates a checker with no registered objects.
    pub fn new() -> AtomicityChecker {
        AtomicityChecker {
            registry: HashMap::new(),
            txns: Vec::new(),
            current: HashMap::new(),
            last_of_thread: HashMap::new(),
            last_release: HashMap::new(),
            point_last: HashMap::new(),
            violations: Vec::new(),
        }
    }

    /// Registers `obj` to be checked against `spec`. Actions on
    /// unregistered objects are ignored.
    pub fn register(&mut self, obj: ObjId, spec: Arc<CompiledSpec>) {
        self.registry.insert(obj, spec);
    }

    /// The violations found so far.
    pub fn violations(&self) -> &[AtomicityViolation] {
        &self.violations
    }

    /// Number of transaction nodes created.
    pub fn num_txns(&self) -> usize {
        self.txns.len()
    }

    /// The thread that executed a transaction.
    ///
    /// # Panics
    ///
    /// Panics if `txn` is out of range.
    pub fn txn_thread(&self, txn: TxnId) -> ThreadId {
        self.txns[txn.0].tid
    }

    /// Is the transaction still open (inside its `begin`/`end` block)?
    ///
    /// # Panics
    ///
    /// Panics if `txn` is out of range.
    pub fn is_open(&self, txn: TxnId) -> bool {
        self.txns[txn.0].open
    }

    fn new_txn(&mut self, tid: ThreadId, open: bool) -> TxnId {
        let id = TxnId(self.txns.len());
        self.txns.push(TxnNode {
            tid,
            open,
            succs: Vec::new(),
        });
        // Program order.
        if let Some(&prev) = self.last_of_thread.get(&tid) {
            self.add_order_edge(prev, id);
        }
        self.last_of_thread.insert(tid, id);
        id
    }

    /// Is `to` reachable from `from`?
    fn reaches(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.txns.len()];
        seen[from.0] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.txns[n.0].succs {
                if s == to {
                    return true;
                }
                if !seen[s.0] {
                    seen[s.0] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Adds an ordering edge that cannot create a cycle (program order and
    /// synchronization edges always point forward in observation order and
    /// originate from completed prefixes).
    fn add_order_edge(&mut self, from: TxnId, to: TxnId) {
        if from != to && !self.txns[from.0].succs.contains(&to) {
            self.txns[from.0].succs.push(to);
        }
    }

    /// Adds a conflict edge, reporting a violation if it closes a cycle.
    fn add_conflict_edge(&mut self, from: TxnId, to: TxnId, tid: ThreadId, detail: &str) {
        if from == to {
            return;
        }
        if self.reaches(to, from) {
            self.violations.push(AtomicityViolation {
                txn: to,
                conflicting: from,
                tid,
                detail: detail.to_string(),
            });
            // Do not insert the back edge: keep the graph acyclic so later
            // queries stay meaningful.
            return;
        }
        self.add_order_edge(from, to);
    }

    /// The transaction the next event of `tid` belongs to (opening a unary
    /// transaction if none is open).
    fn txn_for(&mut self, tid: ThreadId) -> (TxnId, bool) {
        match self.current.get(&tid) {
            Some(&t) => (t, false),
            None => (self.new_txn(tid, false), true),
        }
    }

    /// Starts an atomic block on `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the thread already has an open block (no nesting).
    pub fn begin(&mut self, tid: ThreadId) {
        assert!(
            !self.current.contains_key(&tid),
            "{tid} already has an open transaction"
        );
        let txn = self.new_txn(tid, true);
        self.current.insert(tid, txn);
    }

    /// Ends `tid`'s atomic block.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no open block.
    pub fn end(&mut self, tid: ThreadId) {
        let txn = self
            .current
            .remove(&tid)
            .unwrap_or_else(|| panic!("{tid} has no open transaction"));
        self.txns[txn.0].open = false;
    }

    /// Processes a method invocation by `tid`.
    pub fn action(&mut self, tid: ThreadId, action: &Action) {
        let Some(spec) = self.registry.get(&action.obj()).cloned() else {
            return;
        };
        let (txn, _unary) = self.txn_for(tid);
        let touched = spec.touched(action);
        let points = self.point_last.entry(action.obj()).or_default();
        // Collect conflict edges first (split borrows).
        let mut edges: Vec<(TxnId, String)> = Vec::new();
        for pt in &touched {
            for &other in spec.conflicting(pt.class) {
                let key = AccessPoint {
                    class: other,
                    value: pt.value.clone(),
                };
                if let Some(&prev) = points.get(&key) {
                    if prev != txn {
                        edges.push((
                            prev,
                            format!("{} conflicts {}", spec.label(pt.class), spec.label(other)),
                        ));
                    }
                }
            }
        }
        for pt in touched {
            points.insert(pt, txn);
        }
        for (from, detail) in edges {
            self.add_conflict_edge(from, txn, tid, &detail);
        }
    }

    /// Processes a synchronization event (fork/join/acquire/release);
    /// action and memory events in the stream are routed appropriately —
    /// use this to drive the checker from a recorded [`Event`] stream.
    pub fn sync(&mut self, event: &Event) {
        match *event {
            Event::Fork { parent, child } => {
                let (p, _) = self.txn_for(parent);
                // The child's first transaction will pick up the edge via
                // last_of_thread seeding.
                self.last_of_thread.insert(child, p);
            }
            Event::Join { parent, child } => {
                if let Some(&c) = self.last_of_thread.get(&child) {
                    let (p, _) = self.txn_for(parent);
                    self.add_order_edge(c, p);
                }
            }
            Event::Acquire { tid, lock } => {
                if let Some(&rel) = self.last_release.get(&lock) {
                    let (t, _) = self.txn_for(tid);
                    self.add_order_edge(rel, t);
                }
            }
            Event::Release { tid, lock } => {
                let (t, _) = self.txn_for(tid);
                self.last_release.insert(lock, t);
            }
            Event::Action { tid, ref action } => self.action(tid, action),
            Event::Read { .. } | Event::Write { .. } => {}
        }
    }
}

impl Default for AtomicityChecker {
    fn default() -> AtomicityChecker {
        AtomicityChecker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::translate;
    use crace_model::Value;
    use crace_spec::builtin;

    const O: ObjId = ObjId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn dict_checker() -> (crace_spec::Spec, AtomicityChecker) {
        let spec = builtin::dictionary();
        let mut checker = AtomicityChecker::new();
        checker.register(O, Arc::new(translate(&spec).unwrap()));
        (spec, checker)
    }

    fn get(spec: &crace_spec::Spec, k: i64, v: i64) -> Action {
        Action::new(
            O,
            spec.method_id("get").unwrap(),
            vec![Value::Int(k)],
            Value::Int(v),
        )
    }

    fn put(spec: &crace_spec::Spec, k: i64, v: i64, p: Value) -> Action {
        Action::new(
            O,
            spec.method_id("put").unwrap(),
            vec![Value::Int(k), Value::Int(v)],
            p,
        )
    }

    #[test]
    fn serial_transactions_are_fine() {
        let (spec, mut c) = dict_checker();
        c.begin(T1);
        c.action(T1, &get(&spec, 1, 0));
        c.action(T1, &put(&spec, 1, 5, Value::Int(0)));
        c.end(T1);
        c.begin(T2);
        c.action(T2, &get(&spec, 1, 5));
        c.action(T2, &put(&spec, 1, 6, Value::Int(5)));
        c.end(T2);
        assert!(c.violations().is_empty());
        assert_eq!(c.num_txns(), 2);
    }

    #[test]
    fn interleaved_rmw_transactions_violate_atomicity() {
        let (spec, mut c) = dict_checker();
        c.begin(T1);
        c.action(T1, &get(&spec, 7, 0));
        c.begin(T2);
        c.action(T2, &get(&spec, 7, 0));
        c.action(T1, &put(&spec, 7, 1, Value::Int(0)));
        c.action(T2, &put(&spec, 7, 2, Value::Int(1)));
        c.end(T1);
        c.end(T2);
        assert_eq!(c.violations().len(), 1, "{:?}", c.violations());
        let v = &c.violations()[0];
        assert!(v.to_string().contains("cycle"));
    }

    #[test]
    fn interleaving_on_different_keys_is_serializable() {
        let (spec, mut c) = dict_checker();
        c.begin(T1);
        c.action(T1, &get(&spec, 1, 0));
        c.begin(T2);
        c.action(T2, &get(&spec, 2, 0));
        c.action(T1, &put(&spec, 1, 5, Value::Int(0)));
        c.action(T2, &put(&spec, 2, 5, Value::Int(0)));
        c.end(T1);
        c.end(T2);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    /// The headline generalization: interleaved *commuting* operations are
    /// serializable at the commutativity level even though a read-write
    /// atomicity checker would flag them.
    #[test]
    fn commuting_increments_are_serializable_but_register_writes_are_not() {
        // Counter: inc/inc commute → interleaving two inc-inc transactions
        // is fine.
        let counter = builtin::counter();
        let inc = |_: ()| Action::new(O, counter.method_id("inc").unwrap(), vec![], Value::Nil);
        let mut c = AtomicityChecker::new();
        c.register(O, Arc::new(translate(&counter).unwrap()));
        c.begin(T1);
        c.action(T1, &inc(()));
        c.begin(T2);
        c.action(T2, &inc(()));
        c.action(T1, &inc(()));
        c.action(T2, &inc(()));
        c.end(T1);
        c.end(T2);
        assert!(c.violations().is_empty(), "{:?}", c.violations());

        // Register: write/write never commute → the same interleaving
        // violates atomicity.
        let register = builtin::register();
        let write = |v: i64| {
            Action::new(
                O,
                register.method_id("write").unwrap(),
                vec![Value::Int(v)],
                Value::Nil,
            )
        };
        let mut c = AtomicityChecker::new();
        c.register(O, Arc::new(translate(&register).unwrap()));
        c.begin(T1);
        c.action(T1, &write(1));
        c.begin(T2);
        c.action(T2, &write(2));
        c.action(T1, &write(3));
        c.end(T1);
        c.end(T2);
        assert!(!c.violations().is_empty());
    }

    #[test]
    fn unary_actions_between_transactions_order_correctly() {
        let (spec, mut c) = dict_checker();
        // Unary put by T1, then a T2 transaction reading it, then a unary
        // T1 read — all serial, no violation.
        c.action(T1, &put(&spec, 1, 5, Value::Nil));
        c.begin(T2);
        c.action(T2, &get(&spec, 1, 5));
        c.end(T2);
        c.action(T1, &get(&spec, 1, 5));
        assert!(c.violations().is_empty());
        assert_eq!(c.num_txns(), 3);
    }

    #[test]
    fn lock_edges_order_transactions() {
        let (spec, mut c) = dict_checker();
        let lock = LockId(0);
        c.begin(T1);
        c.action(T1, &put(&spec, 1, 5, Value::Nil));
        c.sync(&Event::Release { tid: T1, lock });
        c.end(T1);
        c.sync(&Event::Acquire { tid: T2, lock });
        c.begin(T2);
        c.action(T2, &put(&spec, 1, 6, Value::Int(5)));
        c.end(T2);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn driving_from_an_event_stream() {
        let (spec, mut c) = dict_checker();
        c.sync(&Event::Fork {
            parent: ThreadId(0),
            child: T1,
        });
        c.sync(&Event::Action {
            tid: T1,
            action: put(&spec, 1, 5, Value::Nil),
        });
        c.sync(&Event::Join {
            parent: ThreadId(0),
            child: T1,
        });
        c.sync(&Event::Action {
            tid: ThreadId(0),
            action: get(&spec, 1, 5),
        });
        assert!(c.violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "already has an open transaction")]
    fn nested_begin_panics() {
        let (_, mut c) = dict_checker();
        c.begin(T1);
        c.begin(T1);
    }

    #[test]
    #[should_panic(expected = "has no open transaction")]
    fn end_without_begin_panics() {
        let (_, mut c) = dict_checker();
        c.end(T1);
    }

    #[test]
    fn unregistered_objects_are_ignored() {
        let (_, mut c) = dict_checker();
        let foreign = Action::new(ObjId(99), crace_model::MethodId(0), vec![], Value::Nil);
        c.action(T1, &foreign);
        assert_eq!(c.num_txns(), 0);
    }
}
