//! Round-trip and robustness property tests for the textual trace
//! format: `parse_trace ∘ render_trace` must be the identity on every
//! well-formed trace — including string values full of quotes, commas,
//! backslashes, newlines, parentheses and `#` — and malformed input must
//! produce a [`TraceParseError`], never a panic.

use crace_cli::{
    parse_framed, parse_framed_tolerant, parse_trace, render_framed, render_trace, TraceErrorKind,
};
use crace_model::{Action, Event, LocId, LockId, ObjId, ThreadId, Trace, Value};
use crace_spec::{builtin, Spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Characters deliberately chosen to stress the renderer's escaping and
/// the parser's quote handling.
const NASTY: &[char] = &[
    'a', 'b', '"', '\\', ',', '\n', '\r', '\t', '#', '(', ')', '/', ' ', '\u{1}', 'é', '⚡',
];

fn random_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..8);
    (0..len)
        .map(|_| NASTY[rng.gen_range(0..NASTY.len())])
        .collect()
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5) {
        0 => Value::Nil,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-1_000_000..1_000_000)),
        3 => Value::Ref(rng.gen_range(0..u64::MAX / 2)),
        _ => Value::str(random_string(rng)),
    }
}

fn random_trace(rng: &mut StdRng, spec: &Spec) -> Trace {
    let mut trace = Trace::new();
    let num_events = rng.gen_range(1..20);
    for _ in 0..num_events {
        let tid = ThreadId(rng.gen_range(0..4) as u32);
        trace.push(match rng.gen_range(0..7) {
            0 => Event::Fork {
                parent: tid,
                child: ThreadId(rng.gen_range(0..8) as u32),
            },
            1 => Event::Join {
                parent: tid,
                child: ThreadId(rng.gen_range(0..8) as u32),
            },
            2 => Event::Acquire {
                tid,
                lock: LockId(rng.gen_range(0..16)),
            },
            3 => Event::Release {
                tid,
                lock: LockId(rng.gen_range(0..16)),
            },
            4 => Event::Read {
                tid,
                loc: LocId(rng.gen_range(0..256)),
            },
            5 => Event::Write {
                tid,
                loc: LocId(rng.gen_range(0..256)),
            },
            _ => {
                let method = crace_model::MethodId(rng.gen_range(0..spec.num_methods()) as u32);
                let args = (0..spec.sig(method).num_args())
                    .map(|_| random_value(rng))
                    .collect();
                Event::Action {
                    tid,
                    action: Action::new(
                        ObjId(rng.gen_range(1..5)),
                        method,
                        args,
                        random_value(rng),
                    ),
                }
            }
        });
    }
    trace
}

#[test]
fn parse_render_is_the_identity_on_random_traces() {
    let spec = builtin::dictionary();
    let mut rng = StdRng::seed_from_u64(0x70AD_7217);
    for i in 0..300 {
        let trace = random_trace(&mut rng, &spec);
        let rendered = render_trace(&trace, &spec);
        let reparsed = parse_trace(&rendered, &spec)
            .unwrap_or_else(|e| panic!("iteration {i}: failed to reparse: {e}\n{rendered}"));
        assert_eq!(
            trace, reparsed,
            "iteration {i} round-trip mismatch:\n{rendered}"
        );
    }
}

#[test]
fn worst_case_strings_round_trip() {
    let spec = builtin::dictionary();
    for s in [
        "",
        "\"",
        "\\",
        "\\\"",
        "a,b",
        "a#b",
        "a #b",
        "#",
        "put(x)/nil",
        "(((",
        ")/nil",
        "line\nbreak",
        "tab\there",
        "\r\n",
        "\u{1}\u{2}\u{1f}",
        "ünïcødé ⚡",
        "trailing\\",
    ] {
        let mut trace = Trace::new();
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(
                ObjId(1),
                crace_model::MethodId(0), // put(k, v)
                vec![Value::str(s), Value::str(s)],
                Value::str(s),
            ),
        });
        let rendered = render_trace(&trace, &spec);
        let reparsed = parse_trace(&rendered, &spec)
            .unwrap_or_else(|e| panic!("string {s:?}: {e}\n{rendered}"));
        assert_eq!(trace, reparsed, "string {s:?} round-trip mismatch");
    }
}

/// The framed (checksummed) format must round-trip every trace the
/// plain format does — same generator, same nasty strings — through
/// both the strict parser and `parse_trace`'s header sniffing.
#[test]
fn framed_parse_render_is_the_identity_on_random_traces() {
    let spec = builtin::dictionary();
    let mut rng = StdRng::seed_from_u64(0xF4A3_ED01);
    for i in 0..300 {
        let trace = random_trace(&mut rng, &spec);
        let rendered = render_framed(&trace, &spec);
        let strict = parse_framed(&rendered, &spec)
            .unwrap_or_else(|e| panic!("iteration {i}: strict reparse failed: {e}\n{rendered}"));
        assert_eq!(trace, strict, "iteration {i}: framed round-trip mismatch");
        // `parse_trace` sniffs the header and takes the framed path.
        let sniffed = parse_trace(&rendered, &spec)
            .unwrap_or_else(|e| panic!("iteration {i}: sniffed reparse failed: {e}"));
        assert_eq!(trace, sniffed, "iteration {i}: header sniffing mismatch");
        // A tolerant parse of an intact file loses nothing.
        let (tolerant, outcome) = parse_framed_tolerant(&rendered, &spec);
        assert_eq!(trace, tolerant, "iteration {i}: tolerant parse mismatch");
        assert!(outcome.is_none(), "iteration {i}: intact file flagged torn");
    }
}

/// Corruption property: flip any single byte of a framed trace's body
/// and the strict parser must either reject the file (kind `Torn` for a
/// broken frame, `Malformed` for a payload the CRC can't save — it
/// can't, frames are checked first) or — only when the flip lands in
/// skippable whitespace — still parse to the original trace. A silent
/// wrong parse is the one forbidden outcome.
#[test]
fn random_byte_flips_never_parse_to_a_different_trace() {
    let spec = builtin::dictionary();
    let mut rng = StdRng::seed_from_u64(0x0BAD_F11B);
    for i in 0..150 {
        let trace = random_trace(&mut rng, &spec);
        let rendered = render_framed(&trace, &spec);
        let header_len = rendered.find('\n').unwrap() + 1;
        if header_len >= rendered.len() {
            continue;
        }
        let pos = rng.gen_range(header_len..rendered.len());
        let flip = rendered.as_bytes()[pos] ^ (1 << rng.gen_range(0..7));
        let mut bytes = rendered.clone().into_bytes();
        bytes[pos] = flip;
        let Ok(corrupted) = String::from_utf8(bytes) else {
            continue; // the flip broke UTF-8; parsing never sees it
        };
        match parse_framed(&corrupted, &spec) {
            Err(e) => assert!(
                matches!(e.kind, TraceErrorKind::Torn | TraceErrorKind::Malformed),
                "iteration {i}: unexpected error kind"
            ),
            Ok(parsed) => assert_eq!(
                trace, parsed,
                "iteration {i}: flipped byte {pos} silently changed the trace:\n{corrupted}"
            ),
        }
    }
}

/// Truncation property: cut a framed trace at any byte offset and the
/// tolerant parser recovers a prefix of the original events — never
/// reordered, never invented — and reports a loss iff events were lost.
#[test]
fn random_truncations_recover_a_clean_prefix() {
    let spec = builtin::dictionary();
    let mut rng = StdRng::seed_from_u64(0x0709_4CA7);
    for i in 0..150 {
        let trace = random_trace(&mut rng, &spec);
        let rendered = render_framed(&trace, &spec);
        let cut = rng.gen_range(0..rendered.len());
        let Some(torn) = rendered.get(..cut) else {
            continue; // cut inside a multi-byte character
        };
        if !crace_cli::is_framed(torn) {
            continue; // the header itself is torn; callers sniff it first
        }
        let (recovered, outcome) = parse_framed_tolerant(torn, &spec);
        assert!(
            recovered.len() <= trace.len(),
            "iteration {i}: recovered more events than were written"
        );
        assert_eq!(
            recovered.events(),
            &trace.events()[..recovered.len()],
            "iteration {i}: recovered events are not a prefix"
        );
        if recovered.len() < trace.len() {
            // A cut at a record boundary (or one that only eats the final
            // newline of a CRC-valid record) yields a *valid* shorter
            // file — undetectable by design. Everywhere else the tear
            // must be reported.
            let undetectable = torn.ends_with('\n') || rendered.as_bytes()[cut] == b'\n';
            assert!(
                outcome.is_some() || undetectable,
                "iteration {i}: lost {} event(s) without a torn-trace report",
                trace.len() - recovered.len()
            );
        }
    }
}

/// Every malformed input must surface as a structured parse error — a
/// panic here means a `crace replay` user can crash the tool with a bad
/// trace file.
#[test]
fn malformed_traces_error_without_panicking() {
    let spec = builtin::dictionary();
    let cases: &[&str] = &[
        // Truncated event lines.
        "fork",
        "fork 0",
        "join 1",
        "acq 0",
        "rel",
        "read 0",
        "write 0 16",
        "act",
        "act 0",
        "act 0 o1",
        "act 0 o1 put",
        "act 0 o1 put(",
        "act 0 o1 put(1",
        "act 0 o1 put(1, 2",
        "act 0 o1 put(1, 2)",
        "act 0 o1 put(1, 2)/",
        // Bad ids and locations.
        "fork x 1",
        "fork 0 -1",
        "acq 0 lock",
        "read 0 16",
        "read 0 @x10",
        "act 0 1 put(1, 2)/nil",
        "act 0 o put(1, 2)/nil",
        "act 0 o-1 put(1, 2)/nil",
        // Unknown kinds and methods.
        "explode 0 1",
        "act 0 o1 frobnicate(1)/nil",
        // Arity and value errors.
        "act 0 o1 put(1)/nil",
        "act 0 o1 put(1, 2, 3)/nil",
        "act 0 o1 size(1)/0",
        "act 0 o1 put(1, 1.5)/nil",
        "act 0 o1 put(1, ref#)/nil",
        "act 0 o1 put(1, ref#x)/nil",
        "act 0 o1 put(1, tru)/nil",
        // String escape errors.
        "act 0 o1 put(\"\\q\", 1)/nil",
        "act 0 o1 put(\"\\u12\", 1)/nil",
        "act 0 o1 put(\"\\uzzzz\", 1)/nil",
        "act 0 o1 put(\"a\\\", 1)/nil",
        // Unterminated strings (the closing paren hides in the quote).
        "act 0 o1 put(\"abc, 1)/nil",
        "act 0 o1 put(\"a)b, 1)/nil",
        // Mismatched parentheses.
        "act 0 o1 put)1, 2(/nil",
    ];
    for case in cases {
        let result = std::panic::catch_unwind(|| parse_trace(case, &spec));
        match result {
            Ok(Ok(trace)) => panic!("`{case}` parsed as {trace:?}, expected an error"),
            Ok(Err(e)) => assert!(e.line >= 1, "`{case}`: error lost its line number"),
            Err(_) => panic!("`{case}` panicked instead of returning a parse error"),
        }
    }
}
