//! Parsing and rendering of the textual trace format.

use crace_model::{Action, Event, LocId, LockId, ObjId, ThreadId, Trace, Value};
use crace_spec::Spec;
use std::error::Error;
use std::fmt;

/// What class of damage a [`TraceParseError`] describes — callers branch
/// on this to pick an exit code and to decide whether
/// truncation-tolerant recovery is even possible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The input is well-framed but the content is wrong: unknown event,
    /// bad value, arity mismatch. Recovery cannot help.
    Malformed,
    /// A framed trace ends mid-record or a record fails its length/CRC
    /// check — the signature of a crash mid-write. The prefix before the
    /// damage is intact and recoverable.
    Torn,
}

/// An error while parsing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// Whether this is malformed content or a torn (truncated) file.
    pub kind: TraceErrorKind,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for TraceParseError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line,
        message: message.into(),
        kind: TraceErrorKind::Malformed,
    }
}

pub(crate) fn torn(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line,
        message: message.into(),
        kind: TraceErrorKind::Torn,
    }
}

/// Parses a trace file; method names in `act` lines are resolved against
/// `spec`.
///
/// # Errors
///
/// Returns a [`TraceParseError`] with the offending line for malformed
/// events, unknown methods, or arity mismatches.
///
/// # Examples
///
/// ```
/// use crace_cli::parse_trace;
/// use crace_spec::builtin;
///
/// let spec = builtin::dictionary();
/// let trace = parse_trace("fork 0 1\nact 1 o1 put(5, 7)/nil\n", &spec)?;
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), crace_cli::TraceParseError>(())
/// ```
pub fn parse_trace(source: &str, spec: &Spec) -> Result<Trace, TraceParseError> {
    if crate::framed::is_framed(source) {
        return crate::framed::parse_framed(source, spec);
    }
    let mut trace = Trace::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        trace.push(parse_event(line, spec, lineno)?);
    }
    Ok(trace)
}

/// Parses one already-stripped, nonempty event line.
pub(crate) fn parse_event(
    line: &str,
    spec: &Spec,
    lineno: usize,
) -> Result<Event, TraceParseError> {
    let mut words = line.splitn(3, char::is_whitespace);
    let kind = words.next().expect("nonempty line");
    let parse_tid = |w: Option<&str>| -> Result<ThreadId, TraceParseError> {
        w.and_then(|s| s.trim().parse::<u32>().ok())
            .map(ThreadId)
            .ok_or_else(|| err(lineno, "expected a thread id"))
    };
    Ok(match kind {
        "fork" | "join" => {
            let parent = parse_tid(words.next())?;
            let child = parse_tid(words.next())?;
            if kind == "fork" {
                Event::Fork { parent, child }
            } else {
                Event::Join { parent, child }
            }
        }
        "acq" | "rel" => {
            let tid = parse_tid(words.next())?;
            let lock = words
                .next()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .map(LockId)
                .ok_or_else(|| err(lineno, "expected a lock id"))?;
            if kind == "acq" {
                Event::Acquire { tid, lock }
            } else {
                Event::Release { tid, lock }
            }
        }
        "read" | "write" => {
            let tid = parse_tid(words.next())?;
            let loc = words
                .next()
                .map(str::trim)
                .and_then(|s| s.strip_prefix('@'))
                .and_then(|s| {
                    s.strip_prefix("0x")
                        .map(|h| u64::from_str_radix(h, 16).ok())
                        .unwrap_or_else(|| s.parse::<u64>().ok())
                })
                .map(LocId)
                .ok_or_else(|| err(lineno, "expected a location like @16 or @0x10"))?;
            if kind == "read" {
                Event::Read { tid, loc }
            } else {
                Event::Write { tid, loc }
            }
        }
        "act" => {
            let tid = parse_tid(words.next())?;
            let rest = words
                .next()
                .ok_or_else(|| err(lineno, "expected `o<id> name(args)/ret`"))?
                .trim();
            let action = parse_action(rest, spec, lineno)?;
            Event::Action { tid, action }
        }
        other => {
            return Err(err(
                lineno,
                format!("unknown event `{other}` (expected fork/join/acq/rel/read/write/act)"),
            ));
        }
    })
}

fn parse_action(text: &str, spec: &Spec, lineno: usize) -> Result<Action, TraceParseError> {
    // Shape: o<obj> name(arg, …)/ret
    let text = text.trim();
    let obj_end = text
        .find(char::is_whitespace)
        .ok_or_else(|| err(lineno, "expected `o<id> name(args)/ret`"))?;
    let obj = text[..obj_end]
        .strip_prefix('o')
        .and_then(|s| s.parse::<u64>().ok())
        .map(ObjId)
        .ok_or_else(|| err(lineno, format!("bad object id `{}`", &text[..obj_end])))?;
    let call = text[obj_end..].trim();
    let open = find_unquoted(call, '(')
        .next()
        .ok_or_else(|| err(lineno, "expected `(` in invocation"))?;
    let name = call[..open].trim();
    let close = find_unquoted(call, ')')
        .last()
        .ok_or_else(|| err(lineno, "expected `)` in invocation"))?;
    if close < open {
        return Err(err(lineno, "mismatched parentheses"));
    }
    let args_text = &call[open + 1..close];
    let ret_text = call[close + 1..]
        .trim()
        .strip_prefix('/')
        .ok_or_else(|| err(lineno, "expected `/ret` after invocation"))?
        .trim();

    let method = spec.method_id(name).ok_or_else(|| {
        err(
            lineno,
            format!("unknown method `{name}` in spec `{}`", spec.name()),
        )
    })?;
    let mut args = Vec::new();
    if !args_text.trim().is_empty() {
        for part in split_args(args_text) {
            args.push(parse_value(part.trim(), lineno)?);
        }
    }
    if args.len() != spec.sig(method).num_args() {
        return Err(err(
            lineno,
            format!(
                "method `{name}` takes {} argument(s), found {}",
                spec.sig(method).num_args(),
                args.len()
            ),
        ));
    }
    let ret = parse_value(ret_text, lineno)?;
    Ok(Action::new(obj, method, args, ret))
}

/// Strips a `#` comment; a `#` counts as a comment start only outside of
/// string quotes and at the beginning of the line or after whitespace, so
/// `ref#9`, `"a#b"` and `"a #b"` all survive.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_quote = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quote => escaped = true,
            b'"' => in_quote = !in_quote,
            b'#' if !in_quote && (i == 0 || bytes[i - 1].is_ascii_whitespace()) => {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

/// Byte positions of `target` outside string quotes (escape-aware), so
/// the invocation parentheses are found even when a string value
/// contains `(` or `)`.
fn find_unquoted(text: &str, target: char) -> impl Iterator<Item = usize> + '_ {
    let mut in_quote = false;
    let mut escaped = false;
    text.char_indices().filter_map(move |(i, c)| {
        if escaped {
            escaped = false;
            return None;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            c if c == target && !in_quote => return Some(i),
            _ => {}
        }
        None
    })
}

/// Splits a comma-separated argument list, respecting string quotes and
/// backslash escapes inside them.
fn split_args(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_quote = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            ',' if !in_quote => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Decodes the body of a quoted string literal: the inverse of
/// [`crace_obs::json::escape`], which [`render_value`] uses to emit it.
fn unescape_str(body: &str, lineno: usize) -> Result<String, TraceParseError> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = (hex.len() == 4)
                    .then(|| u32::from_str_radix(&hex, 16).ok())
                    .flatten()
                    .and_then(char::from_u32)
                    .ok_or_else(|| err(lineno, format!("bad \\u escape `\\u{hex}`")))?;
                out.push(code);
            }
            other => {
                return Err(err(
                    lineno,
                    match other {
                        Some(c) => format!("unknown escape `\\{c}` in string"),
                        None => "string ends in a bare backslash".to_string(),
                    },
                ));
            }
        }
    }
    Ok(out)
}

pub(crate) fn parse_value(text: &str, lineno: usize) -> Result<Value, TraceParseError> {
    match text {
        "nil" => Ok(Value::Nil),
        "true" => Ok(Value::Bool(true)),
        "false" => Ok(Value::Bool(false)),
        _ => {
            if let Some(stripped) = text.strip_prefix("ref#") {
                return stripped
                    .parse::<u64>()
                    .map(Value::Ref)
                    .map_err(|_| err(lineno, format!("bad reference `{text}`")));
            }
            if text.starts_with('"') && text.ends_with('"') && text.len() >= 2 {
                return unescape_str(&text[1..text.len() - 1], lineno).map(|s| Value::str(&s));
            }
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| err(lineno, format!("bad value `{text}`")))
        }
    }
}

/// Renders a trace back to the textual format (method names taken from
/// `spec`; methods not in the spec render as `m<id>`).
pub fn render_trace(trace: &Trace, spec: &Spec) -> String {
    let mut out = String::new();
    for event in trace {
        out.push_str(&render_event(event, spec));
        out.push('\n');
    }
    out
}

/// Renders one event as a single line (no trailing newline) — the unit
/// the framed format checksums.
pub(crate) fn render_event(event: &Event, spec: &Spec) -> String {
    match event {
        Event::Fork { parent, child } => format!("fork {} {}", parent.0, child.0),
        Event::Join { parent, child } => format!("join {} {}", parent.0, child.0),
        Event::Acquire { tid, lock } => format!("acq {} {}", tid.0, lock.0),
        Event::Release { tid, lock } => format!("rel {} {}", tid.0, lock.0),
        Event::Read { tid, loc } => format!("read {} @{}", tid.0, loc.0),
        Event::Write { tid, loc } => format!("write {} @{}", tid.0, loc.0),
        Event::Action { tid, action } => {
            format!(
                "act {} o{} {}",
                tid.0,
                action.obj().0,
                render_call(action, spec)
            )
        }
    }
}

fn render_call(action: &Action, spec: &Spec) -> String {
    let name = if action.method().index() < spec.num_methods() {
        spec.sig(action.method()).name().to_string()
    } else {
        format!("m{}", action.method().0)
    };
    let args: Vec<String> = action.args().iter().map(render_value).collect();
    format!("{name}({})/{}", args.join(", "), render_value(action.ret()))
}

pub(crate) fn render_value(v: &Value) -> String {
    match v {
        Value::Nil => "nil".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("\"{}\"", crace_obs::json::escape(s)),
        Value::Ref(r) => format!("ref#{r}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::builtin;

    const SAMPLE: &str = r#"
# the running example
fork 0 1
fork 0 2
act 2 o1 put("a.com", 1)/nil
act 1 o1 put("a.com", 2)/1
join 0 1
join 0 2
act 0 o1 size()/1
"#;

    #[test]
    fn parses_the_running_example() {
        let spec = builtin::dictionary();
        let trace = parse_trace(SAMPLE, &spec).unwrap();
        assert_eq!(trace.len(), 7);
        assert_eq!(trace.num_threads(), 3);
        let act = trace.events()[2].action().unwrap();
        assert_eq!(act.obj(), ObjId(1));
        assert_eq!(act.args()[0], Value::str("a.com"));
        assert_eq!(act.ret(), &Value::Nil);
    }

    #[test]
    fn round_trips_through_render() {
        let spec = builtin::dictionary();
        let trace = parse_trace(SAMPLE, &spec).unwrap();
        let rendered = render_trace(&trace, &spec);
        let reparsed = parse_trace(&rendered, &spec).unwrap();
        assert_eq!(trace, reparsed);
    }

    #[test]
    fn parses_all_value_shapes_and_locations() {
        let spec = builtin::dictionary();
        let src = "act 0 o1 put(true, ref#9)/\"x\"\nread 1 @0x10\nwrite 1 @16\nacq 0 3\nrel 0 3\n";
        let trace = parse_trace(src, &spec).unwrap();
        let a = trace.events()[0].action().unwrap();
        assert_eq!(a.args(), &[Value::Bool(true), Value::Ref(9)]);
        assert_eq!(a.ret(), &Value::str("x"));
        assert_eq!(
            trace.events()[1],
            Event::Read {
                tid: ThreadId(1),
                loc: LocId(16)
            }
        );
        assert_eq!(
            trace.events()[2],
            Event::Write {
                tid: ThreadId(1),
                loc: LocId(16)
            }
        );
    }

    #[test]
    fn string_arguments_may_contain_commas() {
        let spec = builtin::dictionary();
        let trace = parse_trace("act 0 o1 put(\"a,b\", 1)/nil\n", &spec).unwrap();
        let a = trace.events()[0].action().unwrap();
        assert_eq!(a.args()[0], Value::str("a,b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let spec = builtin::dictionary();
        let e = parse_trace("fork 0 1\nact 1 o1 bogus(1)/nil\n", &spec).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown method"));

        let e = parse_trace("explode 1 2\n", &spec).unwrap_err();
        assert!(e.message.contains("unknown event"));

        let e = parse_trace("act 0 o1 put(1)/nil\n", &spec).unwrap_err();
        assert!(e.message.contains("takes 2 argument(s)"));

        let e = parse_trace("act 0 x1 put(1, 2)/nil\n", &spec).unwrap_err();
        assert!(e.message.contains("bad object id"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let spec = builtin::dictionary();
        let trace = parse_trace("# header\n\nfork 0 1 # trailing\n   \n", &spec).unwrap();
        assert_eq!(trace.len(), 1);
    }
}
