//! The `crace` command-line tool.
//!
//! ```text
//! crace check   <spec-file>                 # parse + lint a specification
//! crace compile <spec-file> [--dot]         # show its access points (or DOT graph)
//! crace replay  <trace-file> --spec <file> [--detector rd2|direct|fasttrack]
//! crace table2  [scale]                     # regenerate Table 2
//! crace builtins                            # list builtin specifications
//! ```
//!
//! Spec files may also name a builtin (`dictionary`, `dictionary_ext`,
//! `set`, `counter`, `register`, `queue`) instead of a path.

use crace_cli::parse_trace;
use crace_core::{translate, Direct, TraceDetector};
use crace_fasttrack::FastTrack;
use crace_model::{replay, Event, ObjId, Trace};
use crace_spec::{builtin, Spec};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("table2") => cmd_table2(&args[1..]),
        Some("builtins") => cmd_builtins(),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  crace check   <spec-file|builtin>
  crace compile <spec-file|builtin> [--dot]
  crace replay  <trace-file> --spec <spec-file|builtin> [--detector rd2|direct|fasttrack]
  crace table2  [scale]
  crace builtins
";

fn load_spec(name: &str) -> Result<Spec, String> {
    match name {
        "dictionary" => return Ok(builtin::dictionary()),
        "dictionary_ext" => return Ok(builtin::dictionary_ext()),
        "set" => return Ok(builtin::set()),
        "counter" => return Ok(builtin::counter()),
        "register" => return Ok(builtin::register()),
        "queue" => return Ok(builtin::queue()),
        _ => {}
    }
    let source = std::fs::read_to_string(name).map_err(|e| format!("cannot read `{name}`: {e}"))?;
    crace_spec::parse(&source).map_err(|e| e.render(&source))
}

fn cmd_builtins() -> Result<(), String> {
    for spec in builtin::all() {
        println!(
            "{:<16} {} method(s), ECL: {}",
            spec.name(),
            spec.num_methods(),
            spec.is_ecl()
        );
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("expected a spec file")?;
    let spec = load_spec(name)?;
    println!("spec `{}`: {} method(s)", spec.name(), spec.num_methods());
    println!("  ECL fragment: {}", spec.is_ecl());
    let missing = spec.missing_rules();
    if missing.is_empty() {
        println!("  all method pairs have commute rules");
    } else {
        println!(
            "  {} pair(s) default to `false` (never commute):",
            missing.len()
        );
        for (a, b) in missing {
            println!("    ({}, {})", spec.sig(a).name(), spec.sig(b).name());
        }
    }
    match translate(&spec) {
        Ok(compiled) => {
            let stats = compiled.stats();
            println!(
                "  translation: {} classes (from {} symbolic), max conflict degree {}",
                stats.classes, stats.raw_classes, stats.max_conflict_degree
            );
        }
        Err(e) => println!("  translation: not translatable — {e}"),
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("expected a spec file")?;
    let dot = args.iter().any(|a| a == "--dot");
    let spec = load_spec(name)?;
    let compiled = translate(&spec).map_err(|e| e.to_string())?;
    if dot {
        println!("graph conflicts {{");
        println!("  label=\"access-point conflicts of `{}`\";", spec.name());
        for i in 0..compiled.num_classes() {
            let class = crace_core::ClassId(i as u32);
            let shape = match compiled.kind(class) {
                crace_core::PointKind::Ds => "box",
                crace_core::PointKind::Slot => "ellipse",
            };
            println!(
                "  c{i} [label=\"{}\", shape={shape}];",
                compiled.label(class)
            );
        }
        for i in 0..compiled.num_classes() {
            let class = crace_core::ClassId(i as u32);
            for &other in compiled.conflicting(class) {
                if other.index() >= i {
                    println!("  c{i} -- c{};", other.index());
                }
            }
        }
        println!("}}");
    } else {
        print!("{compiled}");
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let trace_path = args.first().ok_or("expected a trace file")?;
    let mut spec_name = None;
    let mut detector = "rd2".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--spec" => {
                spec_name = args.get(i + 1).cloned();
                i += 2;
            }
            "--detector" => {
                detector = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let spec = load_spec(&spec_name.ok_or("missing --spec")?)?;
    let source = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read `{trace_path}`: {e}"))?;
    let trace = parse_trace(&source, &spec).map_err(|e| e.to_string())?;
    println!(
        "replaying {} event(s), {} thread(s), detector `{detector}` …",
        trace.len(),
        trace.num_threads()
    );

    let report = match detector.as_str() {
        "rd2" => {
            let d = TraceDetector::new();
            let compiled = Arc::new(translate(&spec).map_err(|e| e.to_string())?);
            for obj in objects_of(&trace) {
                d.register(obj, Arc::clone(&compiled));
            }
            replay(&trace, &d)
        }
        "direct" => {
            let d = Direct::new();
            let spec = Arc::new(spec);
            for obj in objects_of(&trace) {
                d.register(obj, Arc::clone(&spec));
            }
            replay(&trace, &d)
        }
        "fasttrack" => replay(&trace, &FastTrack::new()),
        other => return Err(format!("unknown detector `{other}`")),
    };
    println!("races: {report}");
    for race in report.samples() {
        println!("  - {race}");
    }
    Ok(())
}

fn objects_of(trace: &Trace) -> BTreeSet<ObjId> {
    trace
        .iter()
        .filter_map(|e| match e {
            Event::Action { action, .. } => Some(action.obj()),
            _ => None,
        })
        .collect()
}

fn cmd_table2(args: &[String]) -> Result<(), String> {
    use crace_workloads::table2::{run_table2, Table2Config};
    let scale: u64 = args
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad scale `{s}`")))
        .transpose()?
        .unwrap_or(1);
    let config = if scale == 0 {
        Table2Config::smoke()
    } else {
        let mut c = Table2Config::default();
        c.circuit.ops_per_worker *= scale as usize;
        c.snitch.updates_per_sampler *= scale as usize;
        c.snitch.rank_iterations *= scale as usize;
        c
    };
    println!("{}", run_table2(&config));
    Ok(())
}
