//! Parsing and rendering of the textual [`SimProgram`] format.
//!
//! Scripted simulator programs — the inputs of `crace explore` — are
//! stored as plain text, one directive or operation per line:
//!
//! ```text
//! # two workers race on key 1, a third is independent
//! dicts 1
//! locks 0
//! thread
//!   put 0 1 10
//!   get 0 2
//! thread
//!   put 0 1 20
//! thread
//!   put 0 2 30
//! ```
//!
//! `dicts N` / `locks N` declare the shared state, each `thread` block
//! scripts one simulated thread, and the operations are
//! `put <dict> <key> <value>`, `get <dict> <key>`, `size <dict>`,
//! `lock <l>` and `unlock <l>`. Keys and values use the trace format's
//! value syntax (`nil`, `true`, `false`, integers, `"strings"`,
//! `ref#N`), and `#` starts a comment. See [`parse_program`] and
//! [`render_program`].

use crate::tracefmt::{parse_value, render_value};
use crace_runtime::sim::{SimOp, SimProgram};
use std::error::Error;
use std::fmt;

/// An error while parsing a program file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProgParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ProgParseError {}

fn err(line: usize, message: impl Into<String>) -> ProgParseError {
    ProgParseError {
        line,
        message: message.into(),
    }
}

/// Splits a line into whitespace-separated tokens, keeping quoted
/// strings (with escapes) as single tokens.
fn tokens(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = None;
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => {
                in_quote = !in_quote;
                start.get_or_insert(i);
            }
            c if c.is_whitespace() && !in_quote => {
                if let Some(s) = start.take() {
                    out.push(&line[s..i]);
                }
            }
            _ => {
                start.get_or_insert(i);
            }
        }
    }
    if let Some(s) = start {
        out.push(&line[s..]);
    }
    out
}

/// Strips a `#` comment (quote-aware, like the trace format).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_quote = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quote => escaped = true,
            b'"' => in_quote = !in_quote,
            b'#' if !in_quote && (i == 0 || bytes[i - 1].is_ascii_whitespace()) => {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

/// Parses a program file.
///
/// # Errors
///
/// Returns a [`ProgParseError`] with the offending line for unknown
/// directives, operations outside a `thread` block, malformed indices
/// or values, and dictionary/lock indices out of the declared range
/// (so a bad file errors cleanly instead of panicking the simulator).
///
/// # Examples
///
/// ```
/// use crace_cli::parse_program;
///
/// let p = parse_program("dicts 1\nthread\n  put 0 1 10\nthread\n  put 0 1 20\n")?;
/// assert_eq!(p.threads.len(), 2);
/// # Ok::<(), crace_cli::ProgParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<SimProgram, ProgParseError> {
    let mut program = SimProgram {
        num_dicts: 0,
        num_locks: 0,
        threads: Vec::new(),
    };
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let words = tokens(line);
        let parse_idx = |w: Option<&&str>, what: &str| -> Result<usize, ProgParseError> {
            w.and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err(lineno, format!("expected {what}")))
        };
        let value = |w: Option<&&str>| -> Result<_, ProgParseError> {
            let text = w.ok_or_else(|| err(lineno, "expected a value"))?;
            parse_value(text, lineno).map_err(|e| err(e.line, e.message))
        };
        let arity = |n: usize| -> Result<(), ProgParseError> {
            if words.len() == n + 1 {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!(
                        "`{}` takes {n} operand(s), found {}",
                        words[0],
                        words.len() - 1
                    ),
                ))
            }
        };
        let script = program.threads.last_mut();
        let push = |op: SimOp| -> Result<(), ProgParseError> {
            script
                .ok_or_else(|| err(lineno, "operation outside a `thread` block"))?
                .push(op);
            Ok(())
        };
        match words[0] {
            "dicts" => {
                arity(1)?;
                program.num_dicts = parse_idx(words.get(1), "a dictionary count")?;
            }
            "locks" => {
                arity(1)?;
                program.num_locks = parse_idx(words.get(1), "a lock count")?;
            }
            "thread" => {
                arity(0)?;
                program.threads.push(Vec::new());
            }
            "put" => {
                arity(3)?;
                push(SimOp::DictPut {
                    dict: parse_idx(words.get(1), "a dictionary index")?,
                    key: value(words.get(2))?,
                    value: value(words.get(3))?,
                })?;
            }
            "get" => {
                arity(2)?;
                push(SimOp::DictGet {
                    dict: parse_idx(words.get(1), "a dictionary index")?,
                    key: value(words.get(2))?,
                })?;
            }
            "size" => {
                arity(1)?;
                push(SimOp::DictSize {
                    dict: parse_idx(words.get(1), "a dictionary index")?,
                })?;
            }
            "lock" => {
                arity(1)?;
                push(SimOp::Lock(parse_idx(words.get(1), "a lock index")?))?;
            }
            "unlock" => {
                arity(1)?;
                push(SimOp::Unlock(parse_idx(words.get(1), "a lock index")?))?;
            }
            other => {
                return Err(err(
                    lineno,
                    format!(
                        "unknown directive `{other}` \
                         (expected dicts/locks/thread/put/get/size/lock/unlock)"
                    ),
                ));
            }
        }
    }
    validate(&program)?;
    Ok(program)
}

/// Rejects out-of-range dictionary and lock indices up front.
fn validate(program: &SimProgram) -> Result<(), ProgParseError> {
    for script in &program.threads {
        for op in script {
            match op {
                SimOp::DictPut { dict, .. }
                | SimOp::DictGet { dict, .. }
                | SimOp::DictSize { dict } => {
                    if *dict >= program.num_dicts {
                        return Err(err(
                            0,
                            format!(
                                "dictionary index {dict} out of range (dicts {})",
                                program.num_dicts
                            ),
                        ));
                    }
                }
                SimOp::Lock(l) | SimOp::Unlock(l) => {
                    if *l >= program.num_locks {
                        return Err(err(
                            0,
                            format!("lock index {l} out of range (locks {})", program.num_locks),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Renders a program back to the textual format; `parse_program` of the
/// result reproduces the program exactly.
pub fn render_program(program: &SimProgram) -> String {
    let mut out = String::new();
    out.push_str(&format!("dicts {}\n", program.num_dicts));
    out.push_str(&format!("locks {}\n", program.num_locks));
    for script in &program.threads {
        out.push_str("thread\n");
        for op in script {
            match op {
                SimOp::DictPut { dict, key, value } => {
                    out.push_str(&format!(
                        "  put {dict} {} {}\n",
                        render_value(key),
                        render_value(value)
                    ));
                }
                SimOp::DictGet { dict, key } => {
                    out.push_str(&format!("  get {dict} {}\n", render_value(key)));
                }
                SimOp::DictSize { dict } => {
                    out.push_str(&format!("  size {dict}\n"));
                }
                SimOp::Lock(l) => out.push_str(&format!("  lock {l}\n")),
                SimOp::Unlock(l) => out.push_str(&format!("  unlock {l}\n")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_model::Value;

    const SAMPLE: &str = r#"
# the racy3 shape
dicts 1
locks 1
thread
  lock 0
  put 0 1 10       # same key as thread 2
  unlock 0
thread
  put 0 1 20
thread
  put 0 "a b" true
  size 0
"#;

    #[test]
    fn parses_the_sample() {
        let p = parse_program(SAMPLE).unwrap();
        assert_eq!(p.num_dicts, 1);
        assert_eq!(p.num_locks, 1);
        assert_eq!(p.threads.len(), 3);
        assert_eq!(p.threads[0].len(), 3);
        assert_eq!(
            p.threads[2][0],
            SimOp::DictPut {
                dict: 0,
                key: Value::str("a b"),
                value: Value::Bool(true),
            }
        );
    }

    #[test]
    fn round_trips_through_render() {
        let p = parse_program(SAMPLE).unwrap();
        let rendered = render_program(&p);
        assert_eq!(parse_program(&rendered).unwrap(), p);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("dicts 1\nput 0 1 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("outside a `thread` block"));

        let e = parse_program("frobnicate\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));

        let e = parse_program("dicts 1\nthread\n  put 0 1\n").unwrap_err();
        assert!(e.message.contains("takes 3 operand(s)"));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let e = parse_program("dicts 1\nthread\n  put 1 1 2\n").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_program("thread\n  lock 0\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}
