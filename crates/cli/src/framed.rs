//! The framed, checksummed trace format: crash-consistent capture.
//!
//! The plain textual format (one event per line) cannot tell a complete
//! trace from one whose writer died mid-line — the torn tail parses as a
//! malformed event, or worse, as a *different* event. The framed format
//! makes truncation detectable and the intact prefix recoverable:
//!
//! ```text
//! #%crace-trace v1 framed
//! =8:9b8b1ef1 fork 0 1
//! =24:0c33964a act 1 o1 put(5, 7)/nil
//! ```
//!
//! Each record line is `=<len>:<crc32> <event-text>`: the byte length of
//! the event text in decimal and its IEEE CRC-32 in 8 hex digits. A
//! writer appends one whole record per event and flushes, so after a
//! crash the file is a sequence of valid records followed by at most one
//! torn line. [`parse_framed_tolerant`] recovers exactly that valid
//! prefix and reports what was lost; [`parse_framed`] (and
//! [`parse_trace`](crate::parse_trace), which auto-detects the header)
//! rejects damage with a [`TraceErrorKind::Torn`] error instead.
//!
//! The header line starts with `#`, so a framed file shown to the plain
//! parser fails on the first record rather than being silently
//! misread — the formats cannot be confused.

use crate::tracefmt::{parse_event, render_event, torn, TraceErrorKind, TraceParseError};
use crace_model::{Analysis, Event, RaceReport, Trace};
use crace_spec::Spec;
use std::io::{self, Write};
use std::sync::{Mutex, PoisonError};

/// First line of every framed trace file.
pub const FRAMED_HEADER: &str = "#%crace-trace v1 framed";

/// True iff `source` declares the framed format.
pub fn is_framed(source: &str) -> bool {
    source.lines().next() == Some(FRAMED_HEADER)
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn frame(payload: &str) -> String {
    format!(
        "={}:{:08x} {payload}",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// Renders one event as a single framed record line (no trailing
/// newline) — the streaming counterpart of [`render_framed`], for
/// writers that emit records one at a time (e.g. a socket client).
pub fn frame_event(event: &Event, spec: &Spec) -> String {
    frame(&render_event(event, spec))
}

/// Checks and parses one framed record line (without its newline) into
/// an event — the streaming counterpart of [`parse_framed`], for readers
/// that consume records one at a time (e.g. a socket server). `lineno`
/// is only used in error messages.
///
/// # Errors
///
/// [`TraceErrorKind::Torn`] for framing damage (bad prefix, length, or
/// checksum), [`TraceErrorKind::Malformed`] for a checksummed record
/// whose payload is not a well-formed event.
///
/// [`TraceErrorKind::Torn`]: crate::TraceErrorKind::Torn
/// [`TraceErrorKind::Malformed`]: crate::TraceErrorKind::Malformed
pub fn parse_framed_record(
    line: &str,
    spec: &Spec,
    lineno: usize,
) -> Result<Event, TraceParseError> {
    let payload = unframe(line, lineno)?;
    parse_event(payload, spec, lineno)
}

/// Renders a whole trace in the framed format (header + one record per
/// event, each newline-terminated).
pub fn render_framed(trace: &Trace, spec: &Spec) -> String {
    let mut out = String::from(FRAMED_HEADER);
    out.push('\n');
    for event in trace {
        out.push_str(&frame(&render_event(event, spec)));
        out.push('\n');
    }
    out
}

/// Description of the damage [`parse_framed_tolerant`] recovered from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTrace {
    /// Events recovered from the valid prefix.
    pub recovered_events: usize,
    /// Bytes after the last valid record that could not be interpreted.
    pub lost_bytes: usize,
    /// 1-based line number where the damage starts.
    pub first_bad_line: usize,
    /// What exactly was wrong with the first damaged line.
    pub reason: String,
}

impl std::fmt::Display for TornTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered {} event(s); lost {} byte(s) from line {} ({})",
            self.recovered_events, self.lost_bytes, self.first_bad_line, self.reason
        )
    }
}

/// One framed line checked and unwrapped to its payload.
fn unframe(line: &str, lineno: usize) -> Result<&str, TraceParseError> {
    let body = line
        .strip_prefix('=')
        .ok_or_else(|| torn(lineno, format!("not a framed record: `{}`", clip(line))))?;
    let (len_text, rest) = body
        .split_once(':')
        .ok_or_else(|| torn(lineno, "record header cut before `:`"))?;
    let len: usize = len_text
        .parse()
        .map_err(|_| torn(lineno, format!("bad record length `{}`", clip(len_text))))?;
    let (crc_text, payload) = rest
        .split_once(' ')
        .ok_or_else(|| torn(lineno, "record header cut before payload"))?;
    let crc = (crc_text.len() == 8)
        .then(|| u32::from_str_radix(crc_text, 16).ok())
        .flatten()
        .ok_or_else(|| torn(lineno, format!("bad record checksum `{}`", clip(crc_text))))?;
    if payload.len() != len {
        return Err(torn(
            lineno,
            format!(
                "record cut short: header says {len} byte(s), line has {}",
                payload.len()
            ),
        ));
    }
    if crc32(payload.as_bytes()) != crc {
        return Err(torn(
            lineno,
            format!(
                "checksum mismatch (expected {crc_text}, payload hashes to {:08x})",
                crc32(payload.as_bytes())
            ),
        ));
    }
    Ok(payload)
}

fn clip(text: &str) -> String {
    let mut s: String = text.chars().take(24).collect();
    if s.len() < text.len() {
        s.push('…');
    }
    s
}

/// Strict framed parse: any torn record is an error (kind
/// [`TraceErrorKind::Torn`]); a valid record whose payload is not a
/// well-formed event is [`TraceErrorKind::Malformed`].
///
/// # Errors
///
/// Returns a [`TraceParseError`] carrying the first offending line.
///
/// [`TraceErrorKind::Torn`]: crate::TraceErrorKind::Torn
/// [`TraceErrorKind::Malformed`]: crate::TraceErrorKind::Malformed
pub fn parse_framed(source: &str, spec: &Spec) -> Result<Trace, TraceParseError> {
    let mut trace = Trace::new();
    match parse_framed_inner(source, spec, &mut trace) {
        None => Ok(trace),
        Some((e, _)) => Err(e),
    }
}

/// Shared scan: fills `trace` with the longest valid prefix and returns
/// the first error plus the byte offset where its line starts.
fn parse_framed_inner(
    source: &str,
    spec: &Spec,
    trace: &mut Trace,
) -> Option<(TraceParseError, usize)> {
    assert!(is_framed(source), "not a framed trace");
    let mut offset = 0usize;
    for (idx, line) in source.split('\n').enumerate() {
        let lineno = idx + 1;
        let start = offset;
        offset += line.len() + 1; // the split-off '\n'
        if lineno == 1 || line.is_empty() {
            continue; // the header, the final newline, or a stray blank
        }
        let payload = match unframe(line, lineno) {
            Ok(payload) => payload,
            Err(e) => return Some((e, start)),
        };
        match parse_event(payload, spec, lineno) {
            Ok(event) => trace.push(event),
            Err(e) => return Some((e, start)),
        }
    }
    None
}

/// Truncation-tolerant framed parse: returns the longest valid prefix
/// plus, when the file is damaged, a [`TornTrace`] accounting for
/// exactly what was lost. A malformed *payload* inside a checksummed
/// record is not truncation — it still ends the prefix, but the reason
/// says so (it indicates a writer bug, not a crash).
///
/// # Panics
///
/// Panics if `source` does not start with the framed header — check
/// [`is_framed`] first.
pub fn parse_framed_tolerant(source: &str, spec: &Spec) -> (Trace, Option<TornTrace>) {
    let mut trace = Trace::new();
    let outcome = parse_framed_inner(source, spec, &mut trace).map(|(e, start)| TornTrace {
        recovered_events: trace.len(),
        lost_bytes: source.len() - start,
        first_bad_line: e.line,
        reason: match e.kind {
            TraceErrorKind::Torn => e.message,
            TraceErrorKind::Malformed => {
                format!("checksummed record holds a malformed event: {}", e.message)
            }
        },
    });
    (trace, outcome)
}

/// A crash-consistent trace writer: one framed record per event, flushed
/// before [`FramedWriter::record`] returns, so a crash can tear at most
/// the line being written — exactly the damage
/// [`parse_framed_tolerant`] undoes.
pub struct FramedWriter<W: Write> {
    sink: W,
}

impl<W: Write> FramedWriter<W> {
    /// Writes the framed header and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W) -> io::Result<FramedWriter<W>> {
        sink.write_all(FRAMED_HEADER.as_bytes())?;
        sink.write_all(b"\n")?;
        sink.flush()?;
        Ok(FramedWriter { sink })
    }

    /// Appends one event as a framed record and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn record(&mut self, event: &Event, spec: &Spec) -> io::Result<()> {
        self.sink
            .write_all(frame(&render_event(event, spec)).as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.sink.flush()
    }

    /// Resumes writing into a sink that already carries the framed
    /// header — a capture file reopened in append mode after a daemon
    /// restart. Writes nothing: the next [`FramedWriter::record`]
    /// continues the existing record sequence.
    pub fn append(sink: W) -> FramedWriter<W> {
        FramedWriter { sink }
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// An [`Analysis`] that streams every event straight to a
/// [`FramedWriter`] — the crash-consistent counterpart of
/// [`Recorder`](crace_model::Recorder). Attach it (e.g. via
/// [`Observer`](crace_model::Observer) or as the runtime's analysis) and
/// the capture on disk is complete up to the last flushed event no
/// matter how the process dies.
///
/// The lock is a poisoning [`std::sync::Mutex`], recovered on poison:
/// a panicking writer thread must not cost the other threads their
/// capture (the writer only ever appends whole records, so the state is
/// consistent at every step).
///
/// I/O errors are sticky: the first one is kept and later events are
/// dropped silently ([`StreamingRecorder::io_error`] exposes it; a
/// capture must never panic the application it observes).
pub struct StreamingRecorder<W: Write + Send> {
    writer: Mutex<(FramedWriter<W>, Option<io::Error>)>,
    spec: Spec,
}

impl<W: Write + Send> StreamingRecorder<W> {
    /// Wraps `sink`, writing the header immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(sink: W, spec: Spec) -> io::Result<StreamingRecorder<W>> {
        Ok(StreamingRecorder {
            writer: Mutex::new((FramedWriter::new(sink)?, None)),
            spec,
        })
    }

    fn write(&self, event: Event) {
        let mut guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.1.is_some() {
            return;
        }
        if let Err(e) = guard.0.record(&event, &self.spec) {
            guard.1 = Some(e);
        }
    }

    /// The first I/O error the writer hit, if any (later events were
    /// dropped from the capture).
    pub fn io_error(&self) -> Option<io::ErrorKind> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .1
            .as_ref()
            .map(io::Error::kind)
    }

    /// Unwraps the underlying sink, discarding any sticky error.
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .into_inner()
    }
}

impl<W: Write + Send> Analysis for StreamingRecorder<W> {
    fn name(&self) -> &str {
        "streaming-recorder"
    }

    fn on_fork(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        self.write(Event::Fork { parent, child });
    }

    fn on_join(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        self.write(Event::Join { parent, child });
    }

    fn on_acquire(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        self.write(Event::Acquire { tid, lock });
    }

    fn on_release(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        self.write(Event::Release { tid, lock });
    }

    fn on_read(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        self.write(Event::Read { tid, loc });
    }

    fn on_write(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        self.write(Event::Write { tid, loc });
    }

    fn on_action(&self, tid: crace_model::ThreadId, action: &crace_model::Action) {
        self.write(Event::Action {
            tid,
            action: action.clone(),
        });
    }

    fn report(&self) -> RaceReport {
        RaceReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_trace;
    use crace_model::{replay, ThreadId};
    use crace_spec::builtin;

    fn sample() -> (Trace, Spec) {
        let spec = builtin::dictionary();
        let trace = parse_trace(
            "fork 0 1\nfork 0 2\nact 2 o1 put(\"a.com\", 1)/nil\nact 1 o1 put(\"a.com\", 2)/1\njoin 0 1\njoin 0 2\n",
            &spec,
        )
        .unwrap();
        (trace, spec)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framed_round_trip_via_autodetect() {
        let (trace, spec) = sample();
        let rendered = render_framed(&trace, &spec);
        assert!(is_framed(&rendered));
        // Both the explicit and the auto-detecting entry points agree.
        assert_eq!(parse_framed(&rendered, &spec).unwrap(), trace);
        assert_eq!(parse_trace(&rendered, &spec).unwrap(), trace);
    }

    #[test]
    fn torn_tail_is_detected_and_recovered() {
        let (trace, spec) = sample();
        let rendered = render_framed(&trace, &spec);
        // Tear the file mid-way through the final record.
        let cut = rendered.len() - 7;
        let torn_text = &rendered[..cut];
        let e = parse_trace(torn_text, &spec).unwrap_err();
        assert_eq!(e.kind, crate::TraceErrorKind::Torn);

        let (recovered, outcome) = parse_framed_tolerant(torn_text, &spec);
        let outcome = outcome.expect("damage must be reported");
        assert_eq!(recovered.len(), trace.len() - 1);
        assert_eq!(recovered.events(), &trace.events()[..trace.len() - 1]);
        assert_eq!(outcome.recovered_events, trace.len() - 1);
        // Exactly the torn last line was lost.
        let last_line_start = torn_text.rfind('\n').unwrap() + 1;
        assert_eq!(outcome.lost_bytes, torn_text.len() - last_line_start);
    }

    #[test]
    fn every_truncation_point_recovers_a_clean_prefix() {
        let (trace, spec) = sample();
        let rendered = render_framed(&trace, &spec);
        for cut in FRAMED_HEADER.len() + 1..rendered.len() {
            let torn_text = &rendered[..cut];
            let (recovered, outcome) = parse_framed_tolerant(torn_text, &spec);
            assert!(recovered.len() <= trace.len());
            assert_eq!(
                recovered.events(),
                &trace.events()[..recovered.len()],
                "cut at byte {cut} must recover a prefix"
            );
            if recovered.len() < trace.len() {
                match outcome {
                    Some(outcome) => {
                        assert_eq!(outcome.recovered_events, recovered.len());
                        assert!(outcome.lost_bytes > 0);
                    }
                    // A cut on a record boundary (or one losing only the
                    // trailing newline of a CRC-valid record) leaves a
                    // valid shorter file: only whole events are lost,
                    // which a record-granular format cannot (and need
                    // not) flag.
                    None => assert!(
                        torn_text.ends_with('\n') || rendered.as_bytes()[cut] == b'\n',
                        "cut at byte {cut}"
                    ),
                }
            }
        }
    }

    #[test]
    fn corruption_flips_are_always_detected() {
        let (trace, spec) = sample();
        let rendered = render_framed(&trace, &spec);
        let body_start = FRAMED_HEADER.len() + 1;
        // Flip one bit at a time through the whole body; the parse must
        // either fail or (for flips inside a record header's numbers
        // that keep it self-consistent — impossible for CRC-protected
        // payloads) still yield a prefix of the original.
        let bytes = rendered.as_bytes();
        for pos in body_start..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.to_vec();
                mutated[pos] ^= 1 << bit;
                let Ok(text) = String::from_utf8(mutated) else {
                    continue;
                };
                match parse_framed(&text, &spec) {
                    Err(_) => {}
                    Ok(parsed) => assert_eq!(
                        parsed, trace,
                        "flip at byte {pos} bit {bit} silently changed the trace"
                    ),
                }
            }
        }
    }

    #[test]
    fn per_record_api_round_trips_and_rejects_damage() {
        let (trace, spec) = sample();
        for (i, event) in trace.iter().enumerate() {
            let line = frame_event(event, &spec);
            assert_eq!(&parse_framed_record(&line, &spec, i + 1).unwrap(), event);
            // A flipped payload byte must be caught by the checksum.
            let mut damaged = line.clone().into_bytes();
            let last = damaged.len() - 1;
            damaged[last] ^= 0x20;
            let damaged = String::from_utf8(damaged).unwrap();
            if damaged != line {
                let e = parse_framed_record(&damaged, &spec, i + 1).unwrap_err();
                assert_eq!(e.kind, crate::TraceErrorKind::Torn);
            }
        }
        // The per-record renderer agrees with the whole-trace renderer.
        let rendered = render_framed(&trace, &spec);
        let from_records: String = std::iter::once(FRAMED_HEADER.to_string())
            .chain(trace.iter().map(|e| frame_event(e, &spec)))
            .map(|l| l + "\n")
            .collect();
        assert_eq!(rendered, from_records);
    }

    #[test]
    fn streaming_recorder_capture_replays_identically() {
        let (trace, spec) = sample();
        let recorder = StreamingRecorder::new(Vec::new(), spec.clone()).unwrap();
        replay(&trace, &recorder);
        assert_eq!(recorder.io_error(), None);
        let bytes = recorder.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(parse_trace(&text, &spec).unwrap(), trace);
    }

    #[test]
    fn streaming_recorder_survives_a_poisoned_lock() {
        let (_, spec) = sample();
        let recorder =
            std::sync::Arc::new(StreamingRecorder::new(Vec::new(), spec.clone()).unwrap());
        let r = std::sync::Arc::clone(&recorder);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            let _guard = r.writer.lock().unwrap();
            panic!("die holding the capture lock");
        })
        .join();
        std::panic::set_hook(prev);
        // The capture keeps working after the poisoning panic.
        recorder.on_fork(ThreadId(0), ThreadId(1));
        assert_eq!(recorder.io_error(), None);
        let text = String::from_utf8(
            std::sync::Arc::try_unwrap(recorder)
                .unwrap_or_else(|_| panic!("sole owner"))
                .into_inner(),
        )
        .unwrap();
        assert_eq!(parse_trace(&text, &spec).unwrap().len(), 1);
    }
}
