//! Library half of the `crace` command-line tool: the textual trace
//! and simulator-program formats.
//!
//! Recorded executions can be stored as plain text, one event per line,
//! and replayed into any detector offline — the workflow RoadRunner users
//! get from its trace dumps:
//!
//! ```text
//! # fork/join/acq/rel <tid> <id>, act <tid> o<obj> name(args…)/ret
//! fork 0 1
//! fork 0 2
//! act 2 o1 put("a.com", 1)/nil
//! act 1 o1 put("a.com", 2)/1
//! join 0 1
//! join 0 2
//! act 0 o1 size()/1
//! ```
//!
//! See [`parse_trace`] and [`render_trace`]. Values are `nil`, `true`,
//! `false`, integers, `"strings"`, and `ref#N`. Method names are resolved
//! against a [`Spec`](crace_spec::Spec), so a trace file is interpreted relative to the
//! specification it is replayed under.
//!
//! [`parse_program`] and [`render_program`] do the same for the scripted
//! [`SimProgram`](crace_runtime::sim::SimProgram)s that `crace explore`
//! model-checks.
//!
//! For capture that must survive crashes there is a second, *framed*
//! trace format ([`render_framed`], [`FramedWriter`],
//! [`StreamingRecorder`]): every event is a length-prefixed,
//! CRC-checksummed record, so a file torn mid-write is detected
//! ([`TraceErrorKind::Torn`]) and its intact prefix recovered
//! ([`parse_framed_tolerant`]). [`parse_trace`] auto-detects the framed
//! header, so framed files work everywhere plain ones do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod framed;
mod progfmt;
mod tracefmt;

pub use framed::{
    crc32, frame_event, is_framed, parse_framed, parse_framed_record, parse_framed_tolerant,
    render_framed, FramedWriter, StreamingRecorder, TornTrace, FRAMED_HEADER,
};
pub use progfmt::{parse_program, render_program, ProgParseError};
pub use tracefmt::{parse_trace, render_trace, TraceErrorKind, TraceParseError};
