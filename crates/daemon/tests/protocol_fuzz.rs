//! Malformed-input fuzz: the daemon must survive arbitrary garbage.
//!
//! Every case here is a byte string thrown at a live server on a fresh
//! connection. The contract is uniform: the server never panics, never
//! wedges, answers with an `ERR` line (or an HTTP error) where a reply
//! is possible, and — the part each case re-proves — keeps serving
//! clean sessions afterwards. The corpus covers bad HELLOs, oversized
//! frames and announced lengths, CRC flips, truncated length prefixes,
//! binary garbage, interleaved garbage mid-session, and HTTP junk.

use crace_daemon::{Client, Endpoint, Server, ServerConfig};
use crace_spec::builtin;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server() -> Server {
    Server::start(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServerConfig::default(),
    )
    .expect("bind fuzz server")
}

fn addr(server: &Server) -> String {
    match server.endpoint() {
        Endpoint::Tcp(a) => a.clone(),
        Endpoint::Unix(_) => unreachable!("fuzz server is TCP"),
    }
}

/// Throws `payload` at the server on a fresh socket and drains whatever
/// comes back (bounded by the read timeout, so a mute server cannot hang
/// the test).
fn throw(addr: &str, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The server may close its end mid-write (e.g. after an early ERR);
    // a broken pipe here is the server working as intended.
    let _ = stream.write_all(payload);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    String::from_utf8_lossy(&reply).into_owned()
}

/// The aliveness probe: a complete clean session must still work.
fn assert_alive(server: &Server) {
    let mut client = Client::connect(server.endpoint()).expect("server stopped accepting");
    client
        .hello("probe", "dictionary", 0, None)
        .expect("server stopped taking sessions");
    let spec = builtin::dictionary();
    let event = crace_model::Event::Fork {
        parent: crace_model::ThreadId(0),
        child: crace_model::ThreadId(1),
    };
    client.send_event(&event, &spec).expect("send");
    let (report, stats) = client.bye().expect("BYE");
    assert!(report.contains("\"total\""));
    assert_eq!(stats.get("events"), 1);
}

#[test]
fn forty_flavors_of_garbage_cannot_kill_the_server() {
    let server = start_server();
    let addr = addr(&server);
    let spec = builtin::dictionary();
    let valid_record = crace_cli::frame_event(
        &crace_model::Event::Fork {
            parent: crace_model::ThreadId(0),
            child: crace_model::ThreadId(1),
        },
        &spec,
    );

    let long_name = "a".repeat(65);
    let long_spec = "s".repeat(300);
    let huge_line = "x".repeat(80 * 1024);
    let mut flipped = valid_record.clone().into_bytes();
    let flip_at = flipped.len() - 1;
    flipped[flip_at] ^= 0x20;
    let flipped = String::from_utf8_lossy(&flipped).into_owned();

    let cases: Vec<(&str, Vec<u8>)> = vec![
        // --- HELLO abuse ---
        ("empty hello", b"HELLO\n".to_vec()),
        ("hello missing spec", b"HELLO x\n".to_vec()),
        ("hello dash name", b"HELLO -x dictionary\n".to_vec()),
        ("hello dot name", b"HELLO .. dictionary\n".to_vec()),
        ("hello slash name", b"HELLO a/b dictionary\n".to_vec()),
        (
            "hello unknown spec",
            b"HELLO ok no-such-spec-anywhere\n".to_vec(),
        ),
        (
            "hello bad workers",
            b"HELLO ok dictionary workers=abc\n".to_vec(),
        ),
        (
            "hello huge workers",
            b"HELLO ok dictionary workers=99999\n".to_vec(),
        ),
        (
            "hello negative workers",
            b"HELLO ok dictionary workers=-1\n".to_vec(),
        ),
        (
            "hello bad fault plan",
            b"HELLO ok dictionary faults=bogus@zzz\n".to_vec(),
        ),
        (
            "hello unknown option",
            b"HELLO ok dictionary frobnicate=1\n".to_vec(),
        ),
        ("hello lowercase verb", b"hello ok dictionary\n".to_vec()),
        (
            "hello long name",
            format!("HELLO {long_name} dictionary\n").into_bytes(),
        ),
        (
            "hello long spec",
            format!("HELLO ok {long_spec}\n").into_bytes(),
        ),
        (
            "double hello",
            b"HELLO a dictionary\nHELLO b dictionary\n".to_vec(),
        ),
        // --- control verbs out of place ---
        ("report before hello", b"REPORT\n".to_vec()),
        ("bye before hello", b"BYE\n".to_vec()),
        (
            "report with args",
            b"HELLO r1 dictionary\nREPORT now please\n".to_vec(),
        ),
        ("bye with args", b"HELLO r2 dictionary\nBYE bye\n".to_vec()),
        ("unknown verb", b"FROBNICATE the detector\n".to_vec()),
        // --- framed-record damage ---
        (
            "record before hello",
            format!("{valid_record}\n").into_bytes(),
        ),
        ("bare equals", b"=\n".to_vec()),
        ("empty length", b"=:deadbeef x\n".to_vec()),
        ("alpha length", b"=abc:deadbeef x\n".to_vec()),
        ("truncated prefix no colon", b"=12345\n".to_vec()),
        (
            "oversized announcement",
            b"=999999999:deadbeef x\n".to_vec(),
        ),
        (
            "length payload mismatch",
            b"HELLO f1 dictionary\n=99:00000000 fork 0 1\n".to_vec(),
        ),
        (
            "crc flip",
            format!("HELLO f2 dictionary\n{flipped}\n").into_bytes(),
        ),
        (
            "bad crc digits",
            b"HELLO f3 dictionary\n=10:zzzzzzzz fork 0 1\n".to_vec(),
        ),
        (
            "garbage between records",
            format!("HELLO f4 dictionary\n{valid_record}\nGARBAGE IN THE STREAM\n").into_bytes(),
        ),
        (
            "truncated record then eof",
            format!("HELLO f5 dictionary\n{valid_record}\n=13:0000").into_bytes(),
        ),
        // --- raw bytes ---
        ("empty connection", Vec::new()),
        ("lone newline", b"\n".to_vec()),
        ("null bytes", b"\x00\x00\x00\x00\n".to_vec()),
        ("invalid utf8", b"\xff\xfe\xfd HELLO\n".to_vec()),
        (
            "invalid utf8 mid-session",
            format!("HELLO f6 dictionary\n{valid_record}\n")
                .into_bytes()
                .into_iter()
                .chain(b"\xffgarbage\xfe\n".iter().copied())
                .collect(),
        ),
        ("huge line no newline", huge_line.clone().into_bytes()),
        (
            "huge line with newline",
            format!("{huge_line}\n").into_bytes(),
        ),
        // --- HTTP junk ---
        ("bare get", b"GET\n".to_vec()),
        ("http 404", b"GET /nothere HTTP/1.1\r\n\r\n".to_vec()),
        ("http post", b"POST /metrics HTTP/1.1\r\n\r\n".to_vec()),
        ("http no version", b"GET /metrics\r\n\r\n".to_vec()),
        ("http absurd header flood", {
            let mut req = b"GET /metrics HTTP/1.1\r\n".to_vec();
            for i in 0..200 {
                req.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(100)).as_bytes());
            }
            req.extend_from_slice(b"\r\n");
            req
        }),
    ];

    assert!(cases.len() >= 40, "corpus shrank to {}", cases.len());
    for (name, payload) in &cases {
        let reply = throw(&addr, payload);
        // Where the server could say anything at all, it speaks the
        // protocol: an ERR line, an OK/REPORT exchange, or HTTP.
        if !reply.is_empty() {
            assert!(
                reply.starts_with("ERR ")
                    || reply.starts_with("OK ")
                    || reply.starts_with("HTTP/1.1 "),
                "case `{name}`: server spoke gibberish: {reply:.120}"
            );
        }
        assert_alive(&server);
    }

    // Nothing above may leak a session (every torn one finalizes).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.active_sessions() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "fuzz leaked {} session(s)",
            server.active_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// Hostile connection counts: more simultaneous connections than the
/// bound. The extras are turned away with an `ERR`, the server keeps
/// serving, and the reject counter moves.
#[test]
fn connection_flood_is_bounded_not_fatal() {
    let server = Server::start(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        ServerConfig {
            max_connections: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = addr(&server);
    // Hold several sessions open…
    let mut held = Vec::new();
    for i in 0..4 {
        let mut client = Client::connect(server.endpoint()).expect("connect");
        client
            .hello(&format!("hold-{i}"), "dictionary", 0, None)
            .expect("HELLO");
        held.push(client);
    }
    // …then flood. Some rejections must occur; none may kill the server.
    let mut rejected = 0;
    for _ in 0..12 {
        let reply = throw(&addr, b"HELLO flood dictionary\n");
        if reply.contains("connection capacity") {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "the bound never engaged");
    drop(held);
    // With the held sessions gone, service resumes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = Client::connect(server.endpoint()).expect("connect");
        if client.hello("after-flood", "dictionary", 0, None).is_ok() {
            let _ = client.bye();
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never recovered from the flood"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
