//! The daemon server: a Unix-domain or TCP listener multiplexing
//! concurrent detection sessions, std-only, thread-per-connection.
//!
//! The accept loop is bounded (at most [`ServerConfig::max_connections`]
//! handler threads; excess connections get one `ERR` line and a close),
//! and each connection speaks either:
//!
//! * the control protocol of [`crate::protocol`] — `HELLO`, framed
//!   records, `REPORT`, `BYE` — driving exactly one session, or
//! * HTTP, sniffed from a leading `GET `: `/metrics` answers the
//!   Prometheus text exposition, `/metrics.json` (or
//!   `/metrics?format=json`) the JSON rendering. The scrape merges the
//!   server's own registry with every live session's, prefixed
//!   `session.<name>.` — the hand-written writers from `crace-obs`, no
//!   HTTP library.
//!
//! A client disconnect or damaged record finalizes the session as
//! *torn*: the valid prefix is still reported (the same recovery
//! posture as `parse_framed_tolerant`), with exact lost-bytes/records
//! accounting, and the outcome is retained server-side so nothing about
//! the tenant's run is lost with the connection.

use crate::protocol::{parse_request, Request, Resume, MAX_LINE_BYTES};
use crate::session::{peek_checkpoint_meta, Session, SessionConfig, SessionOutcome, StreamDamage};
use crace_cli::{parse_framed_tolerant, FRAMED_HEADER};
use crace_core::{translate, CompiledSpec};
use crace_obs::{Registry, Snapshot};
use crace_runtime::FaultPlan;
use crace_spec::{builtin, Spec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a server listens (or a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7414` (port 0 picks a free port).
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Server configuration. The defaults suit tests and small deployments;
/// `crace serve` exposes the interesting ones as flags.
pub struct ServerConfig {
    /// Worker count for sessions whose HELLO has no `workers=` option.
    pub default_workers: usize,
    /// Per-session ingress ring capacity (events).
    pub ring_capacity: usize,
    /// Grace a data-plane push waits on a full ring before shedding.
    pub shed_grace: Duration,
    /// Handler-thread bound; further connections are turned away.
    pub max_connections: usize,
    /// Accept `faults=` HELLO options (the chaos test plane). A
    /// production `crace serve` keeps this off unless `--allow-faults`.
    pub allow_faults: bool,
    /// When set, every session's intact records are captured to
    /// `<dir>/<session>.framed.trace` (collision-safe suffixes).
    pub record_dir: Option<PathBuf>,
    /// When set, every session records a span timeline, written to
    /// `<dir>/<session>.spans.json` at finalize.
    pub trace_dir: Option<PathBuf>,
    /// How many finished-session outcomes to retain for inspection.
    pub outcome_capacity: usize,
    /// Write a durable session checkpoint every this many ingested
    /// records (`0` disables checkpointing). Requires `record_dir` —
    /// a checkpoint without its capture tail cannot catch up to the
    /// present, so none is written.
    pub checkpoint_every: u64,
    /// Also checkpoint when the last one is older than this *and* new
    /// records arrived since (checked on ingest; an idle session has
    /// nothing new to make durable).
    pub checkpoint_max_age: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            default_workers: 0,
            ring_capacity: 4096,
            shed_grace: Duration::from_millis(50),
            max_connections: 64,
            allow_faults: true,
            record_dir: None,
            trace_dir: None,
            outcome_capacity: 128,
            checkpoint_every: 256,
            checkpoint_max_age: Duration::from_secs(5),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// One accepted connection, unified over the two transports.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    registry: Registry,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    outcomes: Mutex<OutcomeLog>,
    specs: Mutex<HashMap<String, (Spec, Arc<CompiledSpec>)>>,
}

/// Bounded log of finished sessions: latest outcome per name wins,
/// oldest names evicted beyond the capacity.
#[derive(Default)]
struct OutcomeLog {
    by_name: HashMap<String, SessionOutcome>,
    order: Vec<String>,
}

impl OutcomeLog {
    fn insert(&mut self, outcome: SessionOutcome, capacity: usize) {
        let name = outcome.name.clone();
        if self.by_name.insert(name.clone(), outcome).is_none() {
            self.order.push(name);
        }
        while self.order.len() > capacity.max(1) {
            let evicted = self.order.remove(0);
            self.by_name.remove(&evicted);
        }
    }
}

/// A running daemon. Dropping it stops the accept loop (in-flight
/// connections finish on their own threads) and removes a Unix socket
/// file the server created.
pub struct Server {
    inner: Arc<Inner>,
    endpoint: Endpoint,
    accept_thread: Option<JoinHandle<()>>,
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Binds `endpoint` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (address in use, bad path, …).
    pub fn start(endpoint: &Endpoint, cfg: ServerConfig) -> std::io::Result<Server> {
        let (listener, bound, socket_path) = match endpoint {
            Endpoint::Unix(path) => {
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (
                    Listener::Unix(l),
                    Endpoint::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                let bound = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), bound, None)
            }
        };
        let inner = Arc::new(Inner {
            cfg,
            registry: Registry::new(),
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            sessions: Mutex::new(HashMap::new()),
            outcomes: Mutex::new(OutcomeLog::default()),
            specs: Mutex::new(HashMap::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("craced-accept".to_string())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(Server {
            inner,
            endpoint: bound,
            accept_thread: Some(accept_thread),
            socket_path,
        })
    }

    /// The endpoint actually bound (for `Tcp` with port 0, the real port).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Number of live connections.
    pub fn active_connections(&self) -> usize {
        self.inner.active_conns.load(Ordering::Relaxed)
    }

    /// The retained outcome of a finished session, if any.
    pub fn outcome(&self, name: &str) -> Option<SessionOutcome> {
        self.inner
            .outcomes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .by_name
            .get(name)
            .cloned()
    }

    /// The merged metrics snapshot (server + live sessions), exactly
    /// what `/metrics` renders.
    pub fn scrape(&self) -> Snapshot {
        scrape(&self.inner)
    }

    /// The server's own registry (connection/session totals).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Stops accepting and joins the accept thread. Connection handler
    /// threads finish on their own (they exit when their client does).
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(inner: Arc<Inner>, listener: Listener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.stop.load(Ordering::SeqCst) {
        let accepted = match &listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        match accepted {
            Ok(conn) => {
                handlers.retain(|h| !h.is_finished());
                inner.registry.counter("daemon.connections").inc();
                if inner.active_conns.load(Ordering::Relaxed) >= inner.cfg.max_connections {
                    inner.registry.counter("daemon.connections_rejected").inc();
                    let mut conn = conn;
                    let _ = conn.write_all(b"ERR server at connection capacity\n");
                    continue;
                }
                inner.active_conns.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&inner);
                match std::thread::Builder::new()
                    .name("craced-conn".to_string())
                    .spawn(move || {
                        handle_connection(&conn_inner, conn);
                        conn_inner.active_conns.fetch_sub(1, Ordering::Relaxed);
                    }) {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        inner.active_conns.fetch_sub(1, Ordering::Relaxed);
                        inner.registry.counter("daemon.connections_rejected").inc();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Grace for handlers whose clients already hung up; live ones are
    // left to finish on their own.
    for handle in handlers {
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
}

/// Reads one line (up to `\n`) with a hard size cap. Returns the raw
/// bytes without the newline, whether a newline terminated the line, or
/// `None` at EOF before any byte.
fn read_capped_line<R: BufRead>(reader: &mut R) -> std::io::Result<Option<(Vec<u8>, bool)>> {
    let mut buf = Vec::new();
    let n = reader
        .take((MAX_LINE_BYTES + 2) as u64)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    let newline = buf.last() == Some(&b'\n');
    if newline {
        buf.pop();
    }
    Ok(Some((buf, newline)))
}

fn handle_connection(inner: &Arc<Inner>, conn: Conn) {
    let writer = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(conn);
    let mut writer = writer;
    let first = match read_capped_line(&mut reader) {
        Ok(Some(line)) => line,
        _ => return,
    };
    if first.0.starts_with(b"GET ") {
        serve_http(inner, &mut reader, &mut writer, &first.0);
        return;
    }
    drive_protocol(inner, &mut reader, &mut writer, first);
}

/// The session a connection is driving, plus its wire accounting.
struct ConnState {
    session: Arc<Session>,
}

fn drive_protocol(
    inner: &Arc<Inner>,
    reader: &mut BufReader<Conn>,
    writer: &mut Conn,
    first: (Vec<u8>, bool),
) {
    let mut state: Option<ConnState> = None;
    let mut pending = Some(first);
    loop {
        let (bytes, newline) = match pending.take() {
            Some(line) => line,
            None => match read_capped_line(reader) {
                Ok(Some(line)) => line,
                Ok(None) => {
                    // EOF. Without a BYE this is a torn stream; a clean
                    // close after BYE never reaches here (BYE breaks).
                    if let Some(s) = state.take() {
                        finish_torn(inner, writer, s, 0, 0, "connection closed without BYE");
                    }
                    return;
                }
                Err(_) => {
                    if let Some(s) = state.take() {
                        finish_torn(inner, writer, s, 0, 0, "read error mid-stream");
                    }
                    return;
                }
            },
        };
        if !newline {
            // A torn tail: bytes arrived but the line never completed.
            let lost = bytes.len() as u64;
            if let Some(s) = state.take() {
                finish_torn(inner, writer, s, lost, 1, "stream tore mid-record");
            } else {
                protocol_error(inner, writer, "input ended mid-line");
            }
            return;
        }
        let line = match String::from_utf8(bytes) {
            Ok(line) => line,
            Err(e) => {
                let lost = (e.as_bytes().len() + 1) as u64;
                if let Some(s) = state.take() {
                    finish_torn(inner, writer, s, lost, 1, "record is not valid UTF-8");
                } else {
                    protocol_error(inner, writer, "request is not valid UTF-8");
                }
                return;
            }
        };
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(message) => {
                // Garbage on an open session tears it; before HELLO it
                // is just a rejected connection.
                if let Some(s) = state.take() {
                    let lost = (line.len() + 1) as u64;
                    finish_torn(inner, writer, s, lost, 1, &message);
                } else {
                    protocol_error(inner, writer, &message);
                }
                return;
            }
        };
        match request {
            Request::Ignored => {}
            Request::Hello(hello) => {
                if let Some(s) = state.take() {
                    // A second HELLO is a protocol error, but the open
                    // session still gets its torn finalization — it must
                    // never leak.
                    inner.registry.counter("daemon.protocol_errors").inc();
                    finish_torn(inner, writer, s, 0, 0, "second HELLO on an open session");
                    return;
                }
                match open_session(inner, &hello) {
                    Ok(session) => {
                        let ok = format!(
                            "OK craced/1 session={} spec={} workers={}\n",
                            session.name(),
                            hello.spec,
                            if hello.workers > 0 {
                                hello.workers
                            } else {
                                inner.cfg.default_workers
                            }
                        );
                        if writer.write_all(ok.as_bytes()).is_err() {
                            close_session(inner, ConnState { session }, false, None);
                            return;
                        }
                        state = Some(ConnState { session });
                    }
                    Err(message) => {
                        protocol_error(inner, writer, &message);
                        return;
                    }
                }
            }
            Request::Resume(resume) => {
                if let Some(s) = state.take() {
                    inner.registry.counter("daemon.protocol_errors").inc();
                    finish_torn(inner, writer, s, 0, 0, "RESUME on an open session");
                    return;
                }
                match resume_session(inner, &resume) {
                    Ok(resumed) => {
                        let ok = format!(
                            "OK craced/1 resume session={} spec={} workers={} seq={} \
                             lost_bytes={} lost_records={}\n",
                            resumed.session.name(),
                            resume.spec,
                            if resume.workers > 0 {
                                resume.workers
                            } else {
                                inner.cfg.default_workers
                            },
                            resumed.recovered,
                            resumed.lost_bytes,
                            resumed.lost_records,
                        );
                        if writer.write_all(ok.as_bytes()).is_err() {
                            close_session(
                                inner,
                                ConnState {
                                    session: resumed.session,
                                },
                                false,
                                None,
                            );
                            return;
                        }
                        state = Some(ConnState {
                            session: resumed.session,
                        });
                    }
                    Err(message) => {
                        protocol_error(inner, writer, &message);
                        return;
                    }
                }
            }
            Request::Record(record) => match &state {
                Some(s) => {
                    if let Err(e) = s.session.ingest_line(&record) {
                        let s = state.take().expect("checked");
                        let lost = (record.len() + 1) as u64;
                        finish_torn(inner, writer, s, lost, 1, &e.message);
                        return;
                    }
                    maybe_checkpoint(inner, &s.session);
                }
                None => {
                    protocol_error(inner, writer, "HELLO first");
                    return;
                }
            },
            Request::Report => match &state {
                Some(s) => {
                    let json = s.session.report_now().to_json();
                    if write_report(writer, &json).is_err() {
                        let s = state.take().expect("checked");
                        finish_torn(inner, writer, s, 0, 0, "write failed mid-report");
                        return;
                    }
                }
                None => {
                    protocol_error(inner, writer, "HELLO first");
                    return;
                }
            },
            Request::Bye => match state.take() {
                Some(s) => {
                    let outcome = close_session(inner, s, true, None);
                    let _ = write_report(writer, &outcome.report_json);
                    let _ = writer.write_all(stats_line(&outcome).as_bytes());
                    return;
                }
                None => {
                    protocol_error(inner, writer, "HELLO first");
                    return;
                }
            },
        }
    }
}

fn protocol_error(inner: &Arc<Inner>, writer: &mut Conn, message: &str) {
    inner.registry.counter("daemon.protocol_errors").inc();
    let _ = writer.write_all(format!("ERR {message}\n").as_bytes());
}

fn write_report(writer: &mut Conn, json: &str) -> std::io::Result<()> {
    writer.write_all(format!("REPORT {}\n", json.len()).as_bytes())?;
    writer.write_all(json.as_bytes())?;
    writer.flush()
}

fn stats_line(outcome: &SessionOutcome) -> String {
    let damage = outcome.damage.as_ref();
    format!(
        "STATS events={} shed_ring={} shed_quarantine={} panics={} races={} \
         lost_bytes={} lost_records={} torn={} degraded={} \
         checkpoint_seq={} checkpoint_age_ms={} respawns={}\n",
        outcome.events_ingested,
        outcome.shed_ring,
        outcome.shed_quarantine,
        outcome.analysis_panics,
        outcome.report.total(),
        damage.map_or(0, |d| d.lost_bytes),
        damage.map_or(0, |d| d.lost_records),
        u8::from(outcome.damage.is_some()),
        u8::from(outcome.degraded),
        outcome.checkpoint_seq,
        outcome.checkpoint_age_ms,
        outcome.respawns,
    )
}

/// Finalizes a torn session: report + stats still go out (best effort —
/// the peer may already be gone), the outcome is retained.
fn finish_torn(
    inner: &Arc<Inner>,
    writer: &mut Conn,
    s: ConnState,
    lost_bytes: u64,
    lost_records: u64,
    reason: &str,
) {
    let damage = StreamDamage {
        lost_bytes,
        lost_records,
        reason: reason.to_string(),
    };
    let outcome = close_session(inner, s, false, Some(damage));
    let _ = writer.write_all(format!("ERR torn: {reason}\n").as_bytes());
    let _ = write_report(writer, &outcome.report_json);
    let _ = writer.write_all(stats_line(&outcome).as_bytes());
}

/// Resolves a spec by builtin name or server-side path, caching the
/// parse + translation.
fn resolve_spec(inner: &Inner, name: &str) -> Result<(Spec, Arc<CompiledSpec>), String> {
    let mut cache = inner.specs.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(entry) = cache.get(name) {
        return Ok(entry.clone());
    }
    let source = match builtin::source(name) {
        Some(src) => src.to_string(),
        None => std::fs::read_to_string(name).map_err(|e| format!("cannot read `{name}`: {e}"))?,
    };
    let spec = crace_spec::parse(&source).map_err(|e| format!("spec `{name}`: {}", e.message()))?;
    let compiled = Arc::new(translate(&spec).map_err(|e| format!("spec `{name}`: {e}"))?);
    cache.insert(name.to_string(), (spec.clone(), Arc::clone(&compiled)));
    Ok((spec, compiled))
}

/// The capture file name of `session` at lineage `attempt` (1 = the
/// original, 2… = collision suffixes).
fn capture_file_name(session: &str, attempt: u32) -> String {
    if attempt == 1 {
        format!("{session}.framed.trace")
    } else {
        format!("{session}-{attempt}.framed.trace")
    }
}

/// Opens a collision-safe per-session capture file in `dir`:
/// `<session>.framed.trace`, then `<session>-2.framed.trace`, … —
/// `create_new` makes the claim atomic, so two *fresh* sessions with a
/// reused name never interleave writes into one file. A RESUME never
/// comes through here: it reopens its original lineage in append mode
/// (see [`resume_session`]) instead of forking a `-N` sibling.
fn open_record_file(
    dir: &std::path::Path,
    session: &str,
) -> std::io::Result<(std::fs::File, String)> {
    std::fs::create_dir_all(dir)?;
    for attempt in 1..10_000u32 {
        let name = capture_file_name(session, attempt);
        match std::fs::File::options()
            .write(true)
            .create_new(true)
            .open(dir.join(&name))
        {
            Ok(f) => return Ok((f, name)),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::AlreadyExists,
        "no free capture file name",
    ))
}

/// The newest existing capture lineage of `session` in `dir`, if any —
/// what a RESUME without a (readable) checkpoint replays and appends to.
fn latest_capture(dir: &std::path::Path, session: &str) -> Option<String> {
    let mut newest = None;
    for attempt in 1..10_000u32 {
        let name = capture_file_name(session, attempt);
        if dir.join(&name).exists() {
            newest = Some(name);
        } else if attempt > 1 {
            break;
        }
    }
    newest
}

fn open_session(
    inner: &Arc<Inner>,
    hello: &crate::protocol::Hello,
) -> Result<Arc<Session>, String> {
    let faults = match &hello.faults {
        Some(plan) if !inner.cfg.allow_faults => {
            return Err(format!(
                "fault injection is disabled on this server (rejected faults={plan})"
            ));
        }
        Some(plan) => Some(FaultPlan::parse(plan)?),
        None => None,
    };
    let (spec, compiled) = resolve_spec(inner, &hello.spec)?;
    let (record_to, capture_name): (Option<Box<dyn Write + Send>>, Option<String>) =
        match &inner.cfg.record_dir {
            Some(dir) => {
                let (file, name) = open_record_file(dir, &hello.session)
                    .map_err(|e| format!("capture file: {e}"))?;
                (Some(Box::new(file)), Some(name))
            }
            None => (None, None),
        };
    let cfg = SessionConfig {
        workers: if hello.workers > 0 {
            hello.workers
        } else {
            inner.cfg.default_workers
        },
        ring_capacity: inner.cfg.ring_capacity,
        shed_grace: inner.cfg.shed_grace,
        faults,
        record_to,
        capture_name,
        traced: inner.cfg.trace_dir.is_some(),
    };
    let mut sessions = inner
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if sessions.contains_key(&hello.session) {
        return Err(format!("session `{}` is already open", hello.session));
    }
    let session = Session::spawn(&hello.session, &hello.spec, spec, compiled, cfg)
        .map_err(|e| format!("cannot start session: {e}"))?;
    sessions.insert(hello.session.clone(), Arc::clone(&session));
    drop(sessions);
    inner.registry.counter("daemon.sessions_opened").inc();
    Ok(session)
}

/// Writes a durable checkpoint of `session` when one is due: every
/// [`ServerConfig::checkpoint_every`] ingested records, or sooner when
/// the last one is older than [`ServerConfig::checkpoint_max_age`] and
/// records arrived since. The write is atomic (`.ckpt.tmp` + rename), so
/// a crash mid-write leaves the previous checkpoint intact, never a torn
/// one.
fn maybe_checkpoint(inner: &Arc<Inner>, session: &Arc<Session>) {
    let every = inner.cfg.checkpoint_every;
    let Some(dir) = &inner.cfg.record_dir else {
        return;
    };
    if every == 0 {
        return;
    }
    let seq = session.seq();
    let due = match session.checkpoint_state() {
        None => seq >= every,
        Some((at, age)) => seq >= at + every || (seq > at && age >= inner.cfg.checkpoint_max_age),
    };
    if !due {
        return;
    }
    let (blob, seq) = session.checkpoint_blob();
    let tmp = dir.join(format!("{}.ckpt.tmp", session.name()));
    let fin = dir.join(format!("{}.ckpt", session.name()));
    match std::fs::write(&tmp, &blob).and_then(|()| std::fs::rename(&tmp, &fin)) {
        Ok(()) => {
            session.note_checkpoint(seq);
            inner.registry.counter("daemon.checkpoints_written").inc();
        }
        Err(_) => {
            inner
                .registry
                .counter("daemon.checkpoint_write_failures")
                .inc();
        }
    }
}

/// A successfully-resumed session and what its recovery observed.
struct Resumed {
    session: Arc<Session>,
    /// Records recovered from durable state — the client resends from
    /// this sequence number.
    recovered: u64,
    /// Bytes clipped from the capture's torn tail (the record that was
    /// mid-write at the crash; the client's resend covers it).
    lost_bytes: u64,
    /// Records those bytes amounted to.
    lost_records: u64,
}

/// Reopens a session from its durable state: restores the last
/// checkpoint when it is intact and matches the requested shape, falls
/// closed to a full capture replay otherwise, clips a torn capture tail
/// to the valid prefix with exact loss accounting, replays the tail past
/// the checkpoint, and reopens the *same* capture lineage in append mode
/// — a resumed session never forks a `-N` sibling capture.
fn resume_session(inner: &Arc<Inner>, resume: &Resume) -> Result<Resumed, String> {
    let Some(dir) = inner.cfg.record_dir.clone() else {
        return Err("this server keeps no captures (no record dir); RESUME is unavailable".into());
    };
    if inner
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .contains_key(&resume.session)
    {
        return Err(format!("session `{}` is still open", resume.session));
    }
    let (spec, compiled) = resolve_spec(inner, &resume.spec)?;
    let workers = if resume.workers > 0 {
        resume.workers
    } else {
        inner.cfg.default_workers
    };

    // The checkpoint, if present, intact, and for this exact session
    // shape; anything else falls closed to a full capture replay.
    let ckpt_text = std::fs::read_to_string(dir.join(format!("{}.ckpt", resume.session))).ok();
    let ckpt = ckpt_text
        .as_deref()
        .and_then(|text| match peek_checkpoint_meta(text) {
            Ok(meta) if meta.spec_name == resume.spec && meta.workers == workers => {
                Some((text, meta))
            }
            Ok(_) | Err(_) => {
                inner
                    .registry
                    .counter("daemon.checkpoint_restore_failures")
                    .inc();
                None
            }
        });

    // Locate the capture lineage: the checkpoint names its file; without
    // one, the newest lineage on disk.
    let capture = ckpt
        .as_ref()
        .and_then(|(_, meta)| meta.capture.clone())
        .or_else(|| latest_capture(&dir, &resume.session))
        .unwrap_or_else(|| capture_file_name(&resume.session, 1));
    let path = dir.join(&capture);

    // Read the capture, clipping any torn tail (a record half-written at
    // the crash) back to the valid prefix.
    let (trace, lost_bytes, lost_records) = if path.exists() {
        let bytes = std::fs::read(&path).map_err(|e| format!("capture file: {e}"))?;
        let (text, utf8_lost) = match String::from_utf8(bytes) {
            Ok(s) => (s, 0usize),
            Err(e) => {
                let valid = e.utf8_error().valid_up_to();
                let bytes = e.into_bytes();
                (
                    String::from_utf8_lossy(&bytes[..valid]).into_owned(),
                    bytes.len() - valid,
                )
            }
        };
        let (trace, torn) = parse_framed_tolerant(&text, &spec);
        let torn_lost = torn.as_ref().map_or(0, |t| t.lost_bytes);
        if torn_lost + utf8_lost > 0 {
            let keep = (text.len() - torn_lost) as u64;
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| format!("capture file: {e}"))?;
            f.set_len(keep).map_err(|e| format!("capture file: {e}"))?;
        }
        (
            trace,
            (torn_lost + utf8_lost) as u64,
            u64::from(torn_lost + utf8_lost > 0),
        )
    } else {
        // Nothing was captured before the crash: resume from zero into a
        // fresh file of the same name.
        std::fs::create_dir_all(&dir).map_err(|e| format!("capture file: {e}"))?;
        std::fs::write(&path, format!("{FRAMED_HEADER}\n"))
            .map_err(|e| format!("capture file: {e}"))?;
        (crace_model::Trace::new(), 0, 0)
    };

    let make_cfg = || SessionConfig {
        workers,
        ring_capacity: inner.cfg.ring_capacity,
        shed_grace: inner.cfg.shed_grace,
        faults: None,
        record_to: None,
        capture_name: Some(capture.clone()),
        traced: inner.cfg.trace_dir.is_some(),
    };
    let spawn = |cfg: SessionConfig| {
        Session::spawn(
            &resume.session,
            &resume.spec,
            spec.clone(),
            Arc::clone(&compiled),
            cfg,
        )
        .map_err(|e| format!("cannot start session: {e}"))
    };
    let mut session = spawn(make_cfg())?;
    let mut from = 0usize;
    if let Some((text, meta)) = ckpt {
        let resolver = |name: &str| -> Option<Arc<CompiledSpec>> {
            if name == spec.name() {
                Some(Arc::clone(&compiled))
            } else {
                resolve_spec(inner, name).ok().map(|(_, c)| c)
            }
        };
        // A checkpoint ahead of its capture means the capture lost
        // history the detector already folded — replay from scratch
        // rather than trust state the tail cannot reach.
        let restored =
            meta.seq as usize <= trace.len() && session.restore_blob(text, &resolver).is_ok();
        if restored {
            from = meta.seq as usize;
        } else {
            inner
                .registry
                .counter("daemon.checkpoint_restore_failures")
                .inc();
            // The half-restored session is scrap: retire it, start clean.
            session.finalize(true, None);
            session = spawn(make_cfg())?;
        }
    }
    for event in &trace.events()[from..] {
        session.resume_feed(event);
    }
    // Reopen the capture for appending — same lineage, no forked `-N`.
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| format!("capture file: {e}"))?;
    session.attach_recorder(Box::new(file));
    {
        let mut sessions = inner
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if sessions.contains_key(&resume.session) {
            session.finalize(true, None);
            return Err(format!("session `{}` is still open", resume.session));
        }
        sessions.insert(resume.session.clone(), Arc::clone(&session));
    }
    inner.registry.counter("daemon.sessions_resumed").inc();
    if lost_bytes > 0 {
        inner
            .registry
            .counter("daemon.capture_lost_bytes")
            .add(lost_bytes);
        inner
            .registry
            .counter("daemon.capture_lost_records")
            .add(lost_records);
    }
    Ok(Resumed {
        session,
        recovered: trace.len() as u64,
        lost_bytes,
        lost_records,
    })
}

fn close_session(
    inner: &Arc<Inner>,
    s: ConnState,
    clean: bool,
    damage: Option<StreamDamage>,
) -> SessionOutcome {
    inner
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(s.session.name());
    let outcome = s.session.finalize(clean, damage);
    if clean {
        // A clean BYE is the end of the lineage: its checkpoint has
        // nothing left to resume and would only shadow a future session
        // reusing the name.
        if let Some(dir) = &inner.cfg.record_dir {
            let _ = std::fs::remove_file(dir.join(format!("{}.ckpt", outcome.name)));
            let _ = std::fs::remove_file(dir.join(format!("{}.ckpt.tmp", outcome.name)));
        }
    }
    if let Some(dir) = &inner.cfg.trace_dir {
        if let Some(tracer) = s.session.tracer() {
            let chrome = tracer.to_chrome_json();
            if crace_obs::json::validate(&chrome).is_ok() {
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(dir.join(format!("{}.spans.json", outcome.name)), chrome);
            }
        }
    }
    // Fold the finished session into the server totals, then retain the
    // outcome (latest per name wins).
    let r = &inner.registry;
    r.counter("daemon.sessions_closed").inc();
    if outcome.damage.is_some() {
        r.counter("daemon.sessions_torn").inc();
    }
    if outcome.degraded {
        r.counter("daemon.sessions_degraded").inc();
    }
    r.counter("daemon.events_total")
        .add(outcome.events_ingested);
    r.counter("daemon.shed_total")
        .add(outcome.shed_ring + outcome.shed_quarantine);
    r.counter("daemon.races_total").add(outcome.report.total());
    inner
        .outcomes
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(outcome.clone(), inner.cfg.outcome_capacity);
    outcome
}

/// Builds the merged scrape: server registry plus every live session's,
/// prefixed `session.<name>.`.
fn scrape(inner: &Arc<Inner>) -> Snapshot {
    let sessions: Vec<(String, Arc<Session>)> = inner
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(name, session)| (name.clone(), Arc::clone(session)))
        .collect();
    inner
        .registry
        .set_gauge("daemon.sessions_active", sessions.len() as f64);
    inner.registry.set_gauge(
        "daemon.connections_active",
        inner.active_conns.load(Ordering::Relaxed) as f64,
    );
    let mut parts = vec![inner.registry.snapshot()];
    for (name, session) in sessions {
        session.feed_metrics();
        parts.push(
            session
                .registry()
                .snapshot()
                .prefixed(&format!("session.{name}.")),
        );
    }
    Snapshot::merged(parts)
}

fn serve_http(inner: &Arc<Inner>, reader: &mut BufReader<Conn>, writer: &mut Conn, first: &[u8]) {
    // Drain request headers (bounded) so the peer's write never blocks.
    for _ in 0..128 {
        match read_capped_line(reader) {
            Ok(Some((bytes, _))) if bytes.is_empty() || bytes == b"\r" => break,
            Ok(Some(_)) => continue,
            _ => break,
        }
    }
    inner.registry.counter("daemon.http_scrapes").inc();
    let request = String::from_utf8_lossy(first);
    let path = request.split(' ').nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" | "/metrics?format=prom" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            scrape(inner).to_prometheus(),
        ),
        "/metrics.json" | "/metrics?format=json" => {
            ("200 OK", "application/json", scrape(inner).to_json())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /metrics.json\n".to_string(),
        ),
    };
    let _ = writer.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let _ = writer.flush();
}
