//! A small blocking client for the daemon protocol.
//!
//! `crace submit` is built on this, and the differential tests use it to
//! drive many concurrent tenants. It deliberately exposes low-level
//! knobs — raw byte writes, arbitrary chunk sizes — because the test
//! plane needs to dribble bytes and tear streams mid-record.

use crate::server::Endpoint;
use crace_cli::frame_event;
use crace_model::Event;
use crace_spec::Spec;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// A connected transport, unified over the two socket families.
pub enum Transport {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Transport {
    fn try_clone(&self) -> std::io::Result<Transport> {
        match self {
            Transport::Unix(s) => s.try_clone().map(Transport::Unix),
            Transport::Tcp(s) => s.try_clone().map(Transport::Tcp),
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Unix(s) => s.read(buf),
            Transport::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Unix(s) => s.write(buf),
            Transport::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Unix(s) => s.flush(),
            Transport::Tcp(s) => s.flush(),
        }
    }
}

/// The final `STATS` line of a session, parsed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// `k=v` fields verbatim (values are integers on the wire).
    pub fields: BTreeMap<String, u64>,
}

impl WireStats {
    /// A named stat, or 0 if the server didn't send it.
    pub fn get(&self, key: &str) -> u64 {
        self.fields.get(key).copied().unwrap_or(0)
    }
}

/// One client connection, driving at most one session.
///
/// Dropping the client closes the socket — which, mid-session, is
/// exactly the "client died" case the torn-stream tests exercise.
pub struct Client {
    reader: BufReader<Transport>,
    writer: Transport,
}

impl Client {
    /// Connects to a daemon at `endpoint`.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Client> {
        let transport = match endpoint {
            Endpoint::Unix(path) => Transport::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Transport::Tcp(TcpStream::connect(addr)?),
        };
        let writer = transport.try_clone()?;
        Ok(Client {
            reader: BufReader::new(transport),
            writer,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Opens a session. Returns the server's `OK …` line, or the `ERR`
    /// message as the error.
    ///
    /// # Errors
    ///
    /// `Err` carries the server's rejection (or an IO failure rendered
    /// as text).
    pub fn hello(
        &mut self,
        session: &str,
        spec: &str,
        workers: usize,
        faults: Option<&str>,
    ) -> Result<String, String> {
        let mut line = format!("HELLO {session} {spec}");
        if workers > 0 {
            line.push_str(&format!(" workers={workers}"));
        }
        if let Some(plan) = faults {
            line.push_str(&format!(" faults={plan}"));
        }
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        let reply = self.read_line().map_err(|e| format!("read failed: {e}"))?;
        match reply.strip_prefix("ERR ") {
            Some(message) => Err(message.to_string()),
            None => Ok(reply),
        }
    }

    /// Reopens a session on a restarted daemon. `seq` is the number of
    /// records this client already delivered. Returns the server's `OK …`
    /// line and the recovered sequence number — resend records starting
    /// there.
    ///
    /// # Errors
    ///
    /// `Err` carries the server's rejection (or an IO failure rendered
    /// as text).
    pub fn resume(
        &mut self,
        session: &str,
        seq: u64,
        spec: &str,
        workers: usize,
    ) -> Result<(String, u64), String> {
        let mut line = format!("RESUME {session} {seq} spec={spec}");
        if workers > 0 {
            line.push_str(&format!(" workers={workers}"));
        }
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        let reply = self.read_line().map_err(|e| format!("read failed: {e}"))?;
        if let Some(message) = reply.strip_prefix("ERR ") {
            return Err(message.to_string());
        }
        let recovered = reply
            .split_whitespace()
            .find_map(|w| w.strip_prefix("seq="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("resume reply carries no seq: `{reply}`"))?;
        Ok((reply, recovered))
    }

    /// Streams one event as a framed record.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_event(&mut self, event: &Event, spec: &Spec) -> std::io::Result<()> {
        let mut line = frame_event(event, spec);
        line.push('\n');
        self.send_raw(line.as_bytes())
    }

    /// Writes raw bytes to the socket (no framing added).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Writes `bytes` in `chunk`-sized pieces, flushing after each — the
    /// pathological-framing path (`chunk == 1` is a byte dribble).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_chunked(&mut self, bytes: &[u8], chunk: usize) -> std::io::Result<()> {
        for piece in bytes.chunks(chunk.max(1)) {
            self.writer.write_all(piece)?;
            self.writer.flush()?;
        }
        Ok(())
    }

    fn read_report_payload(&mut self, header: &str) -> Result<String, String> {
        let nbytes: usize = header
            .strip_prefix("REPORT ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("expected `REPORT <nbytes>`, got `{header}`"))?;
        let mut body = vec![0u8; nbytes];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("short report: {e}"))?;
        String::from_utf8(body).map_err(|_| "report is not UTF-8".to_string())
    }

    /// Requests an interim report; the session stays open. Returns the
    /// report JSON.
    ///
    /// # Errors
    ///
    /// `Err` carries the server's `ERR` message or an IO failure.
    pub fn report(&mut self) -> Result<String, String> {
        self.send_raw(b"REPORT\n")
            .map_err(|e| format!("write failed: {e}"))?;
        let header = self.read_line().map_err(|e| format!("read failed: {e}"))?;
        if let Some(message) = header.strip_prefix("ERR ") {
            return Err(message.to_string());
        }
        self.read_report_payload(&header)
    }

    /// Closes the session cleanly: sends `BYE`, returns the final report
    /// JSON and parsed `STATS`.
    ///
    /// # Errors
    ///
    /// `Err` carries the server's `ERR` message or an IO failure.
    pub fn bye(mut self) -> Result<(String, WireStats), String> {
        self.send_raw(b"BYE\n")
            .map_err(|e| format!("write failed: {e}"))?;
        let header = self.read_line().map_err(|e| format!("read failed: {e}"))?;
        if let Some(message) = header.strip_prefix("ERR ") {
            return Err(message.to_string());
        }
        let report = self.read_report_payload(&header)?;
        let stats_line = self.read_line().map_err(|e| format!("read failed: {e}"))?;
        Ok((report, parse_stats(&stats_line)?))
    }

    /// Reads whatever the server sends until it closes the connection —
    /// used by tests inspecting torn-stream behavior.
    pub fn drain(mut self) -> String {
        let mut out = String::new();
        let _ = self.reader.read_to_string(&mut out);
        out
    }
}

/// Parses a `STATS k=v …` line.
///
/// # Errors
///
/// `Err` when the line is not a STATS line or a value is not an integer.
pub fn parse_stats(line: &str) -> Result<WireStats, String> {
    let rest = line
        .strip_prefix("STATS")
        .ok_or_else(|| format!("expected `STATS …`, got `{line}`"))?;
    let mut stats = WireStats::default();
    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("bad STATS field `{field}`"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("bad STATS value in `{field}`"))?;
        stats.fields.insert(key.to_string(), value);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lines_parse() {
        let s = parse_stats("STATS events=10 races=3 torn=0").unwrap();
        assert_eq!(s.get("events"), 10);
        assert_eq!(s.get("races"), 3);
        assert_eq!(s.get("torn"), 0);
        assert_eq!(s.get("missing"), 0);
        assert!(parse_stats("NOPE x=1").is_err());
        assert!(parse_stats("STATS x=abc").is_err());
    }
}
