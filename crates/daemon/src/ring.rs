//! Bounded per-session ingress ring: backpressure first, shed second.
//!
//! Each session owns one ring between its connection reader and its
//! dispatcher thread. The overload ladder implements the degradation
//! contract of DESIGN.md at the socket layer:
//!
//! 1. **Backpressure.** A full ring blocks the reader — and a blocked
//!    reader stops draining the socket, so the client's writes stall.
//!    That is the first response to overload, and for synchronization
//!    events it is the *only* response: a lost happens-before edge could
//!    make the detector report races the program cannot have, so sync
//!    events wait as long as it takes.
//! 2. **Shed.** A data-plane event (action, read, write) waits only for
//!    the shed grace period; if the ring is still full, the event is
//!    dropped and counted. Shedding actions can only *hide* races,
//!    never invent them (action dispatch never modifies thread clocks).
//!
//! The ring also knows when it is fully drained — not just empty, but
//! with no event still being processed by the dispatcher — which is what
//! an interim `REPORT` waits on.

use crace_model::Event;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State {
    queue: VecDeque<Event>,
    closed: bool,
    /// True while the dispatcher is between popping an event and asking
    /// for the next one — the window where the ring looks empty but the
    /// session has not yet absorbed the event.
    in_flight: bool,
}

/// A bounded MPSC-ish ring (one reader thread, one dispatcher thread in
/// practice; safe for more) with the backpressure-then-shed ladder.
pub struct IngressRing {
    state: Mutex<State>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    shed_grace: Duration,
    pushed: AtomicU64,
    shed: AtomicU64,
}

impl IngressRing {
    /// A ring holding at most `capacity` queued events; data-plane
    /// pushes into a full ring wait `shed_grace` before being shed.
    pub fn new(capacity: usize, shed_grace: Duration) -> IngressRing {
        IngressRing {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                in_flight: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            shed_grace,
            pushed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Enqueues `event`, applying the ladder. Returns `false` iff the
    /// event was shed (possible only for data-plane events, or for any
    /// event once the ring is closed).
    pub fn push(&self, event: Event) -> bool {
        let sync = event.is_sync();
        let deadline = Instant::now() + self.shed_grace;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.closed {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(event);
                self.pushed.fetch_add(1, Ordering::Relaxed);
                self.not_empty.notify_one();
                return true;
            }
            if sync {
                // Backpressure, indefinitely: never shed a sync event.
                state = self
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            } else {
                let now = Instant::now();
                if now >= deadline {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                state = self
                    .not_full
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }

    /// Dequeues the next event, blocking while the ring is open and
    /// empty. Returns `None` once the ring is closed and drained.
    pub fn pop(&self) -> Option<Event> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(event) = state.queue.pop_front() {
                state.in_flight = true;
                self.not_full.notify_all();
                return Some(event);
            }
            // Empty: the previous event (if any) has been fully absorbed
            // by the time the dispatcher asks again.
            if state.in_flight {
                state.in_flight = false;
                self.not_full.notify_all();
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until every pushed event has been absorbed by the
    /// dispatcher (queue empty and nothing in flight) — the barrier an
    /// interim `REPORT` needs so it reflects everything ingested so far.
    pub fn wait_drained(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !state.queue.is_empty() || state.in_flight {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the ring: queued events still drain, new pushes are shed,
    /// and `pop` returns `None` once empty.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Events accepted into the ring so far.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Events shed by the ladder so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Events currently queued (diagnostic; racy by nature).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_model::{LocId, LockId, ThreadId};
    use std::sync::Arc;

    fn data(n: u64) -> Event {
        Event::Read {
            tid: ThreadId(0),
            loc: LocId(n),
        }
    }

    fn sync() -> Event {
        Event::Acquire {
            tid: ThreadId(0),
            lock: LockId(0),
        }
    }

    #[test]
    fn fifo_through_the_ring() {
        let ring = IngressRing::new(8, Duration::from_millis(1));
        for i in 0..5 {
            assert!(ring.push(data(i)));
        }
        ring.close();
        let mut seen = Vec::new();
        while let Some(e) = ring.pop() {
            seen.push(e);
        }
        assert_eq!(seen, (0..5).map(data).collect::<Vec<_>>());
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.shed(), 0);
    }

    #[test]
    fn full_ring_sheds_data_after_grace_but_never_sync() {
        let ring = Arc::new(IngressRing::new(2, Duration::from_millis(5)));
        assert!(ring.push(data(0)));
        assert!(ring.push(data(1)));
        // No consumer: the data push times out and sheds.
        assert!(!ring.push(data(2)));
        assert_eq!(ring.shed(), 1);

        // A sync push blocks until a consumer makes room.
        let r = Arc::clone(&ring);
        let pusher = std::thread::spawn(move || r.push(sync()));
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !pusher.is_finished(),
            "sync push must backpressure, not shed"
        );
        assert!(ring.pop().is_some());
        assert!(pusher.join().unwrap(), "sync push must deliver");
        assert_eq!(ring.shed(), 1);
    }

    #[test]
    fn wait_drained_covers_the_in_flight_window() {
        // Generous grace: this test is about the drain barrier, so no
        // push may shed while the slow consumer works through the queue.
        let ring = Arc::new(IngressRing::new(8, Duration::from_secs(5)));
        let r = Arc::clone(&ring);
        let consumer = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(_e) = r.pop() {
                std::thread::sleep(Duration::from_millis(2));
                n += 1;
            }
            n
        });
        for i in 0..10 {
            ring.push(data(i));
        }
        ring.wait_drained();
        assert_eq!(ring.depth(), 0);
        ring.close();
        assert_eq!(consumer.join().unwrap(), 10);
    }

    #[test]
    fn closed_ring_sheds_everything() {
        let ring = IngressRing::new(2, Duration::from_millis(1));
        ring.close();
        assert!(!ring.push(data(0)));
        assert!(!ring.push(sync()));
        assert_eq!(ring.shed(), 2);
        assert!(ring.pop().is_none());
    }
}
