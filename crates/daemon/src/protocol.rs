//! The line-oriented control protocol spoken on a daemon connection.
//!
//! A detection session is driven by four request shapes, one per line:
//!
//! ```text
//! HELLO <session> <spec> [workers=N] [faults=<plan>]
//! RESUME <session> <seq> spec=<spec> [workers=N]
//! =<len>:<crc32> <event-text>          # one framed trace record
//! REPORT                               # interim report, session stays open
//! BYE                                  # final report + stats, then close
//! ```
//!
//! `RESUME` reopens a session on a restarted daemon: the server restores
//! the last durable checkpoint (falling back to a full capture replay on
//! any checkpoint damage), replays the capture tail, and answers
//! `OK craced/1 resume … seq=<recovered> …` — the client then resends
//! its records starting at `recovered`. `<seq>` is the client's own
//! high-water mark, carried for diagnostics; the server's capture is
//! authoritative.
//!
//! Framed records are exactly the lines of the crash-consistent trace
//! format (see `crace_cli::frame_event`), so a client can stream a
//! `.framed.trace` file verbatim — the `#%crace-trace v1 framed` header
//! and blank lines are accepted and ignored, like comments in the plain
//! format.
//!
//! The server answers `OK …` to a HELLO, `ERR <message>` to anything it
//! rejects, `REPORT <nbytes>` followed by exactly `nbytes` of report
//! JSON, and — after a BYE or a torn stream — a final `STATS k=v …`
//! line. The same socket also answers `GET /metrics` with an HTTP
//! scrape, sniffed from the first line (see [`crate::server`]).
//!
//! Parsing here must never panic on arbitrary bytes: this is the surface
//! `protocol_fuzz.rs` hammers. Inputs are bounded before they are
//! interpreted ([`MAX_LINE_BYTES`], [`MAX_SESSION_NAME`],
//! [`MAX_SPEC_NAME`]), and a framed record's *contents* are validated by
//! the session against its spec — this module only classifies the line.

/// Longest accepted request line, in bytes, excluding the newline. A
/// framed record announcing a longer payload is rejected before any
/// allocation proportional to the announced length.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Longest accepted session name.
pub const MAX_SESSION_NAME: usize = 64;

/// Longest accepted spec name (it may be a file path on the server).
pub const MAX_SPEC_NAME: usize = 256;

/// Upper bound on `workers=N` — far above any sensible shard count, low
/// enough that a hostile HELLO cannot spawn unbounded threads.
pub const MAX_WORKERS: usize = 64;

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `HELLO <session> <spec> [workers=N] [faults=<plan>]` — open a session.
    Hello(Hello),
    /// `RESUME <session> <seq> spec=<spec> [workers=N]` — reopen a
    /// session from its durable state after a daemon restart.
    Resume(Resume),
    /// A framed trace record, still in wire form (`=<len>:<crc32> …`).
    /// The session decodes it against its spec.
    Record(String),
    /// `REPORT` — render the report so far; the session stays open.
    Report,
    /// `BYE` — final report + stats, clean close.
    Bye,
    /// A header, comment, or blank line — accepted and ignored, so a
    /// framed trace file can be streamed verbatim.
    Ignored,
}

/// The fields of a HELLO request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Tenant-chosen session name (unique among live sessions).
    pub session: String,
    /// Spec to detect against: a builtin name or a server-side path.
    pub spec: String,
    /// Worker count for the sharded detector; `0` means serial.
    pub workers: usize,
    /// Textual `FaultPlan` for the chaos test plane, if any.
    pub faults: Option<String>,
}

/// The fields of a RESUME request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resume {
    /// Name of the session to reopen.
    pub session: String,
    /// Records the client believes it delivered before the outage
    /// (diagnostic; the server's capture file is authoritative).
    pub seq: u64,
    /// Spec the session was opened with — validated against the
    /// checkpoint, and required for the capture-replay fallback.
    pub spec: String,
    /// Worker count the session was opened with; `0` means the server
    /// default, as in HELLO.
    pub workers: usize,
}

/// True iff `name` is a well-formed session name: 1–[`MAX_SESSION_NAME`]
/// characters from `[A-Za-z0-9._-]`, not starting with `-` (so names
/// never look like options) or `.` (so per-session files are never
/// hidden or `..`).
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_SESSION_NAME
        && !name.starts_with('-')
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Classifies one request line (without its newline).
///
/// # Errors
///
/// Returns a human-readable message for anything outside the protocol;
/// the connection handler forwards it as `ERR <message>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!(
            "line of {} byte(s) exceeds the {MAX_LINE_BYTES}-byte limit",
            line.len()
        ));
    }
    if line.is_empty() || line.starts_with('#') {
        return Ok(Request::Ignored);
    }
    if let Some(rest) = line.strip_prefix('=') {
        // Cheap sanity check before the session does the real decode: the
        // announced length must not exceed what a line this long can hold.
        if let Some((len_text, _)) = rest.split_once(':') {
            if let Ok(len) = len_text.parse::<usize>() {
                if len > MAX_LINE_BYTES {
                    return Err(format!(
                        "framed record announces {len} byte(s), limit is {MAX_LINE_BYTES}"
                    ));
                }
            }
        }
        return Ok(Request::Record(line.to_string()));
    }
    let mut words = line.split(' ').filter(|w| !w.is_empty());
    match words.next() {
        Some("REPORT") => match words.next() {
            None => Ok(Request::Report),
            Some(extra) => Err(format!("REPORT takes no arguments (got `{extra}`)")),
        },
        Some("BYE") => match words.next() {
            None => Ok(Request::Bye),
            Some(extra) => Err(format!("BYE takes no arguments (got `{extra}`)")),
        },
        Some("HELLO") => {
            let session = words.next().ok_or("HELLO needs: <session> <spec>")?;
            let spec = words.next().ok_or("HELLO needs: <session> <spec>")?;
            if !valid_session_name(session) {
                return Err(format!(
                    "bad session name `{}` (want 1-{MAX_SESSION_NAME} chars of [A-Za-z0-9._-], \
                     not starting with `-` or `.`)",
                    clip(session)
                ));
            }
            if spec.len() > MAX_SPEC_NAME {
                return Err(format!(
                    "spec name of {} byte(s) exceeds the {MAX_SPEC_NAME}-byte limit",
                    spec.len()
                ));
            }
            let mut hello = Hello {
                session: session.to_string(),
                spec: spec.to_string(),
                workers: 0,
                faults: None,
            };
            for option in words {
                if let Some(n) = option.strip_prefix("workers=") {
                    let workers: usize = n
                        .parse()
                        .map_err(|_| format!("bad worker count `{}`", clip(n)))?;
                    if workers > MAX_WORKERS {
                        return Err(format!(
                            "workers={workers} exceeds the limit of {MAX_WORKERS}"
                        ));
                    }
                    hello.workers = workers;
                } else if let Some(plan) = option.strip_prefix("faults=") {
                    hello.faults = Some(plan.to_string());
                } else {
                    return Err(format!("unknown HELLO option `{}`", clip(option)));
                }
            }
            Ok(Request::Hello(hello))
        }
        Some("RESUME") => {
            let session = words
                .next()
                .ok_or("RESUME needs: <session> <seq> spec=<spec>")?;
            let seq_text = words
                .next()
                .ok_or("RESUME needs: <session> <seq> spec=<spec>")?;
            if !valid_session_name(session) {
                return Err(format!(
                    "bad session name `{}` (want 1-{MAX_SESSION_NAME} chars of [A-Za-z0-9._-], \
                     not starting with `-` or `.`)",
                    clip(session)
                ));
            }
            let seq: u64 = seq_text
                .parse()
                .map_err(|_| format!("bad sequence number `{}`", clip(seq_text)))?;
            let mut resume = Resume {
                session: session.to_string(),
                seq,
                spec: String::new(),
                workers: 0,
            };
            for option in words {
                if let Some(spec) = option.strip_prefix("spec=") {
                    if spec.len() > MAX_SPEC_NAME {
                        return Err(format!(
                            "spec name of {} byte(s) exceeds the {MAX_SPEC_NAME}-byte limit",
                            spec.len()
                        ));
                    }
                    resume.spec = spec.to_string();
                } else if let Some(n) = option.strip_prefix("workers=") {
                    let workers: usize = n
                        .parse()
                        .map_err(|_| format!("bad worker count `{}`", clip(n)))?;
                    if workers > MAX_WORKERS {
                        return Err(format!(
                            "workers={workers} exceeds the limit of {MAX_WORKERS}"
                        ));
                    }
                    resume.workers = workers;
                } else {
                    return Err(format!("unknown RESUME option `{}`", clip(option)));
                }
            }
            if resume.spec.is_empty() {
                return Err("RESUME needs a spec= option".to_string());
            }
            Ok(Request::Resume(resume))
        }
        Some(other) => Err(format!("unknown request `{}`", clip(other))),
        None => Ok(Request::Ignored),
    }
}

/// Truncates untrusted text for inclusion in an error message.
fn clip(text: &str) -> String {
    let mut s: String = text.chars().take(32).collect();
    if s.len() < text.len() {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_with_options_parses() {
        let r = parse_request("HELLO tenant-1 dictionary workers=4 faults=panic@5").unwrap();
        assert_eq!(
            r,
            Request::Hello(Hello {
                session: "tenant-1".into(),
                spec: "dictionary".into(),
                workers: 4,
                faults: Some("panic@5".into()),
            })
        );
    }

    #[test]
    fn resume_parses_and_rejects_malformation() {
        let r = parse_request("RESUME tenant-1 512 spec=dictionary workers=4").unwrap();
        assert_eq!(
            r,
            Request::Resume(Resume {
                session: "tenant-1".into(),
                seq: 512,
                spec: "dictionary".into(),
                workers: 4,
            })
        );
        let r = parse_request("RESUME t 0 spec=counter").unwrap();
        assert_eq!(
            r,
            Request::Resume(Resume {
                session: "t".into(),
                seq: 0,
                spec: "counter".into(),
                workers: 0,
            })
        );
        for bad in [
            "RESUME",
            "RESUME t",
            "RESUME t notanumber spec=dictionary",
            "RESUME t 5",                  // no spec
            "RESUME -t 5 spec=dictionary", // bad name
            "RESUME t 5 spec=dictionary workers=9999",
            "RESUME t 5 spec=dictionary frobnicate=1",
        ] {
            assert!(parse_request(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn control_verbs_parse_and_reject_arguments() {
        assert_eq!(parse_request("REPORT").unwrap(), Request::Report);
        assert_eq!(parse_request("BYE").unwrap(), Request::Bye);
        assert!(parse_request("REPORT now").is_err());
        assert!(parse_request("BYE now").is_err());
    }

    #[test]
    fn records_headers_and_comments_classify() {
        assert!(matches!(
            parse_request("=8:9b8b1ef1 fork 0 1").unwrap(),
            Request::Record(_)
        ));
        assert_eq!(
            parse_request(crace_cli::FRAMED_HEADER).unwrap(),
            Request::Ignored
        );
        assert_eq!(parse_request("").unwrap(), Request::Ignored);
    }

    #[test]
    fn bad_names_and_verbs_are_rejected() {
        for bad in [
            "HELLO",
            "HELLO x",
            "HELLO -x dictionary",
            "HELLO .x dictionary",
            "HELLO a/b dictionary",
            "HELLO ok dictionary workers=abc",
            "HELLO ok dictionary workers=9999",
            "HELLO ok dictionary frobnicate=1",
            "NOPE",
            "hello x dictionary",
        ] {
            assert!(parse_request(bad).is_err(), "`{bad}` should be rejected");
        }
        let long = format!("HELLO {} dictionary", "a".repeat(MAX_SESSION_NAME + 1));
        assert!(parse_request(&long).is_err());
    }

    #[test]
    fn oversized_announcements_are_rejected_without_allocation() {
        assert!(parse_request("=999999999:deadbeef x").is_err());
        let long = "x".repeat(MAX_LINE_BYTES + 1);
        assert!(parse_request(&long).is_err());
    }
}
