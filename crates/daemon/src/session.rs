//! One detection session: a tenant's spec, detector, metrics, tracer,
//! ingress ring, and dispatcher thread.
//!
//! A session is the unit of isolation. Each owns:
//!
//! * its compiled spec (and the [`Spec`] used to decode wire records),
//! * its detector — serial [`TraceDetector`] or sharded [`ParallelRd2`],
//!   wrapped as `Isolated<FaultedAnalysis<…>>` so an analysis panic
//!   (organic or injected through the `faults=` test plane) quarantines
//!   *this* session and fails open, leaving other tenants untouched,
//! * its own [`Registry`] and [`Tracer`] — tenants never share detector
//!   state, so they never physically conflict (the Scalable
//!   Commutativity Rule posture),
//! * a bounded [`IngressRing`] and the dispatcher thread draining it.
//!
//! Objects are registered lazily, on the first action naming them: a
//! streaming server cannot scan the trace for its object set up front
//! the way `crace replay` does. Registration on a fresh object only
//! installs the spec (no clock interaction), so lazy and up-front
//! registration yield bit-for-bit identical reports — the property
//! `tests/daemon_vs_replay.rs` checks at every worker width.

use crate::ring::IngressRing;
use crace_cli::{parse_framed_record, FramedWriter, TraceParseError};
use crace_core::{
    Checkpoint, CompiledSpec, ParallelConfig, ParallelRd2, SpecResolver, TraceDetector,
};
use crace_model::{Analysis, Event, Isolated, ObjId, RaceReport};
use crace_obs::{Registry, Tracer};
use crace_runtime::{FaultInjector, FaultPlan, FaultedAnalysis};
use crace_spec::Spec;
use crace_vclock::ckpt::{esc, CkptError, CkptReader, CkptWriter};
use std::collections::BTreeSet;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sampling period for per-event dispatch spans on the session lane.
const DISPATCH_SPAN_EVERY: u64 = 64;

/// Checkpoint-kind tag of a whole-session checkpoint (the daemon's
/// `.ckpt` files). The nested detector blob carries its own kind.
pub const SESSION_CKPT_KIND: &str = "craced-session";

/// The session-level header of a `.ckpt` file, readable without (and
/// before) constructing the session it restores into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptMeta {
    /// Spec name the session detected against.
    pub spec_name: String,
    /// Worker count (0 = serial).
    pub workers: usize,
    /// Records the detector had absorbed when the checkpoint was taken.
    pub seq: u64,
    /// Capture file (relative to the record dir) the sequence refers to.
    pub capture: Option<String>,
}

/// Validates `text` as a session checkpoint and returns its metadata —
/// the server peeks this to configure the replacement session before
/// restoring into it.
///
/// # Errors
///
/// A spanned [`CkptError`] on any damage or a missing `meta` record.
pub fn peek_checkpoint_meta(text: &str) -> Result<CkptMeta, CkptError> {
    let mut r = CkptReader::new(text, SESSION_CKPT_KIND)?;
    let rec = r
        .next_rec()
        .ok_or_else(|| CkptError::at(0, "checkpoint has no `meta` record"))?;
    if rec.tag() != "meta" {
        return Err(CkptError::at(
            rec.line,
            format!("expected `meta` record, found `{}`", rec.tag()),
        ));
    }
    let spec_name = rec.text(1)?;
    let workers = rec.num(2)?;
    let seq = rec.num(3)?;
    let capture = match r.peek() {
        Some(rec) if rec.tag() == "capture" => Some(rec.text(1)?),
        _ => None,
    };
    Ok(CkptMeta {
        spec_name,
        workers,
        seq,
        capture,
    })
}

/// Per-session knobs, resolved by the server from its config plus the
/// HELLO options.
pub struct SessionConfig {
    /// Worker count for the sharded detector; `0` selects the serial one.
    pub workers: usize,
    /// Ingress ring capacity (events).
    pub ring_capacity: usize,
    /// How long a data-plane push waits on a full ring before shedding.
    pub shed_grace: Duration,
    /// Fault plan for the chaos test plane, armed on the dispatch path.
    pub faults: Option<FaultPlan>,
    /// When set, every decoded event is also appended to this sink as a
    /// framed record (the per-session capture file).
    pub record_to: Option<Box<dyn Write + Send>>,
    /// File name of the capture sink (relative to the record dir), so a
    /// checkpoint can name the capture its sequence number refers to and
    /// a resume can append to the same lineage instead of forking one.
    pub capture_name: Option<String>,
    /// When `true`, a tracer records the session's span timeline.
    pub traced: bool,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            workers: 0,
            ring_capacity: 4096,
            shed_grace: Duration::from_millis(50),
            faults: None,
            record_to: None,
            capture_name: None,
            traced: false,
        }
    }
}

/// The detector behind a session: the serial reference or the sharded
/// pipeline, behind one face.
enum DetectorCore {
    Serial(TraceDetector),
    Parallel(ParallelRd2),
}

impl DetectorCore {
    fn register(&self, obj: ObjId, spec: Arc<CompiledSpec>) {
        match self {
            DetectorCore::Serial(d) => d.register(obj, spec),
            DetectorCore::Parallel(d) => d.register(obj, spec),
        }
    }

    fn feed(&self, registry: &Registry) {
        match self {
            DetectorCore::Serial(d) => {
                let stats = d.clock_stats();
                registry.counter("rd2.conflict_probes").add(
                    d.num_probes()
                        .saturating_sub(registry.counter("rd2.conflict_probes").get()),
                );
                registry
                    .gauge("rd2.clock.epoch_hit_rate")
                    .set(stats.epoch_hit_rate());
            }
            DetectorCore::Parallel(d) => d.feed(registry),
        }
    }

    fn degraded(&self) -> bool {
        match self {
            DetectorCore::Serial(_) => false,
            DetectorCore::Parallel(d) => d.degraded(),
        }
    }

    fn respawns(&self) -> u64 {
        match self {
            DetectorCore::Serial(_) => 0,
            DetectorCore::Parallel(d) => d.stats().workers.iter().map(|w| w.respawns).sum(),
        }
    }
}

impl Checkpoint for DetectorCore {
    fn checkpoint_kind(&self) -> &'static str {
        match self {
            DetectorCore::Serial(d) => d.checkpoint_kind(),
            DetectorCore::Parallel(d) => d.checkpoint_kind(),
        }
    }

    fn checkpoint(&self) -> String {
        match self {
            DetectorCore::Serial(d) => d.checkpoint(),
            DetectorCore::Parallel(d) => d.checkpoint(),
        }
    }

    fn restore(&self, text: &str, resolve: &SpecResolver<'_>) -> Result<(), CkptError> {
        match self {
            DetectorCore::Serial(d) => d.restore(text, resolve),
            DetectorCore::Parallel(d) => d.restore(text, resolve),
        }
    }
}

impl Analysis for DetectorCore {
    fn name(&self) -> &str {
        "rd2"
    }

    fn on_fork(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        match self {
            DetectorCore::Serial(d) => d.on_fork(parent, child),
            DetectorCore::Parallel(d) => d.on_fork(parent, child),
        }
    }

    fn on_join(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        match self {
            DetectorCore::Serial(d) => d.on_join(parent, child),
            DetectorCore::Parallel(d) => d.on_join(parent, child),
        }
    }

    fn on_acquire(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        match self {
            DetectorCore::Serial(d) => d.on_acquire(tid, lock),
            DetectorCore::Parallel(d) => d.on_acquire(tid, lock),
        }
    }

    fn on_release(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        match self {
            DetectorCore::Serial(d) => d.on_release(tid, lock),
            DetectorCore::Parallel(d) => d.on_release(tid, lock),
        }
    }

    fn on_action(&self, tid: crace_model::ThreadId, action: &crace_model::Action) {
        match self {
            DetectorCore::Serial(d) => d.on_action(tid, action),
            DetectorCore::Parallel(d) => d.on_action(tid, action),
        }
    }

    fn on_read(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        match self {
            DetectorCore::Serial(d) => d.on_read(tid, loc),
            DetectorCore::Parallel(d) => d.on_read(tid, loc),
        }
    }

    fn on_write(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        match self {
            DetectorCore::Serial(d) => d.on_write(tid, loc),
            DetectorCore::Parallel(d) => d.on_write(tid, loc),
        }
    }

    fn abandon_thread(&self, tid: crace_model::ThreadId) {
        match self {
            DetectorCore::Serial(d) => d.abandon_thread(tid),
            DetectorCore::Parallel(d) => d.abandon_thread(tid),
        }
    }

    fn report(&self) -> RaceReport {
        match self {
            DetectorCore::Serial(d) => d.report(),
            DetectorCore::Parallel(d) => d.report(),
        }
    }
}

/// The analysis a session's dispatcher drives: lazy object registration
/// in front of the detector core.
struct SessionAnalysis {
    core: DetectorCore,
    compiled: Arc<CompiledSpec>,
    registered: Mutex<BTreeSet<ObjId>>,
    delivered: AtomicU64,
}

impl SessionAnalysis {
    fn ensure_registered(&self, obj: ObjId) {
        let mut seen = self
            .registered
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if seen.insert(obj) {
            self.core.register(obj, Arc::clone(&self.compiled));
        }
    }
}

impl Analysis for SessionAnalysis {
    fn name(&self) -> &str {
        self.core.name()
    }

    fn on_fork(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.core.on_fork(parent, child);
    }

    fn on_join(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.core.on_join(parent, child);
    }

    fn on_acquire(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.core.on_acquire(tid, lock);
    }

    fn on_release(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.core.on_release(tid, lock);
    }

    fn on_action(&self, tid: crace_model::ThreadId, action: &crace_model::Action) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.ensure_registered(action.obj());
        self.core.on_action(tid, action);
    }

    fn on_read(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.core.on_read(tid, loc);
    }

    fn on_write(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.core.on_write(tid, loc);
    }

    fn report(&self) -> RaceReport {
        self.core.report()
    }
}

/// Exactly what a stream lost, for the final accounting. Mirrors
/// [`crace_cli::TornTrace`] but for a live connection, where only the
/// damage actually observed on the wire can be counted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamDamage {
    /// Bytes received that could not be interpreted (a torn tail, or a
    /// damaged record line including its newline).
    pub lost_bytes: u64,
    /// Damaged record lines observed (a mid-record disconnect tail
    /// counts as one).
    pub lost_records: u64,
    /// What was wrong with the first damaged input.
    pub reason: String,
}

/// A finished session's full accounting — the server keeps these so a
/// torn session's report outlives its connection.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Session name.
    pub name: String,
    /// Spec it detected against (as given in HELLO).
    pub spec_name: String,
    /// Worker count (0 = serial).
    pub workers: usize,
    /// Framed records decoded and offered to the ring.
    pub events_ingested: u64,
    /// Events shed by the ingress ring's overload ladder.
    pub shed_ring: u64,
    /// Events shed after quarantine (the fail-open window).
    pub shed_quarantine: u64,
    /// Analysis panics absorbed (organic or injected).
    pub analysis_panics: u64,
    /// True iff the session ended degraded (quarantined detector or a
    /// degraded parallel pipeline).
    pub degraded: bool,
    /// Wire damage, if the stream tore.
    pub damage: Option<StreamDamage>,
    /// Sequence number of the last durable checkpoint (0 = never).
    pub checkpoint_seq: u64,
    /// Milliseconds since the last durable checkpoint (0 = never).
    pub checkpoint_age_ms: u64,
    /// Detector workers the supervisor rebuilt after panics.
    pub respawns: u64,
    /// True iff the client closed with BYE.
    pub clean_bye: bool,
    /// The final report.
    pub report: RaceReport,
    /// `report.to_json()`, the bytes served to the client — kept so
    /// tests can compare bit-for-bit without re-rendering.
    pub report_json: String,
}

/// A live session. Owned by an `Arc` shared between the connection
/// handler and the server's scrape path.
pub struct Session {
    name: String,
    spec_name: String,
    workers: usize,
    spec: Spec,
    ring: Arc<IngressRing>,
    analysis: Arc<Isolated<FaultedAnalysis<SessionAnalysis>>>,
    injector: Arc<FaultInjector>,
    registry: Arc<Registry>,
    tracer: Option<Arc<Tracer>>,
    recorder: Mutex<Option<FramedWriter<Box<dyn Write + Send>>>>,
    capture_name: Option<String>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    lineno: AtomicU64,
    /// Records already absorbed by the restored checkpoint — counted
    /// into `events_ingested` although they never crossed this ring.
    restored_seq: AtomicU64,
    last_ckpt: Mutex<Option<(u64, Instant)>>,
}

impl Session {
    /// Builds the session and starts its dispatcher thread.
    ///
    /// # Errors
    ///
    /// Fails when the capture sink rejects the framed header.
    pub fn spawn(
        name: &str,
        spec_name: &str,
        spec: Spec,
        compiled: Arc<CompiledSpec>,
        cfg: SessionConfig,
    ) -> std::io::Result<Arc<Session>> {
        let tracer = cfg.traced.then(|| Arc::new(Tracer::new()));
        let core = if cfg.workers > 0 {
            let pcfg = ParallelConfig {
                tracer: tracer.clone(),
                ..ParallelConfig::default()
            };
            DetectorCore::Parallel(ParallelRd2::with_config(cfg.workers, pcfg))
        } else if let Some(t) = &tracer {
            DetectorCore::Serial(TraceDetector::with_tracer(t, DISPATCH_SPAN_EVERY))
        } else {
            DetectorCore::Serial(TraceDetector::new())
        };
        let injector = Arc::new(FaultInjector::new(cfg.faults.unwrap_or_default()));
        let faulted = FaultedAnalysis::new(
            SessionAnalysis {
                core,
                compiled,
                registered: Mutex::new(BTreeSet::new()),
                delivered: AtomicU64::new(0),
            },
            Arc::clone(&injector),
        );
        let analysis = Arc::new(match &tracer {
            Some(t) => Isolated::with_tracer(faulted, t),
            None => Isolated::new(faulted),
        });
        let recorder = match cfg.record_to {
            Some(sink) => Some(FramedWriter::new(sink)?),
            None => None,
        };
        let ring = Arc::new(IngressRing::new(cfg.ring_capacity, cfg.shed_grace));
        let dispatcher = {
            let ring = Arc::clone(&ring);
            let analysis = Arc::clone(&analysis);
            std::thread::Builder::new()
                .name(format!("craced-session-{name}"))
                .spawn(move || {
                    while let Some(event) = ring.pop() {
                        analysis.on_event(&event);
                    }
                })?
        };
        Ok(Arc::new(Session {
            name: name.to_string(),
            spec_name: spec_name.to_string(),
            workers: cfg.workers,
            spec,
            ring,
            analysis,
            injector,
            registry: Arc::new(Registry::new()),
            tracer,
            recorder: Mutex::new(recorder),
            capture_name: cfg.capture_name,
            dispatcher: Mutex::new(Some(dispatcher)),
            lineno: AtomicU64::new(0),
            restored_seq: AtomicU64::new(0),
            last_ckpt: Mutex::new(None),
        }))
    }

    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The spec used to decode wire records.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The session's metric registry (fed lazily; see
    /// [`Session::feed_metrics`]).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The session's tracer, when tracing was requested.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Decodes one framed record line and enqueues the event (recording
    /// it to the capture file first, so the capture reflects everything
    /// that arrived intact — including events later shed).
    ///
    /// # Errors
    ///
    /// Returns the decode error for a damaged or malformed record; the
    /// caller turns it into the torn-stream finalization.
    pub fn ingest_line(&self, line: &str) -> Result<(), TraceParseError> {
        let lineno = self.lineno.fetch_add(1, Ordering::Relaxed) + 1;
        let event = parse_framed_record(line, &self.spec, lineno as usize)?;
        {
            let mut guard = self.recorder.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(w) = guard.as_mut() {
                // Capture I/O errors must not kill the session: the capture
                // is an observability artifact, detection is the product.
                let _ = w.record(&event, &self.spec);
            }
        }
        self.ring.push(event);
        Ok(())
    }

    /// Enqueues an event recovered from the capture file during resume.
    /// Advances the ingest sequence like [`Session::ingest_line`] but
    /// bypasses the recorder — the event is already durable in the
    /// capture, and re-recording it would duplicate the lineage.
    pub fn resume_feed(&self, event: &Event) {
        self.lineno.fetch_add(1, Ordering::Relaxed);
        self.ring.push(event.clone());
    }

    /// Attaches (or replaces) the capture sink after a resume: the sink
    /// must already carry the framed header, so writing continues the
    /// original record sequence in place.
    pub fn attach_recorder(&self, sink: Box<dyn Write + Send>) {
        let mut guard = self.recorder.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = Some(FramedWriter::append(sink));
    }

    /// Records decoded and enqueued so far — the sequence number a
    /// checkpoint of the current state belongs to.
    pub fn seq(&self) -> u64 {
        self.lineno.load(Ordering::Relaxed)
    }

    /// Waits until everything ingested so far is absorbed, then renders
    /// the report — the interim `REPORT` request.
    pub fn report_now(&self) -> RaceReport {
        self.ring.wait_drained();
        self.analysis.report()
    }

    /// Serializes the whole session at the current record boundary:
    /// drains the ring so the detector has absorbed every ingested
    /// record, then writes session metadata (spec, workers, sequence,
    /// capture lineage), the lazily-registered object set, and the
    /// nested detector checkpoint. Returns the blob plus the sequence
    /// number it is valid at.
    pub fn checkpoint_blob(&self) -> (String, u64) {
        self.ring.wait_drained();
        let seq = self.seq();
        let sa = self.analysis.inner().inner();
        let mut w = CkptWriter::new(SESSION_CKPT_KIND);
        w.rec(&format!(
            "meta {} {} {seq}",
            esc(&self.spec_name),
            self.workers
        ));
        if let Some(capture) = &self.capture_name {
            w.rec(&format!("capture {}", esc(capture)));
        }
        {
            let seen = sa.registered.lock().unwrap_or_else(PoisonError::into_inner);
            let mut rec = format!("registered {}", seen.len());
            for obj in seen.iter() {
                rec.push_str(&format!(" {}", obj.0));
            }
            w.rec(&rec);
        }
        w.rec(&format!("detector {}", esc(&sa.core.checkpoint())));
        (w.finish(), seq)
    }

    /// Restores a freshly-spawned session from a [`Session::checkpoint_blob`]:
    /// validates the spec name and worker count against this session's
    /// configuration, rebuilds the lazily-registered object set *without*
    /// re-registering (registration wipes object state the nested restore
    /// is about to install), restores the detector, and fast-forwards the
    /// ingest sequence. Returns the sequence number the capture tail must
    /// be replayed from.
    ///
    /// # Errors
    ///
    /// A spanned [`CkptError`] on any damage or configuration mismatch;
    /// the session must then be discarded and the capture replayed in
    /// full.
    pub fn restore_blob(&self, text: &str, resolve: &SpecResolver<'_>) -> Result<u64, CkptError> {
        let meta = peek_checkpoint_meta(text)?;
        if meta.spec_name != self.spec_name {
            return Err(CkptError::at(
                2,
                format!(
                    "checkpoint is for spec `{}`, session runs `{}`",
                    meta.spec_name, self.spec_name
                ),
            ));
        }
        if meta.workers != self.workers {
            return Err(CkptError::at(
                2,
                format!(
                    "checkpoint took {} worker(s), session runs {}",
                    meta.workers, self.workers
                ),
            ));
        }
        let mut r = CkptReader::new(text, SESSION_CKPT_KIND)?;
        let sa = self.analysis.inner().inner();
        let mut detector_blob: Option<String> = None;
        let mut objects: Vec<ObjId> = Vec::new();
        while let Some(rec) = r.next_rec() {
            match rec.tag() {
                "meta" | "capture" => {}
                "registered" => {
                    let count: usize = rec.num(1)?;
                    for i in 0..count {
                        objects.push(ObjId(rec.num(2 + i)?));
                    }
                }
                "detector" => detector_blob = Some(rec.text(1)?),
                other => {
                    return Err(CkptError::at(
                        rec.line,
                        format!("unknown session record `{other}`"),
                    ))
                }
            }
        }
        let blob =
            detector_blob.ok_or_else(|| CkptError::at(0, "checkpoint has no `detector` record"))?;
        sa.core.restore(&blob, resolve)?;
        {
            let mut seen = sa.registered.lock().unwrap_or_else(PoisonError::into_inner);
            seen.clear();
            seen.extend(objects);
        }
        self.lineno.store(meta.seq, Ordering::Relaxed);
        self.restored_seq.store(meta.seq, Ordering::Relaxed);
        self.note_checkpoint(meta.seq);
        Ok(meta.seq)
    }

    /// Remembers that a checkpoint at `seq` was made durable — feeds the
    /// `checkpoint.seq` / `checkpoint.age_ms` gauges and the STATS line.
    pub fn note_checkpoint(&self, seq: u64) {
        let mut guard = self
            .last_ckpt
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Some((seq, Instant::now()));
    }

    /// `(seq, age)` of the last durable checkpoint, if any.
    pub fn checkpoint_state(&self) -> Option<(u64, Duration)> {
        let guard = self
            .last_ckpt
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.map(|(seq, at)| (seq, at.elapsed()))
    }

    /// Folds current detector/ring/fault/isolation counters into the
    /// session registry (idempotent where the sources are).
    pub fn feed_metrics(&self) {
        let r = &*self.registry;
        let set_counter = |name: &str, now: u64| {
            let c = r.counter(name);
            let cur = c.get();
            if now > cur {
                c.add(now - cur);
            }
        };
        set_counter(
            "ingress.events",
            self.restored_seq.load(Ordering::Relaxed) + self.ring.pushed() + self.ring.shed(),
        );
        set_counter("shed.ring", self.ring.shed());
        set_counter("shed.quarantine", self.analysis.events_shed());
        r.set_gauge("ingress.depth", self.ring.depth() as f64);
        self.analysis.feed(r); // rd2.analysis_panics / events_shed / degraded_mode
        self.injector.feed(r); // fault.*
        self.analysis.inner().inner().core.feed(r); // detector internals
        set_counter(
            "supervisor.respawns",
            self.analysis.inner().inner().core.respawns(),
        );
        match self.checkpoint_state() {
            Some((seq, age)) => {
                r.set_gauge("checkpoint.seq", seq as f64);
                r.set_gauge("checkpoint.age_ms", age.as_millis() as f64);
            }
            None => {
                r.set_gauge("checkpoint.seq", 0.0);
                r.set_gauge("checkpoint.age_ms", 0.0);
            }
        }
        if let Some(t) = &self.tracer {
            t.feed_timeline(r);
        }
    }

    /// Closes the ring, joins the dispatcher, and produces the final
    /// accounting. Idempotent: later calls return an outcome with the
    /// same counters (the first call's join already happened).
    pub fn finalize(&self, clean_bye: bool, damage: Option<StreamDamage>) -> SessionOutcome {
        self.ring.close();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            // The dispatcher drains the ring then exits; a panic inside
            // it is impossible by construction (Isolated absorbs them),
            // but a poisoned join must not take the server down.
            let _ = handle.join();
        }
        let report = self.analysis.report();
        let report_json = report.to_json();
        let degraded = self.analysis.quarantined()
            || self.analysis.inner().inner().core.degraded()
            || damage.is_some();
        self.feed_metrics();
        self.registry.counter("races.total").add(
            report
                .total()
                .saturating_sub(self.registry.counter("races.total").get()),
        );
        if let Some(d) = &damage {
            self.registry.counter("stream.lost_bytes").add(d.lost_bytes);
            self.registry
                .counter("stream.lost_records")
                .add(d.lost_records);
        }
        let (checkpoint_seq, checkpoint_age_ms) = self
            .checkpoint_state()
            .map_or((0, 0), |(seq, age)| (seq, age.as_millis() as u64));
        SessionOutcome {
            name: self.name.clone(),
            spec_name: self.spec_name.clone(),
            workers: self.workers,
            events_ingested: self.restored_seq.load(Ordering::Relaxed)
                + self.ring.pushed()
                + self.ring.shed(),
            shed_ring: self.ring.shed(),
            shed_quarantine: self.analysis.events_shed(),
            analysis_panics: self.analysis.analysis_panics(),
            degraded,
            damage,
            checkpoint_seq,
            checkpoint_age_ms,
            respawns: self.analysis.inner().inner().core.respawns(),
            clean_bye,
            report,
            report_json,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_cli::frame_event;
    use crace_core::translate;
    use crace_model::Trace;
    use crace_spec::builtin;

    fn fig3() -> (Trace, Spec) {
        let spec = builtin::dictionary();
        let text = "fork 0 1\nfork 0 2\nact 2 o1 put(\"a.com\", 1)/nil\nact 1 o1 put(\"a.com\", 2)/1\njoin 0 1\njoin 0 2\n";
        let trace = crace_cli::parse_trace(text, &spec).unwrap();
        (trace, spec)
    }

    fn session(workers: usize, cfg: SessionConfig) -> Arc<Session> {
        let (_, spec) = fig3();
        let compiled = Arc::new(translate(&spec).unwrap());
        Session::spawn(
            "t",
            "dictionary",
            spec,
            compiled,
            SessionConfig { workers, ..cfg },
        )
        .unwrap()
    }

    #[test]
    fn streamed_records_match_offline_replay() {
        let (trace, spec) = fig3();
        for workers in [0usize, 2] {
            let s = session(workers, SessionConfig::default());
            for event in trace.iter() {
                s.ingest_line(&frame_event(event, &spec)).unwrap();
            }
            let outcome = s.finalize(true, None);
            // Offline reference: serial detector, up-front registration.
            let d = TraceDetector::new();
            let compiled = Arc::new(translate(&spec).unwrap());
            d.register(crace_model::ObjId(1), Arc::clone(&compiled));
            let offline = crace_model::replay(&trace, &d);
            assert_eq!(outcome.report, offline, "workers={workers}");
            assert_eq!(outcome.report_json, offline.to_json());
            assert_eq!(outcome.events_ingested, trace.len() as u64);
            assert_eq!(outcome.shed_ring, 0);
            assert!(!outcome.degraded);
            assert!(outcome.report.total() > 0, "fig3 has the race");
        }
    }

    #[test]
    fn damaged_record_is_rejected_with_line_number() {
        let s = session(0, SessionConfig::default());
        let (trace, spec) = fig3();
        let mut line = frame_event(&trace.events()[0], &spec);
        line.push('x'); // breaks the length field
        let e = s.ingest_line(&line).unwrap_err();
        assert_eq!(e.kind, crace_cli::TraceErrorKind::Torn);
        s.finalize(
            false,
            Some(StreamDamage {
                lost_bytes: (line.len() + 1) as u64,
                lost_records: 1,
                reason: e.message,
            }),
        );
    }

    #[test]
    fn injected_panic_quarantines_and_fails_open() {
        let (trace, spec) = fig3();
        let cfg = SessionConfig {
            faults: Some(FaultPlan::parse("panic@2").unwrap()),
            ..SessionConfig::default()
        };
        let s = session(0, cfg);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for event in trace.iter() {
            s.ingest_line(&frame_event(event, &spec)).unwrap();
        }
        let outcome = s.finalize(true, None);
        std::panic::set_hook(prev);
        assert_eq!(outcome.analysis_panics, 1);
        assert!(outcome.degraded);
        // Fail open: a report still comes out, and shedding can only
        // hide races, never invent them.
        let d = TraceDetector::new();
        let compiled = Arc::new(translate(&spec).unwrap());
        d.register(crace_model::ObjId(1), Arc::clone(&compiled));
        let offline = crace_model::replay(&trace, &d);
        assert!(outcome.report.total() <= offline.total());
    }

    #[test]
    fn capture_file_holds_every_intact_record() {
        let (trace, spec) = fig3();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let cfg = SessionConfig {
            record_to: Some(Box::new(Shared(Arc::clone(&buf)))),
            ..SessionConfig::default()
        };
        let s = session(0, cfg);
        for event in trace.iter() {
            s.ingest_line(&frame_event(event, &spec)).unwrap();
        }
        s.finalize(true, None);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(crace_cli::parse_trace(&text, &spec).unwrap(), trace);
    }
}
