//! `crace-daemon` — the multi-tenant streaming detection service.
//!
//! The offline pipeline (`crace replay`) analyzes a trace after the
//! fact; this crate turns the same detectors into a *service*: clients
//! stream framed trace records over a Unix-domain or TCP socket, the
//! daemon multiplexes any number of concurrent detection sessions —
//! each with its own spec, detector (serial `Rd2` or sharded
//! `ParallelRd2`), metrics registry, and optional span tracer — and
//! answers `GET /metrics` on the same socket with Prometheus or JSON
//! renderings of the merged state.
//!
//! Everything is std-only and thread-per-connection: no async runtime,
//! no HTTP or serialization dependency. The load-bearing invariants:
//!
//! * **Differential equality.** A healthy session's report is
//!   bit-for-bit the JSON `crace replay --json` produces for the same
//!   events, at any worker width — `tests/daemon_vs_replay.rs` proves
//!   it under concurrent tenants, chunked and dribbled writes.
//! * **Degradation contract.** Under overload or injected faults the
//!   daemon may *hide* races (shed data-plane events, quarantined
//!   analyses) but never invents them: synchronization events are never
//!   shed (a lost happens-before edge could fabricate races), and every
//!   loss is counted (`shed.*`, `stream.lost_*`).
//! * **Torn streams still report.** A client that dies mid-record gets
//!   the valid prefix analyzed and an outcome retained server-side with
//!   exact lost-bytes/records accounting — the socket analogue of
//!   `parse_framed_tolerant`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod ring;
pub mod server;
pub mod session;

pub use client::{parse_stats, Client, Transport, WireStats};
pub use protocol::{
    parse_request, valid_session_name, Hello, Request, MAX_LINE_BYTES, MAX_SESSION_NAME,
    MAX_SPEC_NAME, MAX_WORKERS,
};
pub use ring::IngressRing;
pub use server::{Endpoint, Server, ServerConfig};
pub use session::{Session, SessionConfig, SessionOutcome, StreamDamage};
