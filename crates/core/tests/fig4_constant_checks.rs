//! The Fig. 4 claim, made countable: checking whether `size()` commutes
//! with N preceding `put`s costs the access-point detector a *constant*
//! number of conflict probes (one lookup against `o:resize`), while the
//! direct approach performs one commutativity check per recorded action.

use crace_core::{translate, DirectDetector, ObjState};
use crace_model::ThreadId;
use crace_model::{Action, ObjId, Value};
use crace_spec::builtin;
use crace_vclock::VectorClock;
use std::sync::Arc;

fn clock(tid: usize, n: u64) -> VectorClock {
    let mut components = vec![0; tid + 1];
    components[tid] = n;
    VectorClock::from_components(components)
}

#[test]
fn size_costs_one_probe_regardless_of_recorded_puts() {
    let spec = builtin::dictionary();
    let compiled = translate(&spec).unwrap();
    let put = spec.method_id("put").unwrap();
    let size = spec.method_id("size").unwrap();

    for n_puts in [3usize, 30, 300] {
        let mut state = ObjState::new();
        // N successful puts to distinct keys from thread 0 (the Fig. 4
        // setup: all resize the dictionary).
        for i in 0..n_puts {
            let a = Action::new(
                ObjId(0),
                put,
                vec![Value::Int(i as i64), Value::Int(1)],
                Value::Nil,
            );
            state.on_action(&compiled, &a, ThreadId(0), &clock(0, i as u64 + 1));
        }
        let before = state.num_probes();
        // The size() from another thread (Fig. 4's main thread).
        let s = Action::new(ObjId(0), size, vec![], Value::Int(n_puts as i64));
        let races = state.on_action(&compiled, &s, ThreadId(1), &clock(1, 1));
        let size_probes = state.num_probes() - before;

        // One touched point (o:size), one conflicting class (o:resize):
        // exactly ONE probe — independent of how many puts were recorded.
        assert_eq!(size_probes, 1, "n_puts = {n_puts}");
        // And the race against the accumulated resize clock is found.
        assert_eq!(races.len(), 1);
    }
}

#[test]
fn direct_approach_costs_linear_checks() {
    let spec = Arc::new(builtin::dictionary());
    let put = spec.method_id("put").unwrap();
    let size = spec.method_id("size").unwrap();
    for n_puts in [3usize, 30, 300] {
        let mut direct = DirectDetector::new(Arc::clone(&spec));
        for i in 0..n_puts {
            let a = Action::new(
                ObjId(0),
                put,
                vec![Value::Int(i as i64), Value::Int(1)],
                Value::Nil,
            );
            direct.on_action(&a, &clock(0, i as u64 + 1));
        }
        // The direct detector's working set IS the check count for the
        // next action: one formula evaluation per recorded action.
        assert_eq!(direct.num_recorded(), n_puts);
        let s = Action::new(ObjId(0), size, vec![], Value::Int(n_puts as i64));
        let races = direct.on_action(&s, &clock(1, 1));
        // …and it reports one race per conflicting recorded put.
        assert_eq!(races, n_puts);
    }
}

#[test]
fn per_action_probes_are_bounded_by_spec_constant() {
    // Over a long mixed workload, total probes / actions stays ≤ the
    // spec's max conflict degree × max touched points (a constant).
    let spec = builtin::dictionary();
    let compiled = translate(&spec).unwrap();
    let put = spec.method_id("put").unwrap();
    let get = spec.method_id("get").unwrap();
    let mut state = ObjState::new();
    let mut actions = 0u64;
    for i in 0..1_000i64 {
        let a = if i % 3 == 0 {
            Action::new(ObjId(0), get, vec![Value::Int(i % 7)], Value::Int(1))
        } else {
            Action::new(
                ObjId(0),
                put,
                vec![Value::Int(i % 7), Value::Int(i)],
                Value::Int(i - 1),
            )
        };
        state.on_action(&compiled, &a, ThreadId(0), &clock(0, i as u64 + 1));
        actions += 1;
    }
    let bound = (compiled.stats().max_conflict_degree as u64) * 2; // ≤2 touched points
    assert!(state.num_probes() <= actions * bound);
}
