//! Randomized validation of the ECL → access-point translation
//! (Definition 4.5): for *randomly generated* ECL specifications, the
//! compiled representation must declare two actions conflicting exactly
//! when the logical formula says they do not commute.
//!
//! This complements the unit tests on the builtin specifications with
//! structural coverage of the whole fragment grammar: random `LS` parts,
//! random `LB` parts (with negations and disjunctions), and random ECL
//! combinations `X ∧ X` / `X ∨ B`.

use crace_core::{translate, translate_with, OptPass, A3_PIPELINE};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{CmpOp, Formula, Side, Spec, SpecBuilder, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 3; // two arguments + return value
const OBJ: ObjId = ObjId(0);

fn gen_term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.6) {
        Term::Slot(rng.gen_range(0..SLOTS))
    } else {
        match rng.gen_range(0..3) {
            0 => Term::Const(Value::Nil),
            _ => Term::Const(Value::Int(rng.gen_range(0..3))),
        }
    }
}

fn gen_cmp(rng: &mut StdRng) -> CmpOp {
    match rng.gen_range(0..6) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

/// A random `LB` formula (atoms each over a single side).
fn gen_lb(rng: &mut StdRng, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.4) {
        let side = if rng.gen_bool(0.5) {
            Side::First
        } else {
            Side::Second
        };
        return Formula::atom(side, gen_cmp(rng), gen_term(rng), gen_term(rng));
    }
    match rng.gen_range(0..4) {
        0 => gen_lb(rng, depth - 1).not(),
        1 => gen_lb(rng, depth - 1).and(gen_lb(rng, depth - 1)),
        2 => gen_lb(rng, depth - 1).or(gen_lb(rng, depth - 1)),
        _ => {
            if rng.gen_bool(0.5) {
                Formula::True
            } else {
                Formula::False
            }
        }
    }
}

/// A random `LS` formula (conjunctions of cross-inequalities).
fn gen_ls(rng: &mut StdRng, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.5) {
        return Formula::NeqCross {
            i: rng.gen_range(0..SLOTS),
            j: rng.gen_range(0..SLOTS),
        };
    }
    gen_ls(rng, depth - 1).and(gen_ls(rng, depth - 1))
}

/// A random ECL formula: `X ::= S | B | X ∧ X | X ∨ B`.
fn gen_ecl(rng: &mut StdRng, depth: usize) -> Formula {
    if depth == 0 {
        return if rng.gen_bool(0.5) {
            gen_ls(rng, 1)
        } else {
            gen_lb(rng, 1)
        };
    }
    match rng.gen_range(0..4) {
        0 => gen_ls(rng, depth),
        1 => gen_lb(rng, depth),
        2 => gen_ecl(rng, depth - 1).and(gen_ecl(rng, depth - 1)),
        _ => gen_ecl(rng, depth - 1).or(gen_lb(rng, depth - 1)),
    }
}

/// A random two-method specification with random ECL rules. Same-method
/// rules are symmetrized as `ϕ ∧ swap(ϕ)` (which stays in ECL).
fn gen_spec(rng: &mut StdRng) -> Option<Spec> {
    let mut b = SpecBuilder::new("random");
    let m0 = b.method("m0", SLOTS - 1);
    let m1 = b.method("m1", SLOTS - 1);
    for (a, c) in [(m0.id, m0.id), (m0.id, m1.id), (m1.id, m1.id)] {
        let phi = gen_ecl(rng, 3);
        let phi = if a == c {
            phi.clone().and(phi.swap_sides())
        } else {
            phi
        };
        b.rule(a, c, phi).ok()?;
    }
    b.finish().ok()
}

fn gen_action(rng: &mut StdRng, method: MethodId) -> Action {
    let value = |rng: &mut StdRng| match rng.gen_range(0..4) {
        0 => Value::Nil,
        _ => Value::Int(rng.gen_range(0..3)),
    };
    let args = (0..SLOTS - 1).map(|_| value(rng)).collect();
    let ret = value(rng);
    Action::new(OBJ, method, args, ret)
}

/// The headline property: compiled conflicts ⇔ logical non-commutativity,
/// over 300 random specifications × 60 random action pairs each.
#[test]
fn translation_is_equivalent_to_formula_on_random_ecl_specs() {
    let mut tested = 0;
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(spec) = gen_spec(&mut rng) else {
            continue;
        };
        assert!(spec.is_ecl(), "generator stayed inside ECL, seed {seed}");
        let compiled = match translate(&spec) {
            Ok(c) => c,
            Err(e) => panic!("seed {seed}: ECL spec failed to translate: {e}\n{spec}"),
        };
        for _ in 0..60 {
            let ma = MethodId(rng.gen_range(0..2));
            let mb = MethodId(rng.gen_range(0..2));
            let a = gen_action(&mut rng, ma);
            let b = gen_action(&mut rng, mb);
            assert_eq!(
                compiled.actions_conflict(&a, &b),
                !spec.commute(&a, &b),
                "seed {seed}: a = {a}, b = {b}\nspec = {spec}\n{compiled}"
            );
            // Symmetry of the compiled relation.
            assert_eq!(
                compiled.actions_conflict(&a, &b),
                compiled.actions_conflict(&b, &a),
                "seed {seed}: asymmetric conflicts for {a} / {b}"
            );
            tested += 1;
        }
        // Theorem 6.6: degree stays bounded by a function of the spec size
        // (these specs have ≤ ~12 atoms; degrees stay small).
        assert!(
            compiled.stats().max_conflict_degree <= 64,
            "seed {seed}: degree {} suspiciously large",
            compiled.stats().max_conflict_degree
        );
    }
    assert!(tested > 5_000, "generator kept producing specs ({tested})");
}

/// Each A.3 optimization pass is *individually* semantics-preserving on
/// random ECL specifications: the raw representation, every single-pass
/// variant, and the full pipeline all agree with the logical formula
/// (Definition 4.5). This is the property the `crace lint` pipeline audit
/// (L009) checks on bounded domains, validated here across the whole
/// fragment grammar — 70 seeds × 3 rules each ≥ 200 random ECL formulas.
#[test]
fn every_a3_pass_is_individually_semantics_preserving_on_random_specs() {
    let variants: [(&str, &[OptPass]); 6] = [
        ("raw", &[]),
        ("consolidate", &[OptPass::Consolidate]),
        ("drop", &[OptPass::Drop]),
        ("replace", &[OptPass::Replace]),
        ("cleanup", &[OptPass::Cleanup]),
        ("full", &A3_PIPELINE),
    ];
    let mut formulas = 0;
    for seed in 500..570u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(spec) = gen_spec(&mut rng) else {
            continue;
        };
        formulas += 3;
        let actions: Vec<(Action, Action)> = (0..40)
            .map(|_| {
                let ma = MethodId(rng.gen_range(0..2));
                let mb = MethodId(rng.gen_range(0..2));
                (gen_action(&mut rng, ma), gen_action(&mut rng, mb))
            })
            .collect();
        for (name, passes) in variants {
            let compiled = match translate_with(&spec, passes) {
                Ok(c) => c,
                Err(e) => panic!("seed {seed} pass {name}: failed to translate: {e}\n{spec}"),
            };
            for (a, b) in &actions {
                assert_eq!(
                    compiled.actions_conflict(a, b),
                    !spec.commute(a, b),
                    "seed {seed} pass {name}: a = {a}, b = {b}\nspec = {spec}"
                );
            }
        }
        // The full pipeline never has more classes than any single pass.
        let full = translate_with(&spec, &A3_PIPELINE).unwrap();
        for (name, passes) in &variants {
            let partial = translate_with(&spec, passes).unwrap();
            assert!(
                full.num_classes() <= partial.num_classes(),
                "seed {seed}: full ({}) > {name} ({})",
                full.num_classes(),
                partial.num_classes()
            );
        }
    }
    assert!(
        formulas >= 200,
        "generator kept producing specs ({formulas})"
    );
}

/// Every random ECL spec's touched-point sets stay small (bounded by
/// slots + 1), matching η's definition.
#[test]
fn touched_sets_are_bounded_by_slots_plus_ds() {
    for seed in 300..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(spec) = gen_spec(&mut rng) else {
            continue;
        };
        let Ok(compiled) = translate(&spec) else {
            continue;
        };
        for _ in 0..20 {
            let m = MethodId(rng.gen_range(0..2));
            let a = gen_action(&mut rng, m);
            let touched = compiled.touched(&a);
            assert!(touched.len() <= SLOTS + 1, "{a}: {touched:?}");
        }
    }
}
