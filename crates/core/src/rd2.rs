//! RD2 — the online, sharded commutativity race detector for live
//! multi-threaded programs.

use crate::engine::ObjState;
use crate::points::CompiledSpec;
use crace_model::{
    Action, Analysis, LockId, ObjId, RaceKind, RaceRecord, RaceReport, ThreadId,
};
use crace_vclock::SyncClocks;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// The online commutativity race detector (the paper's RD2 tool).
///
/// Functionally identical to [`crate::TraceDetector`], but engineered for
/// concurrent callers, mirroring RoadRunner's shadow-state discipline:
///
/// * synchronization clocks live behind a read-write lock — action events
///   only *read* the acting thread's clock, so the common path takes a
///   shared lock; fork/join/acquire/release take the exclusive lock,
/// * each object's access-point state sits behind its own mutex, so actions
///   on different objects proceed in parallel,
/// * the race report has its own lock, touched only when a race is found.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use crace_core::{translate, Rd2};
/// use crace_model::{Action, Analysis, ObjId, ThreadId, Value};
/// use crace_spec::builtin;
///
/// let spec = builtin::dictionary();
/// let rd2 = Rd2::new();
/// rd2.register(ObjId(1), Arc::new(translate(&spec)?));
///
/// let put = spec.method_id("put").unwrap();
/// rd2.on_fork(ThreadId(0), ThreadId(1));
/// rd2.on_action(ThreadId(0), &Action::new(
///     ObjId(1), put, vec![Value::Int(5), Value::Int(1)], Value::Nil));
/// rd2.on_action(ThreadId(1), &Action::new(
///     ObjId(1), put, vec![Value::Int(5), Value::Int(2)], Value::Int(1)));
/// assert_eq!(rd2.report().total(), 1);
/// # Ok::<(), crace_core::TranslateError>(())
/// ```
pub struct Rd2 {
    sync: RwLock<SyncClocks>,
    objects: RwLock<HashMap<ObjId, Arc<ObjEntry>>>,
    report: Mutex<RaceReport>,
    /// Cache of compiled specifications, keyed by spec name, so that
    /// registering the Nth dictionary does not re-run the translation.
    compiled: Mutex<HashMap<String, Arc<CompiledSpec>>>,
}

struct ObjEntry {
    spec: Arc<CompiledSpec>,
    state: Mutex<ObjState>,
}

impl Rd2 {
    /// Creates a detector with no registered objects.
    pub fn new() -> Rd2 {
        Rd2 {
            sync: RwLock::new(SyncClocks::new()),
            objects: RwLock::new(HashMap::new()),
            report: Mutex::new(RaceReport::new()),
            compiled: Mutex::new(HashMap::new()),
        }
    }

    /// Registers `obj` against an (uncompiled) logical specification,
    /// translating it on first use and caching the result by spec name.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the specification is outside ECL.
    pub fn register_spec(
        &self,
        obj: ObjId,
        spec: &crace_spec::Spec,
    ) -> Result<(), crate::TranslateError> {
        let compiled = {
            let mut cache = self.compiled.lock();
            match cache.get(spec.name()) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(crate::translate(spec)?);
                    cache.insert(spec.name().to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        self.register(obj, compiled);
        Ok(())
    }

    /// Registers `obj` to be checked against `spec`. Actions on
    /// unregistered objects are ignored (selective instrumentation).
    pub fn register(&self, obj: ObjId, spec: Arc<CompiledSpec>) {
        self.objects.write().insert(
            obj,
            Arc::new(ObjEntry {
                spec,
                state: Mutex::new(ObjState::new()),
            }),
        );
    }

    /// Drops all shadow state of `obj` — the object-reclamation
    /// optimization of §5.3.
    pub fn forget(&self, obj: ObjId) {
        self.objects.write().remove(&obj);
    }
}

impl Default for Rd2 {
    fn default() -> Rd2 {
        Rd2::new()
    }
}

impl Analysis for Rd2 {
    fn name(&self) -> &str {
        "rd2"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.sync.write().fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.sync.write().join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.sync.write().acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.sync.write().release(tid, lock);
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        let entry = match self.objects.read().get(&action.obj()) {
            Some(e) => Arc::clone(e),
            None => return,
        };
        // Ensure the thread's clock is initialized, then snapshot it under
        // the shared lock. (`clock` takes `&mut` for lazy init, so a brief
        // write lock is needed only the first time a thread is seen.)
        let clock = {
            let sync = self.sync.read();
            // Fast path: fork already initialized this thread.
            sync.peek_clock(tid).cloned()
        };
        let clock = match clock {
            Some(c) => c,
            None => self.sync.write().clock(tid).clone(),
        };
        let races = entry.state.lock().on_action(&entry.spec, action, &clock);
        if !races.is_empty() {
            let mut report = self.report.lock();
            let kind = RaceKind::Commutativity { obj: action.obj() };
            for hit in races {
                report.record_with(kind.clone(), || RaceRecord {
                    kind: kind.clone(),
                    tid,
                    action: Some(action.clone()),
                    detail: format!(
                        "{} touched {} conflicting with active {}",
                        action,
                        entry.spec.label(hit.touched),
                        entry.spec.label(hit.conflicting)
                    ),
                });
            }
        }
    }

    fn report(&self) -> RaceReport {
        self.report.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use crace_model::Value;
    use crace_spec::builtin;
    use std::thread;

    fn dict_rd2() -> (crace_spec::Spec, Rd2) {
        let spec = builtin::dictionary();
        let rd2 = Rd2::new();
        rd2.register(ObjId(1), Arc::new(translate(&spec).unwrap()));
        (spec, rd2)
    }

    #[test]
    fn detects_the_running_example_race() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_fork(ThreadId(0), ThreadId(2));
        rd2.on_action(
            ThreadId(2),
            &Action::new(ObjId(1), put, vec![Value::str("a.com"), Value::Int(1)], Value::Nil),
        );
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::str("a.com"), Value::Int(2)],
                Value::Int(1),
            ),
        );
        let report = rd2.report();
        assert_eq!(report.total(), 1);
        assert_eq!(report.distinct(), 1);
    }

    #[test]
    fn join_orders_suppress_races() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_action(
            ThreadId(1),
            &Action::new(ObjId(1), put, vec![Value::Int(1), Value::Int(1)], Value::Nil),
        );
        rd2.on_join(ThreadId(0), ThreadId(1));
        rd2.on_action(
            ThreadId(0),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert!(rd2.report().is_empty());
    }

    #[test]
    fn concurrent_callers_do_not_deadlock_or_miss_state() {
        // Hammer one RD2 from many real threads; every thread writes its
        // own key so no races are expected, which also checks we do not
        // false-positive under concurrency for per-thread keys.
        let spec = builtin::dictionary();
        let rd2 = Arc::new(Rd2::new());
        rd2.register(ObjId(1), Arc::new(translate(&spec).unwrap()));
        let put = spec.method_id("put").unwrap();
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let rd2 = Arc::clone(&rd2);
            rd2.on_fork(ThreadId(0), ThreadId(t));
            handles.push(thread::spawn(move || {
                for i in 0..500i64 {
                    let prev = if i == 0 { Value::Nil } else { Value::Int(i - 1) };
                    rd2.on_action(
                        ThreadId(t),
                        &Action::new(
                            ObjId(1),
                            put,
                            vec![Value::Int(t as i64 * 1_000), Value::Int(i)],
                            prev,
                        ),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Writes to distinct keys never race; resize points are only touched
        // by each thread's first insert, which IS concurrent across threads…
        // each thread's first put resizes, so resize/resize conflicts?
        // resize conflicts only with size (Fig. 7c), so still no races.
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
    }

    #[test]
    fn forget_makes_later_actions_noops() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_action(
            ThreadId(0),
            &Action::new(ObjId(1), put, vec![Value::Int(1), Value::Int(1)], Value::Nil),
        );
        rd2.forget(ObjId(1));
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert!(rd2.report().is_empty());
    }
}
