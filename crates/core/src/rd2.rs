//! RD2 — the online, sharded commutativity race detector for live
//! multi-threaded programs.

use crate::engine::{ClockMode, ObjState};
use crate::points::CompiledSpec;
use crace_model::{Action, Analysis, LockId, ObjId, RaceKind, RaceRecord, RaceReport, ThreadId};
use crace_vclock::{ClockStats, PublishedClocks};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of shards of the object map. Objects hash to shards by id, so
/// actions on different objects essentially never contend on a shard lock.
const OBJ_SHARDS: usize = 64;

/// The online commutativity race detector (the paper's RD2 tool).
///
/// Functionally identical to [`crate::TraceDetector`], but engineered so
/// that the action hot path acquires **no process-global lock**:
///
/// * synchronization clocks live in a [`PublishedClocks`]: per-thread
///   `Arc` snapshots in a map sharded by thread id. An action event reads
///   the acting thread's own snapshot — one shard read lock it shares with
///   (essentially) nobody, one `Arc` clone, no vector copy. Only
///   fork/join/acquire/release swap snapshots,
/// * the object map is sharded by object id; each object's access-point
///   state sits behind its own mutex, so actions on different objects
///   proceed fully in parallel and actions on the same object serialize
///   only with each other,
/// * the race report has its own lock, touched only when a race is found.
///
/// The seed version of this type kept one `RwLock<SyncClocks>` that every
/// action of every thread locked *and deep-copied a vector clock out of*;
/// both global points of contention are gone.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use crace_core::{translate, Rd2};
/// use crace_model::{Action, Analysis, ObjId, ThreadId, Value};
/// use crace_spec::builtin;
///
/// let spec = builtin::dictionary();
/// let rd2 = Rd2::new();
/// rd2.register(ObjId(1), Arc::new(translate(&spec)?));
///
/// let put = spec.method_id("put").unwrap();
/// rd2.on_fork(ThreadId(0), ThreadId(1));
/// rd2.on_action(ThreadId(0), &Action::new(
///     ObjId(1), put, vec![Value::Int(5), Value::Int(1)], Value::Nil));
/// rd2.on_action(ThreadId(1), &Action::new(
///     ObjId(1), put, vec![Value::Int(5), Value::Int(2)], Value::Int(1)));
/// assert_eq!(rd2.report().total(), 1);
/// # Ok::<(), crace_core::TranslateError>(())
/// ```
pub struct Rd2 {
    sync: PublishedClocks,
    objects: [RwLock<HashMap<ObjId, Arc<ObjEntry>>>; OBJ_SHARDS],
    report: Mutex<RaceReport>,
    /// Cache of compiled specifications, keyed by spec name, so that
    /// registering the Nth dictionary does not re-run the translation.
    compiled: Mutex<HashMap<String, Arc<CompiledSpec>>>,
    mode: ClockMode,
    /// When set, objects collect race provenance with an event window of
    /// this many actions (see [`ObjState::with_provenance`]).
    provenance_window: Option<usize>,
    /// Threads abandoned via [`Analysis::abandon_thread`]: retired clocks,
    /// later events naming them shed.
    abandoned: RwLock<HashSet<ThreadId>>,
    /// Fast-path guard: true iff `abandoned` is non-empty, so the common
    /// (no faults ever) case pays one relaxed load, not a lock.
    has_abandoned: AtomicBool,
    /// Events shed because they named an abandoned thread.
    shed: AtomicU64,
    /// When set, `on_action` records sampled spans into a tracer lane
    /// (see [`Rd2::with_tracer`]); `None` costs one branch per action.
    tracer: Option<crace_obs::SampledSpans>,
}

struct ObjEntry {
    spec: Arc<CompiledSpec>,
    state: Mutex<ObjState>,
}

impl Rd2 {
    /// Creates a detector with no registered objects, using the adaptive
    /// (epoch-compressed) access-point clocks.
    pub fn new() -> Rd2 {
        Rd2::with_mode(ClockMode::Adaptive)
    }

    /// Creates a detector with an explicit clock representation —
    /// [`ClockMode::FullVector`] is the differential-testing and
    /// benchmarking reference.
    pub fn with_mode(mode: ClockMode) -> Rd2 {
        Rd2 {
            sync: PublishedClocks::new(),
            objects: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            report: Mutex::new(RaceReport::new()),
            compiled: Mutex::new(HashMap::new()),
            mode,
            provenance_window: None,
            abandoned: RwLock::new(HashSet::new()),
            has_abandoned: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            tracer: None,
        }
    }

    /// Creates a detector that collects race provenance — each sampled
    /// race carries the colliding access points, both clocks at detection
    /// time, the prior action on the conflicting point, and the last
    /// `window` actions on the racing object (`crace replay --explain`).
    ///
    /// Provenance costs a descriptor render and window push per action on
    /// registered objects; leave it off for overhead measurements.
    pub fn with_provenance(window: usize) -> Rd2 {
        Rd2 {
            provenance_window: Some(window),
            ..Rd2::new()
        }
    }

    /// Creates a detector that records one-in-`sample_every` `on_action`
    /// dispatches as spans on `tracer`'s `rd2` lane (phase
    /// `rd2.on_action`). `sample_every == 0` disables the sampling; the
    /// untraced constructors skip even the sampling branch's atomic.
    pub fn with_tracer(tracer: &crace_obs::Tracer, sample_every: u64) -> Rd2 {
        Rd2 {
            tracer: Some(crace_obs::SampledSpans::new(
                tracer,
                "rd2",
                "rd2.on_action",
                sample_every,
            )),
            ..Rd2::new()
        }
    }

    fn shard(&self, obj: ObjId) -> &RwLock<HashMap<ObjId, Arc<ObjEntry>>> {
        &self.objects[(obj.0 as usize) % OBJ_SHARDS]
    }

    /// True iff an event naming any of `tids` must be shed because that
    /// thread was abandoned. One relaxed load when no thread has ever
    /// been abandoned — the hot path stays lock-free.
    fn sheds(&self, tids: &[ThreadId]) -> bool {
        if !self.has_abandoned.load(Ordering::Relaxed) {
            return false;
        }
        let abandoned = self.abandoned.read();
        if tids.iter().any(|t| abandoned.contains(t)) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Number of events shed because they named an abandoned thread.
    pub fn events_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Registers `obj` against an (uncompiled) logical specification,
    /// translating it on first use and caching the result by spec name.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the specification is outside ECL.
    pub fn register_spec(
        &self,
        obj: ObjId,
        spec: &crace_spec::Spec,
    ) -> Result<(), crate::TranslateError> {
        let compiled = {
            let mut cache = self.compiled.lock();
            match cache.get(spec.name()) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(crate::translate(spec)?);
                    cache.insert(spec.name().to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        self.register(obj, compiled);
        Ok(())
    }

    /// Registers `obj` to be checked against `spec`. Actions on
    /// unregistered objects are ignored (selective instrumentation).
    pub fn register(&self, obj: ObjId, spec: Arc<CompiledSpec>) {
        let state = match self.provenance_window {
            Some(window) => ObjState::with_provenance(self.mode, window),
            None => ObjState::with_mode(self.mode),
        };
        self.shard(obj).write().insert(
            obj,
            Arc::new(ObjEntry {
                spec,
                state: Mutex::new(state),
            }),
        );
    }

    /// Drops all shadow state of `obj` — the object-reclamation
    /// optimization of §5.3.
    pub fn forget(&self, obj: ObjId) {
        self.shard(obj).write().remove(&obj);
    }

    /// Total phase-1 conflict probes across all registered objects (one
    /// per conflicting class per touched point — the §5.4 work measure).
    pub fn num_probes(&self) -> u64 {
        let mut total = 0;
        for shard in &self.objects {
            for entry in shard.read().values() {
                total += entry.state.lock().num_probes();
            }
        }
        total
    }

    /// Aggregated clock-representation statistics over all registered
    /// objects: how many phase-2 updates stayed on the O(1) epoch path.
    pub fn clock_stats(&self) -> ClockStats {
        let mut stats = ClockStats::default();
        for shard in &self.objects {
            for entry in shard.read().values() {
                stats.merge(&entry.state.lock().clock_stats());
            }
        }
        stats
    }
}

impl Default for Rd2 {
    fn default() -> Rd2 {
        Rd2::new()
    }
}

impl Analysis for Rd2 {
    fn name(&self) -> &str {
        "rd2"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        if self.sheds(&[parent, child]) {
            return;
        }
        self.sync.fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        // Joining an abandoned child is shed: its slot was dropped, so
        // the join would fold a lazily reinitialized fresh clock.
        if self.sheds(&[parent, child]) {
            return;
        }
        self.sync.join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        if self.sheds(&[tid]) {
            return;
        }
        self.sync.acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        if self.sheds(&[tid]) {
            return;
        }
        self.sync.release(tid, lock);
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        if self.sheds(&[tid]) {
            return;
        }
        let _span = self
            .tracer
            .as_ref()
            .and_then(crace_obs::SampledSpans::maybe);
        let entry = match self.shard(action.obj()).read().get(&action.obj()) {
            Some(e) => Arc::clone(e),
            None => return,
        };
        // A shared snapshot of the acting thread's clock: no global lock,
        // no vector copy.
        let clock = self.sync.clock(tid);
        // Rendering provenance is pointless once the report's sample
        // buffer is full; the check only costs a lock in provenance mode.
        let want_detail = self.provenance_window.is_some() && self.report.lock().wants_detail();
        let races =
            entry
                .state
                .lock()
                .on_action_detailed(&entry.spec, action, tid, &clock, want_detail);
        if !races.is_empty() {
            let mut report = self.report.lock();
            let kind = RaceKind::Commutativity { obj: action.obj() };
            for hit in races {
                report.record_with(kind.clone(), || RaceRecord {
                    kind: kind.clone(),
                    tid,
                    action: Some(action.clone()),
                    detail: format!(
                        "{} touched {} conflicting with active {}",
                        action,
                        entry.spec.label(hit.touched),
                        entry.spec.label(hit.conflicting)
                    ),
                    provenance: hit.provenance,
                });
            }
        }
    }

    /// Finalizes a dead thread: retires its published clock slot and
    /// sheds all later events naming it. No happens-before edges are
    /// introduced and the report over the delivered prefix is untouched.
    fn abandon_thread(&self, tid: ThreadId) {
        self.abandoned.write().insert(tid);
        self.has_abandoned.store(true, Ordering::Relaxed);
        self.sync.retire(tid);
    }

    fn report(&self) -> RaceReport {
        self.report.lock().clone()
    }
}

impl crate::Checkpoint for Rd2 {
    fn checkpoint_kind(&self) -> &'static str {
        "rd2"
    }

    fn checkpoint(&self) -> String {
        use crate::checkpoint as ck;
        use crace_vclock::ckpt::vc_append;
        use std::fmt::Write;
        let mut w = crace_vclock::CkptWriter::new(self.checkpoint_kind());
        w.rec(&format!(
            "meta {} {} {}",
            ck::mode_word(self.mode),
            self.provenance_window
                .map_or("-".to_string(), |p| p.to_string()),
            self.shed.load(Ordering::Relaxed)
        ));
        // PublishedClocks slots are keyed snapshots (a retired slot is
        // removed, not reset), so records carry explicit tids.
        for (tid, clock) in self.sync.thread_snapshots() {
            w.rec_with(|out| {
                let _ = write!(out, "thread {} ", tid.0);
                vc_append(out, &clock);
            });
        }
        for (lock, clock) in self.sync.lock_snapshots() {
            w.rec_with(|out| {
                let _ = write!(out, "lock {} ", lock.0);
                vc_append(out, &clock);
            });
        }
        ck::abandoned_write(&mut w, self.abandoned.read().iter().copied());
        ck::report_write(&mut w, "", &self.report.lock());
        let mut objects: Vec<(ObjId, Arc<ObjEntry>)> = Vec::new();
        for shard in &self.objects {
            for (obj, entry) in shard.read().iter() {
                objects.push((*obj, Arc::clone(entry)));
            }
        }
        objects.sort_by_key(|(obj, _)| obj.0);
        for (obj, entry) in objects {
            ck::object_header(&mut w, obj, &entry.spec);
            entry.state.lock().ckpt_write(&mut w);
        }
        w.finish()
    }

    fn restore(
        &self,
        text: &str,
        resolve: &crate::SpecResolver<'_>,
    ) -> Result<(), crace_vclock::CkptError> {
        use crate::checkpoint as ck;
        use crace_vclock::ckpt::{vc_parse, CkptError};
        let mut r = crace_vclock::CkptReader::new(text, self.checkpoint_kind())?;
        let head = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint has no `meta` record"))?;
        if head.tag() != "meta" {
            return Err(CkptError::at(
                head.line,
                format!("expected `meta`, found `{}`", head.tag()),
            ));
        }
        let mode = ck::mode_parse(head.word(1)?, head.line)?;
        let provenance_window =
            match head.word(2)? {
                "-" => None,
                p => Some(p.parse::<usize>().map_err(|_| {
                    CkptError::at(head.line, format!("bad provenance window `{p}`"))
                })?),
            };
        if mode != self.mode {
            return Err(ck::config_mismatch(
                head.line,
                "clock mode",
                mode,
                self.mode,
            ));
        }
        if provenance_window != self.provenance_window {
            return Err(ck::config_mismatch(
                head.line,
                "provenance window",
                provenance_window,
                self.provenance_window,
            ));
        }
        self.shed.store(head.num(3)?, Ordering::Relaxed);
        while let Some(rec) = r.peek() {
            match rec.tag() {
                "thread" => {
                    let tid = ThreadId(rec.num(1)?);
                    let clock = vc_parse(rec.word(2)?, rec.line)?;
                    self.sync.import_thread(tid, clock);
                }
                "lock" => {
                    let lock = LockId(rec.num(1)?);
                    let clock = vc_parse(rec.word(2)?, rec.line)?;
                    self.sync.import_lock(lock, clock);
                }
                _ => break,
            }
            r.next_rec();
        }
        let abandoned: HashSet<ThreadId> = ck::abandoned_read(&mut r)?.into_iter().collect();
        self.has_abandoned
            .store(!abandoned.is_empty(), Ordering::Relaxed);
        *self.abandoned.write() = abandoned;
        *self.report.lock() = ck::report_read(&mut r, "")?;
        for shard in &self.objects {
            shard.write().clear();
        }
        while let Some(rec) = r.next_rec() {
            if rec.tag() != "object" {
                return Err(CkptError::at(
                    rec.line,
                    format!("expected `object`, found `{}`", rec.tag()),
                ));
            }
            let (obj, spec) = ck::object_parse(rec, resolve)?;
            let state = crate::engine::ObjState::ckpt_read(&mut r)?;
            self.shard(obj).write().insert(
                obj,
                Arc::new(ObjEntry {
                    spec,
                    state: Mutex::new(state),
                }),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use crace_model::Value;
    use crace_spec::builtin;
    use std::thread;

    fn dict_rd2() -> (crace_spec::Spec, Rd2) {
        let spec = builtin::dictionary();
        let rd2 = Rd2::new();
        rd2.register(ObjId(1), Arc::new(translate(&spec).unwrap()));
        (spec, rd2)
    }

    #[test]
    fn detects_the_running_example_race() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_fork(ThreadId(0), ThreadId(2));
        rd2.on_action(
            ThreadId(2),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::str("a.com"), Value::Int(1)],
                Value::Nil,
            ),
        );
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::str("a.com"), Value::Int(2)],
                Value::Int(1),
            ),
        );
        let report = rd2.report();
        assert_eq!(report.total(), 1);
        assert_eq!(report.distinct(), 1);
    }

    #[test]
    fn join_orders_suppress_races() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(1)],
                Value::Nil,
            ),
        );
        rd2.on_join(ThreadId(0), ThreadId(1));
        rd2.on_action(
            ThreadId(0),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert!(rd2.report().is_empty());
    }

    #[test]
    fn concurrent_callers_do_not_deadlock_or_miss_state() {
        // Hammer one RD2 from many real threads; every thread writes its
        // own key so no races are expected, which also checks we do not
        // false-positive under concurrency for per-thread keys.
        let spec = builtin::dictionary();
        let rd2 = Arc::new(Rd2::new());
        rd2.register(ObjId(1), Arc::new(translate(&spec).unwrap()));
        let put = spec.method_id("put").unwrap();
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let rd2 = Arc::clone(&rd2);
            rd2.on_fork(ThreadId(0), ThreadId(t));
            handles.push(thread::spawn(move || {
                for i in 0..500i64 {
                    let prev = if i == 0 {
                        Value::Nil
                    } else {
                        Value::Int(i - 1)
                    };
                    rd2.on_action(
                        ThreadId(t),
                        &Action::new(
                            ObjId(1),
                            put,
                            vec![Value::Int(t as i64 * 1_000), Value::Int(i)],
                            prev,
                        ),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Writes to distinct keys never race; resize points are only touched
        // by each thread's first insert, which IS concurrent across threads…
        // each thread's first put resizes, so resize/resize conflicts?
        // resize conflicts only with size (Fig. 7c), so still no races.
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
        // Per-thread keys are single-writer: their updates all take the
        // epoch path (only the shared resize point may promote).
        let stats = rd2.clock_stats();
        assert!(stats.epoch_updates >= 4 * 499, "{stats}");
    }

    /// Mirror of the TraceDetector abandonment test on the sharded
    /// detector: delivered races survive, later events of the dead tid
    /// are shed, and no spurious ordering protects survivors.
    #[test]
    fn abandon_sheds_late_events_and_orders_nobody() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_fork(ThreadId(0), ThreadId(2));
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::str("k"), Value::Int(1)],
                Value::Nil,
            ),
        );
        rd2.abandon_thread(ThreadId(1));
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::str("k"), Value::Int(9)],
                Value::Int(1),
            ),
        );
        rd2.on_join(ThreadId(0), ThreadId(1));
        assert_eq!(rd2.events_shed(), 2);
        rd2.on_action(
            ThreadId(2),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::str("k"), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert_eq!(rd2.report().total(), 1, "{:?}", rd2.report());
    }

    #[test]
    fn forget_makes_later_actions_noops() {
        let (spec, rd2) = dict_rd2();
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_action(
            ThreadId(0),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(1)],
                Value::Nil,
            ),
        );
        rd2.forget(ObjId(1));
        rd2.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert!(rd2.report().is_empty());
    }

    #[test]
    fn objects_in_different_shards_are_independent() {
        // Objects 3 and 3 + 64 share a shard; 3 and 4 do not. All work.
        let spec = builtin::dictionary();
        let rd2 = Rd2::new();
        let compiled = Arc::new(translate(&spec).unwrap());
        for obj in [3u64, 4, 67] {
            rd2.register(ObjId(obj), Arc::clone(&compiled));
        }
        let put = spec.method_id("put").unwrap();
        rd2.on_fork(ThreadId(0), ThreadId(1));
        for obj in [3u64, 4, 67] {
            rd2.on_action(
                ThreadId(0),
                &Action::new(
                    ObjId(obj),
                    put,
                    vec![Value::Int(1), Value::Int(1)],
                    Value::Nil,
                ),
            );
            rd2.on_action(
                ThreadId(1),
                &Action::new(
                    ObjId(obj),
                    put,
                    vec![Value::Int(1), Value::Int(2)],
                    Value::Int(1),
                ),
            );
        }
        let report = rd2.report();
        assert_eq!(report.total(), 3);
        assert_eq!(report.distinct(), 3);
    }

    #[test]
    fn full_vector_mode_matches_adaptive() {
        let spec = builtin::dictionary();
        let compiled = Arc::new(translate(&spec).unwrap());
        let adaptive = Rd2::new();
        let full = Rd2::with_mode(ClockMode::FullVector);
        for rd2 in [&adaptive, &full] {
            rd2.register(ObjId(1), Arc::clone(&compiled));
            let put = spec.method_id("put").unwrap();
            rd2.on_fork(ThreadId(0), ThreadId(1));
            rd2.on_action(
                ThreadId(0),
                &Action::new(
                    ObjId(1),
                    put,
                    vec![Value::Int(1), Value::Int(1)],
                    Value::Nil,
                ),
            );
            rd2.on_action(
                ThreadId(1),
                &Action::new(
                    ObjId(1),
                    put,
                    vec![Value::Int(1), Value::Int(2)],
                    Value::Int(1),
                ),
            );
        }
        assert_eq!(adaptive.report().total(), full.report().total());
        assert_eq!(adaptive.report().distinct(), full.report().distinct());
        // The contended w:1 point was promoted; the reference mode only
        // ever performs vector joins.
        assert_eq!(adaptive.clock_stats().promotions, 1);
        assert_eq!(full.clock_stats().promotions, 0);
        assert_eq!(full.clock_stats().epoch_updates, 0);
    }
}
