//! A quadratic reference oracle for commutativity races.
//!
//! [`find_races`] enumerates *every* racing event pair of a trace by
//! definition — computing the happens-before relation with per-event vector
//! clocks and evaluating the logical specification on each unordered pair
//! (Definition 4.3). It makes no use of access points and is deliberately
//! naive; its only purpose is to validate the online detectors:
//!
//! * Theorem 5.1 says Algorithm 1 reports a race **iff** the trace contains
//!   one — so `TraceDetector` reports ≥ 1 race exactly when the oracle's
//!   pair list is nonempty;
//! * the direct detector's total count must equal the oracle's pair count
//!   (it enumerates the same pairs incrementally).

use crace_model::ObjId;
use crace_model::{Event, Trace};
use crace_spec::Spec;
use crace_vclock::{SyncClocks, VectorClock};
use std::collections::HashMap;

/// A racing pair of events, by trace position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RacePair {
    /// Index of the earlier event in the trace.
    pub first: usize,
    /// Index of the later event.
    pub second: usize,
}

/// Enumerates all commutativity races of `trace` with respect to the
/// specifications in `registry` (one [`Spec`] per object; actions of
/// unregistered objects are ignored).
///
/// Runs in `Θ(n²)` formula evaluations over the trace's actions — use only
/// on test-sized traces.
///
/// # Examples
///
/// ```
/// use crace_core::oracle::find_races;
/// use crace_model::{Action, Event, ObjId, ThreadId, Trace, Value};
/// use crace_spec::builtin;
/// use std::collections::HashMap;
///
/// let spec = builtin::dictionary();
/// let put = spec.method_id("put").unwrap();
/// let mut trace = Trace::new();
/// trace.push(Event::Fork { parent: ThreadId(0), child: ThreadId(1) });
/// trace.push(Event::Action {
///     tid: ThreadId(0),
///     action: Action::new(ObjId(1), put, vec![Value::Int(1), Value::Int(1)], Value::Nil),
/// });
/// trace.push(Event::Action {
///     tid: ThreadId(1),
///     action: Action::new(ObjId(1), put, vec![Value::Int(1), Value::Int(2)], Value::Int(1)),
/// });
/// let registry: HashMap<_, _> = [(ObjId(1), spec)].into();
/// assert_eq!(find_races(&trace, &registry).len(), 1);
/// ```
pub fn find_races(trace: &Trace, registry: &HashMap<ObjId, Spec>) -> Vec<RacePair> {
    // Pass 1: stamp every action event with its vector clock.
    let mut sync = SyncClocks::new();
    let mut stamped: Vec<(usize, &crace_model::Action, VectorClock)> = Vec::new();
    for (idx, event) in trace.iter().enumerate() {
        match event {
            Event::Action { tid, action } => {
                let clock = sync.clock(*tid).clone();
                stamped.push((idx, action, clock));
            }
            other => sync.apply(other),
        }
    }

    // Pass 2: all unordered, non-commuting pairs on the same object.
    let mut races = Vec::new();
    for (i, (idx_a, a, ca)) in stamped.iter().enumerate() {
        for (idx_b, b, cb) in stamped.iter().skip(i + 1) {
            if a.obj() != b.obj() {
                continue; // actions of different objects always commute
            }
            let Some(spec) = registry.get(&a.obj()) else {
                continue;
            };
            if ca.concurrent_with(cb) && !spec.commute(a, b) {
                races.push(RacePair {
                    first: *idx_a,
                    second: *idx_b,
                });
            }
        }
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{translate, Direct, TraceDetector};
    use crace_model::{replay, Action, LockId, MethodId, ThreadId, Value};
    use crace_spec::builtin;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    /// Generates a random dictionary trace: forks, joins, locks and put /
    /// get / size actions with small keys. Returns a trace that is
    /// *plausible* (forks before use, joins after forks) though the action
    /// return values are arbitrary — commutativity race detection only
    /// inspects the trace, not object semantics.
    fn random_trace(seed: u64, events: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = builtin::dictionary();
        let put = spec.method_id("put").unwrap();
        let get = spec.method_id("get").unwrap();
        let size = spec.method_id("size").unwrap();
        let mut trace = Trace::new();
        let mut live: Vec<u32> = vec![0];
        let mut next_tid = 1u32;
        let value = |rng: &mut StdRng| -> Value {
            if rng.gen_bool(0.3) {
                Value::Nil
            } else {
                Value::Int(rng.gen_range(0..3))
            }
        };
        for _ in 0..events {
            let tid = ThreadId(live[rng.gen_range(0..live.len())]);
            match rng.gen_range(0..10) {
                0 => {
                    let child = ThreadId(next_tid);
                    next_tid += 1;
                    trace.push(Event::Fork { parent: tid, child });
                    live.push(child.0);
                }
                1 if live.len() > 1 => {
                    // Join a random other live thread (its later events are
                    // then "before" the joiner — fine for the oracle).
                    let other = live[rng.gen_range(0..live.len())];
                    if other != tid.0 {
                        trace.push(Event::Join {
                            parent: tid,
                            child: ThreadId(other),
                        });
                        live.retain(|&t| t != other);
                    }
                }
                2 => {
                    let lock = LockId(rng.gen_range(0..2));
                    trace.push(Event::Acquire { tid, lock });
                    trace.push(Event::Release { tid, lock });
                }
                3..=6 => {
                    let k = Value::Int(rng.gen_range(0..3));
                    let action =
                        Action::new(ObjId(1), put, vec![k, value(&mut rng)], value(&mut rng));
                    trace.push(Event::Action { tid, action });
                }
                7 | 8 => {
                    let k = Value::Int(rng.gen_range(0..3));
                    let action = Action::new(ObjId(1), get, vec![k], value(&mut rng));
                    trace.push(Event::Action { tid, action });
                }
                _ => {
                    let action =
                        Action::new(ObjId(1), size, vec![], Value::Int(rng.gen_range(0..4)));
                    trace.push(Event::Action { tid, action });
                }
            }
        }
        trace
    }

    /// Theorem 5.1 (both directions) cross-checked on random traces:
    /// Algorithm 1 reports a race iff the oracle finds a racing pair, and
    /// the direct detector's count equals the oracle's pair count.
    #[test]
    fn detectors_agree_with_oracle_on_random_traces() {
        let spec = builtin::dictionary();
        let compiled = Arc::new(translate(&spec).unwrap());
        for seed in 0..30u64 {
            let trace = random_trace(seed, 60);
            let registry: HashMap<_, _> = [(ObjId(1), spec.clone())].into();
            let oracle_races = find_races(&trace, &registry);

            let rd2 = TraceDetector::new();
            rd2.register(ObjId(1), Arc::clone(&compiled));
            let rd2_report = replay(&trace, &rd2);

            let direct = Direct::new();
            direct.register(ObjId(1), Arc::new(spec.clone()));
            let direct_report = replay(&trace, &direct);

            assert_eq!(
                rd2_report.total() > 0,
                !oracle_races.is_empty(),
                "seed {seed}: rd2 = {rd2_report:?}, oracle = {oracle_races:?}\n{trace}"
            );
            assert_eq!(
                direct_report.total() as usize,
                oracle_races.len(),
                "seed {seed}: direct disagrees with oracle\n{trace}"
            );
        }
    }

    #[test]
    fn oracle_ignores_unregistered_objects_and_cross_object_pairs() {
        let spec = builtin::dictionary();
        let put = spec.method_id("put").unwrap();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        // Same key, unordered, but different objects.
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(1)],
                Value::Nil,
            ),
        });
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: Action::new(
                ObjId(2),
                put,
                vec![Value::Int(1), Value::Int(2)],
                Value::Nil,
            ),
        });
        let registry: HashMap<_, _> = [(ObjId(1), spec)].into();
        assert!(find_races(&trace, &registry).is_empty());
    }

    #[test]
    fn oracle_reports_positions_in_trace_order() {
        let spec = builtin::dictionary();
        let put = spec.method_id("put").unwrap();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(1)],
                Value::Nil,
            ),
        });
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(1), Value::Int(2)],
                Value::Int(1),
            ),
        });
        let registry: HashMap<_, _> = [(ObjId(1), spec)].into();
        let races = find_races(&trace, &registry);
        assert_eq!(
            races,
            vec![RacePair {
                first: 1,
                second: 2
            }]
        );
    }

    #[test]
    fn oracle_treats_unknown_methods_as_never_commuting() {
        // Method pairs with no rule default to `false` (Spec::formula), so
        // concurrent invocations of an undeclared method id are
        // conservatively racy rather than a panic.
        let spec = builtin::dictionary();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        for t in 0..2u32 {
            trace.push(Event::Action {
                tid: ThreadId(t),
                action: Action::new(ObjId(1), MethodId(9), vec![], Value::Nil),
            });
        }
        let registry: HashMap<_, _> = [(ObjId(1), spec)].into();
        assert_eq!(find_races(&trace, &registry).len(), 1);
    }
}
