//! The offline/single-consumer commutativity race detector.

use crate::engine::{ClockMode, ObjState};
use crate::points::CompiledSpec;
use crace_model::{Action, Analysis, LockId, ObjId, RaceKind, RaceRecord, RaceReport, ThreadId};
use crace_vclock::{ClockStats, SyncClocks};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The commutativity race detector of §5 over a single event stream —
/// Table 1 synchronization handling plus Algorithm 1 per action.
///
/// `TraceDetector` implements [`Analysis`] behind one internal lock, which
/// makes it ideal for replaying recorded traces ([`crace_model::replay`])
/// and for tests; for live multi-threaded programs prefer [`crate::Rd2`],
/// which shards its state.
///
/// Objects must be [registered](TraceDetector::register) with a compiled
/// specification; actions on unregistered objects are ignored, mirroring
/// how the paper's tool instruments only the `ConcurrentHashMap`s.
///
/// # Examples
///
/// See the crate-level example, which runs the Fig. 3 trace.
pub struct TraceDetector {
    inner: Mutex<Inner>,
    /// When set, `on_action` records sampled spans into a tracer lane
    /// (see [`TraceDetector::with_tracer`]); `None` costs one branch.
    tracer: Option<crace_obs::SampledSpans>,
}

struct Inner {
    sync: SyncClocks,
    registry: HashMap<ObjId, Arc<CompiledSpec>>,
    objects: HashMap<ObjId, ObjState>,
    report: RaceReport,
    compiled: HashMap<String, Arc<CompiledSpec>>,
    mode: ClockMode,
    /// When set, objects collect race provenance with an event window of
    /// this many actions (see [`ObjState::with_provenance`]).
    provenance_window: Option<usize>,
    /// Threads abandoned via [`Analysis::abandon_thread`]: their clocks
    /// are retired and any stray later event naming them is shed, so a
    /// dead thread can never introduce spurious happens-before edges.
    abandoned: HashSet<ThreadId>,
    /// Events shed because they named an abandoned thread.
    shed: u64,
}

impl Inner {
    /// True iff the event should be shed because it names a thread whose
    /// clock has been finalized.
    fn sheds(&mut self, tids: &[ThreadId]) -> bool {
        if !self.abandoned.is_empty() && tids.iter().any(|t| self.abandoned.contains(t)) {
            self.shed += 1;
            return true;
        }
        false
    }
}

impl TraceDetector {
    /// Creates a detector with no registered objects, using the adaptive
    /// (epoch-compressed) access-point clocks.
    pub fn new() -> TraceDetector {
        TraceDetector::with_mode(ClockMode::Adaptive)
    }

    /// Creates a detector with an explicit clock representation.
    /// [`ClockMode::FullVector`] keeps every `pt.vc` as a complete vector
    /// — the reference the differential tests compare the epoch fast path
    /// against.
    pub fn with_mode(mode: ClockMode) -> TraceDetector {
        TraceDetector {
            inner: Mutex::new(Inner {
                sync: SyncClocks::new(),
                registry: HashMap::new(),
                objects: HashMap::new(),
                report: RaceReport::new(),
                compiled: HashMap::new(),
                mode,
                provenance_window: None,
                abandoned: HashSet::new(),
                shed: 0,
            }),
            tracer: None,
        }
    }

    /// Creates a detector that collects race provenance: each sampled race
    /// carries the colliding access points, both clocks at detection time,
    /// the prior action on the conflicting point, and the last `window`
    /// actions on the racing object. This is what `crace replay --explain`
    /// replays through.
    pub fn with_provenance(window: usize) -> TraceDetector {
        let detector = TraceDetector::new();
        detector.inner.lock().provenance_window = Some(window);
        detector
    }

    /// Creates a detector that records one-in-`sample_every` `on_action`
    /// dispatches as spans on `tracer`'s `rd2` lane (phase
    /// `rd2.on_action`), like [`crate::Rd2::with_tracer`].
    /// `sample_every == 0` disables the sampling.
    pub fn with_tracer(tracer: &crace_obs::Tracer, sample_every: u64) -> TraceDetector {
        let mut detector = TraceDetector::new();
        detector.tracer = Some(crace_obs::SampledSpans::new(
            tracer,
            "rd2",
            "rd2.on_action",
            sample_every,
        ));
        detector
    }

    /// Registers `obj` to be checked against `spec`. Re-registering an
    /// object replaces its specification and clears its shadow state.
    pub fn register(&self, obj: ObjId, spec: Arc<CompiledSpec>) {
        let mut inner = self.inner.lock();
        inner.registry.insert(obj, spec);
        inner.objects.remove(&obj);
    }

    /// Registers `obj` against an (uncompiled) logical specification,
    /// translating on first use and caching by spec name.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the specification is outside ECL.
    pub fn register_spec(
        &self,
        obj: ObjId,
        spec: &crace_spec::Spec,
    ) -> Result<(), crate::TranslateError> {
        let compiled = {
            let mut inner = self.inner.lock();
            match inner.compiled.get(spec.name()) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(crate::translate(spec)?);
                    inner
                        .compiled
                        .insert(spec.name().to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        self.register(obj, compiled);
        Ok(())
    }

    /// Drops all shadow state of `obj` (the object-reclamation optimization
    /// of §5.3: no new races can be reported on a dead object).
    pub fn forget(&self, obj: ObjId) {
        let mut inner = self.inner.lock();
        inner.registry.remove(&obj);
        inner.objects.remove(&obj);
    }

    /// Number of active access points currently tracked for `obj`.
    pub fn num_active(&self, obj: ObjId) -> usize {
        self.inner
            .lock()
            .objects
            .get(&obj)
            .map_or(0, ObjState::num_active)
    }

    /// Total phase-1 conflict probes across all tracked objects (one per
    /// conflicting class per touched point — the §5.4 work measure).
    pub fn num_probes(&self) -> u64 {
        self.inner
            .lock()
            .objects
            .values()
            .map(ObjState::num_probes)
            .sum()
    }

    /// Number of events shed because they named an abandoned thread.
    pub fn events_shed(&self) -> u64 {
        self.inner.lock().shed
    }

    /// Aggregated clock-representation statistics over all tracked
    /// objects: how many phase-2 updates stayed on the O(1) epoch path.
    pub fn clock_stats(&self) -> ClockStats {
        let inner = self.inner.lock();
        let mut stats = ClockStats::default();
        for state in inner.objects.values() {
            stats.merge(&state.clock_stats());
        }
        stats
    }
}

impl Default for TraceDetector {
    fn default() -> TraceDetector {
        TraceDetector::new()
    }
}

impl Analysis for TraceDetector {
    fn name(&self) -> &str {
        "rd2-trace"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        let inner = &mut *self.inner.lock();
        if inner.sheds(&[parent, child]) {
            return;
        }
        inner.sync.fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        let inner = &mut *self.inner.lock();
        // A join of an abandoned child is shed too: the child's clock was
        // retired (reset to ⊥), so folding it into the parent would
        // either be a no-op or, worse, a spurious edge from a lazily
        // reinitialized fresh clock.
        if inner.sheds(&[parent, child]) {
            return;
        }
        inner.sync.join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        let inner = &mut *self.inner.lock();
        if inner.sheds(&[tid]) {
            return;
        }
        inner.sync.acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        let inner = &mut *self.inner.lock();
        if inner.sheds(&[tid]) {
            return;
        }
        inner.sync.release(tid, lock);
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        let _span = self
            .tracer
            .as_ref()
            .and_then(crace_obs::SampledSpans::maybe);
        let inner = &mut *self.inner.lock();
        if inner.sheds(&[tid]) {
            return;
        }
        let Some(spec) = inner.registry.get(&action.obj()) else {
            return;
        };
        let spec = Arc::clone(spec);
        let clock = inner.sync.clock(tid).clone();
        let mode = inner.mode;
        let provenance_window = inner.provenance_window;
        let want_detail = provenance_window.is_some() && inner.report.wants_detail();
        let state = inner
            .objects
            .entry(action.obj())
            .or_insert_with(|| match provenance_window {
                Some(window) => ObjState::with_provenance(mode, window),
                None => ObjState::with_mode(mode),
            });
        let hits = state.on_action_detailed(&spec, action, tid, &clock, want_detail);
        let kind = RaceKind::Commutativity { obj: action.obj() };
        for hit in hits {
            inner.report.record_with(kind.clone(), || RaceRecord {
                kind: kind.clone(),
                tid,
                action: Some(action.clone()),
                detail: format!(
                    "{} touched {} conflicting with active {}",
                    action,
                    spec.label(hit.touched),
                    spec.label(hit.conflicting)
                ),
                provenance: hit.provenance,
            });
        }
    }

    /// Finalizes a dead thread: retires its sync clock and sheds any
    /// later event naming it. Creates no happens-before edges and never
    /// changes what was already reported — the report over the events
    /// delivered before the abandonment is untouched.
    fn abandon_thread(&self, tid: ThreadId) {
        let inner = &mut *self.inner.lock();
        inner.abandoned.insert(tid);
        inner.sync.retire(tid);
    }

    fn report(&self) -> RaceReport {
        self.inner.lock().report.clone()
    }
}

impl crate::Checkpoint for TraceDetector {
    fn checkpoint_kind(&self) -> &'static str {
        "rd2-trace"
    }

    fn checkpoint(&self) -> String {
        use crate::checkpoint as ck;
        let inner = self.inner.lock();
        let mut w = crace_vclock::CkptWriter::new(self.checkpoint_kind());
        w.rec(&format!(
            "meta {} {} {}",
            ck::mode_word(inner.mode),
            inner
                .provenance_window
                .map_or("-".to_string(), |p| p.to_string()),
            inner.shed
        ));
        ck::sync_write(&mut w, &inner.sync);
        ck::abandoned_write(&mut w, inner.abandoned.iter().copied());
        ck::report_write(&mut w, "", &inner.report);
        let mut objects: Vec<ObjId> = inner.registry.keys().copied().collect();
        objects.sort();
        for obj in objects {
            ck::object_header(&mut w, obj, &inner.registry[&obj]);
            // Objects registered but never acted on have no shadow state
            // yet; serialize an empty one so restore stays uniform.
            match inner.objects.get(&obj) {
                Some(state) => state.ckpt_write(&mut w),
                None => match inner.provenance_window {
                    Some(p) => ObjState::with_provenance(inner.mode, p).ckpt_write(&mut w),
                    None => ObjState::with_mode(inner.mode).ckpt_write(&mut w),
                },
            }
        }
        w.finish()
    }

    fn restore(
        &self,
        text: &str,
        resolve: &crate::SpecResolver<'_>,
    ) -> Result<(), crace_vclock::CkptError> {
        use crate::checkpoint as ck;
        use crace_vclock::ckpt::CkptError;
        let mut r = crace_vclock::CkptReader::new(text, self.checkpoint_kind())?;
        let head = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint has no `meta` record"))?;
        if head.tag() != "meta" {
            return Err(CkptError::at(
                head.line,
                format!("expected `meta`, found `{}`", head.tag()),
            ));
        }
        let mode = ck::mode_parse(head.word(1)?, head.line)?;
        let provenance_window =
            match head.word(2)? {
                "-" => None,
                p => Some(p.parse::<usize>().map_err(|_| {
                    CkptError::at(head.line, format!("bad provenance window `{p}`"))
                })?),
            };
        let shed: u64 = head.num(3)?;
        let line = head.line;
        let inner = &mut *self.inner.lock();
        if mode != inner.mode {
            return Err(ck::config_mismatch(line, "clock mode", mode, inner.mode));
        }
        if provenance_window != inner.provenance_window {
            return Err(ck::config_mismatch(
                line,
                "provenance window",
                provenance_window,
                inner.provenance_window,
            ));
        }
        inner.sync = ck::sync_read(&mut r)?;
        inner.abandoned = ck::abandoned_read(&mut r)?.into_iter().collect();
        inner.report = ck::report_read(&mut r, "")?;
        inner.shed = shed;
        inner.registry.clear();
        inner.objects.clear();
        while let Some(rec) = r.next_rec() {
            if rec.tag() != "object" {
                return Err(CkptError::at(
                    rec.line,
                    format!("expected `object`, found `{}`", rec.tag()),
                ));
            }
            let (obj, spec) = ck::object_parse(rec, resolve)?;
            let state = ObjState::ckpt_read(&mut r)?;
            inner.registry.insert(obj, spec);
            inner.objects.insert(obj, state);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use crace_model::{replay, Event, Trace, Value};
    use crace_spec::builtin;

    fn dict() -> (crace_spec::Spec, Arc<CompiledSpec>) {
        let spec = builtin::dictionary();
        let compiled = Arc::new(translate(&spec).unwrap());
        (spec, compiled)
    }

    fn put_event(spec: &crace_spec::Spec, tid: u32, obj: u64, k: &str, v: i64, p: Value) -> Event {
        Event::Action {
            tid: ThreadId(tid),
            action: Action::new(
                ObjId(obj),
                spec.method_id("put").unwrap(),
                vec![Value::str(k), Value::Int(v)],
                p,
            ),
        }
    }

    /// The full Fig. 3 trace: fork two threads that put the same key, then
    /// joinall and size() — exactly one race (the two puts).
    #[test]
    fn fig3_trace_reports_exactly_the_put_put_race() {
        let (spec, compiled) = dict();
        let detector = TraceDetector::new();
        detector.register(ObjId(1), compiled);
        let (tm, t2, t3) = (ThreadId(0), ThreadId(1), ThreadId(2));
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: tm,
            child: t2,
        });
        trace.push(Event::Fork {
            parent: tm,
            child: t3,
        });
        trace.push(put_event(&spec, 2, 1, "a.com", 1, Value::Nil));
        trace.push(put_event(&spec, 1, 1, "a.com", 2, Value::Int(1)));
        trace.push(Event::Join {
            parent: tm,
            child: t2,
        });
        trace.push(Event::Join {
            parent: tm,
            child: t3,
        });
        trace.push(Event::Action {
            tid: tm,
            action: Action::new(
                ObjId(1),
                spec.method_id("size").unwrap(),
                vec![],
                Value::Int(1),
            ),
        });
        let report = replay(&trace, &detector);
        assert_eq!(report.total(), 1, "{report:?}");
        assert_eq!(report.distinct(), 1);
        assert!(report.samples()[0].detail.contains("put"));
    }

    /// Without the joinall, size() additionally races with the resizing put
    /// (the a3/a1 observation of §2) but NOT with the non-resizing put.
    #[test]
    fn fig3_without_join_adds_exactly_the_resize_race() {
        let (spec, compiled) = dict();
        let detector = TraceDetector::new();
        detector.register(ObjId(1), compiled);
        let (tm, t2, t3) = (ThreadId(0), ThreadId(1), ThreadId(2));
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: tm,
            child: t2,
        });
        trace.push(Event::Fork {
            parent: tm,
            child: t3,
        });
        trace.push(put_event(&spec, 2, 1, "a.com", 1, Value::Nil)); // resizes
        trace.push(put_event(&spec, 1, 1, "a.com", 2, Value::Int(1))); // no resize
        trace.push(Event::Action {
            tid: tm,
            action: Action::new(
                ObjId(1),
                spec.method_id("size").unwrap(),
                vec![],
                Value::Int(1),
            ),
        });
        let report = replay(&trace, &detector);
        // put/put race + size/resize race.
        assert_eq!(report.total(), 2, "{report:?}");
    }

    #[test]
    fn unregistered_objects_are_ignored() {
        let (spec, _) = dict();
        let detector = TraceDetector::new();
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        trace.push(put_event(&spec, 0, 9, "k", 1, Value::Nil));
        trace.push(put_event(&spec, 1, 9, "k", 2, Value::Int(1)));
        assert!(replay(&trace, &detector).is_empty());
    }

    #[test]
    fn lock_ordering_suppresses_races() {
        let (spec, compiled) = dict();
        let detector = TraceDetector::new();
        detector.register(ObjId(1), compiled);
        let (t1, t2) = (ThreadId(1), ThreadId(2));
        let lock = LockId(0);
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: t1,
        });
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: t2,
        });
        trace.push(Event::Acquire { tid: t1, lock });
        trace.push(put_event(&spec, 1, 1, "k", 1, Value::Nil));
        trace.push(Event::Release { tid: t1, lock });
        trace.push(Event::Acquire { tid: t2, lock });
        trace.push(put_event(&spec, 2, 1, "k", 2, Value::Int(1)));
        trace.push(Event::Release { tid: t2, lock });
        assert!(replay(&trace, &detector).is_empty());
        // Sanity: without the lock events the same puts do race.
        let detector2 = TraceDetector::new();
        detector2.register(
            ObjId(1),
            Arc::new(translate(&builtin::dictionary()).unwrap()),
        );
        let mut unordered = Trace::new();
        unordered.push(Event::Fork {
            parent: ThreadId(0),
            child: t1,
        });
        unordered.push(Event::Fork {
            parent: ThreadId(0),
            child: t2,
        });
        unordered.push(put_event(&spec, 1, 1, "k", 1, Value::Nil));
        unordered.push(put_event(&spec, 2, 1, "k", 2, Value::Int(1)));
        assert_eq!(replay(&unordered, &detector2).total(), 1);
    }

    #[test]
    fn races_on_different_objects_count_as_distinct() {
        let (spec, compiled) = dict();
        let detector = TraceDetector::new();
        detector.register(ObjId(1), compiled.clone());
        detector.register(ObjId(2), compiled);
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        for obj in [1u64, 2] {
            trace.push(put_event(&spec, 0, obj, "k", 1, Value::Nil));
            trace.push(put_event(&spec, 1, obj, "k", 2, Value::Int(1)));
        }
        let report = replay(&trace, &detector);
        assert_eq!(report.total(), 2);
        assert_eq!(report.distinct(), 2);
    }

    /// Abandoning a thread must (a) keep every race already reported,
    /// (b) shed all later events naming the dead tid, and (c) introduce
    /// no happens-before edges — a survivor's conflicting action still
    /// races with the dead thread's delivered action.
    #[test]
    fn abandon_finalizes_clock_without_ordering_survivors() {
        let (spec, compiled) = dict();
        let detector = TraceDetector::new();
        detector.register(ObjId(1), compiled);
        let (tm, t1, t2) = (ThreadId(0), ThreadId(1), ThreadId(2));
        detector.on_fork(tm, t1);
        detector.on_fork(tm, t2);
        // t1 delivers one put, then dies mid-flight.
        detector.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                spec.method_id("put").unwrap(),
                vec![Value::str("k"), Value::Int(1)],
                Value::Nil,
            ),
        );
        detector.abandon_thread(t1);
        // Post-abandonment events from the dead tid are shed, including a
        // stray join that would otherwise fold a reinitialized clock.
        detector.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                spec.method_id("put").unwrap(),
                vec![Value::str("k"), Value::Int(9)],
                Value::Int(1),
            ),
        );
        detector.on_join(tm, t1);
        assert_eq!(detector.events_shed(), 2);
        // No HB edge was created: t2's overlapping put still races with
        // t1's delivered one.
        detector.on_action(
            ThreadId(2),
            &Action::new(
                ObjId(1),
                spec.method_id("put").unwrap(),
                vec![Value::str("k"), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert_eq!(detector.report().total(), 1);
    }

    #[test]
    fn forget_drops_shadow_state() {
        let (spec, compiled) = dict();
        let detector = TraceDetector::new();
        detector.register(ObjId(1), compiled);
        detector.on_fork(ThreadId(0), ThreadId(1));
        detector.on_action(
            ThreadId(0),
            &Action::new(
                ObjId(1),
                spec.method_id("put").unwrap(),
                vec![Value::str("k"), Value::Int(1)],
                Value::Nil,
            ),
        );
        assert!(detector.num_active(ObjId(1)) > 0);
        detector.forget(ObjId(1));
        assert_eq!(detector.num_active(ObjId(1)), 0);
        // Actions after forget are ignored — no panic, no race.
        detector.on_action(
            ThreadId(1),
            &Action::new(
                ObjId(1),
                spec.method_id("put").unwrap(),
                vec![Value::str("k"), Value::Int(2)],
                Value::Int(1),
            ),
        );
        assert!(detector.report().is_empty());
    }
}
