//! The per-object core of Algorithm 1.

use crate::points::{AccessPoint, ClassId, CompiledSpec};
use crace_model::Action;
use crace_vclock::VectorClock;
use std::collections::HashMap;

/// One commutativity race found by phase 1 of Algorithm 1: the touched
/// point's class and the conflicting active class.
///
/// Deliberately tiny (two indices): race *recording* must stay cheap even
/// when a workload races millions of times, so human-readable details are
/// only rendered for the sampled records a report retains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceHit {
    /// The class of the point touched by the current action.
    pub touched: ClassId,
    /// The conflicting active class.
    pub conflicting: ClassId,
}

/// The per-object auxiliary state of Algorithm 1: the vector clock
/// `pt.vc` of every *active* access point.
///
/// The paper keeps a global `active : Obj → P(X)` plus a clock map
/// `ptvc : X → VC`; following the implementation note in §5.3 we attach the
/// state to the object it belongs to, so reclaiming an object reclaims its
/// shadow state (the `forget`-style optimization the tool implements).
///
/// # Examples
///
/// ```
/// use crace_core::{translate, ObjState};
/// use crace_model::{Action, ObjId, Value};
/// use crace_spec::builtin;
/// use crace_vclock::VectorClock;
///
/// let spec = builtin::dictionary();
/// let compiled = translate(&spec).unwrap();
/// let put = spec.method_id("put").unwrap();
/// let mut state = ObjState::new();
///
/// // Two concurrent same-key puts: the second one races.
/// let a = Action::new(ObjId(0), put, vec![Value::Int(5), Value::Int(1)], Value::Nil);
/// let b = Action::new(ObjId(0), put, vec![Value::Int(5), Value::Int(2)], Value::Int(1));
/// let c1 = VectorClock::from_components([1, 0]);
/// let c2 = VectorClock::from_components([0, 1]);
/// assert_eq!(state.on_action(&compiled, &a, &c1).len(), 0);
/// assert_eq!(state.on_action(&compiled, &b, &c2).len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ObjState {
    /// `pt.vc` for every active point, keyed by `(class, value)`.
    active: HashMap<AccessPoint, VectorClock>,
    /// Total phase-1 conflict probes performed (one per conflicting class
    /// per touched point) — the quantity §5.4 bounds by `|Cₒ(pt)|`.
    probes: u64,
}

impl ObjState {
    /// Creates empty state (no active access points).
    pub fn new() -> ObjState {
        ObjState::default()
    }

    /// Number of active access points (the `|active(o)|` the direct
    /// approach's complexity depends on, §5.4).
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// Total phase-1 conflict probes performed so far. Per Theorem 6.6
    /// this grows by at most a spec-dependent constant per action — the
    /// Fig. 4 claim ("a single conflict check and not three") made
    /// countable.
    pub fn num_probes(&self) -> u64 {
        self.probes
    }

    /// Processes one action event with vector clock `vc(e) = clock`:
    /// phase 1 checks every touched point against its conflicting active
    /// points; phase 2 folds `clock` into the touched points' clocks.
    ///
    /// Returns one [`RaceHit`] per conflicting access-point pair (what the
    /// algorithm reports at line 6).
    pub fn on_action(
        &mut self,
        spec: &CompiledSpec,
        action: &Action,
        clock: &VectorClock,
    ) -> Vec<RaceHit> {
        let touched = spec.touched(action);
        let mut races = Vec::new();

        // Phase 1: check for commutativity races.
        for pt in &touched {
            for &other_class in spec.conflicting(pt.class) {
                self.probes += 1;
                let key = AccessPoint {
                    class: other_class,
                    value: pt.value.clone(),
                };
                if let Some(pt_vc) = self.active.get(&key) {
                    if !pt_vc.le(clock) {
                        races.push(RaceHit {
                            touched: pt.class,
                            conflicting: other_class,
                        });
                    }
                }
            }
        }

        // Phase 2: update auxiliary state.
        for pt in touched {
            match self.active.entry(pt) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().join_in_place(clock);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(clock.clone());
                }
            }
        }
        races
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use crace_model::{MethodId, ObjId, Value};
    use crace_spec::{builtin, Spec};

    fn setup() -> (Spec, CompiledSpec) {
        let spec = builtin::dictionary();
        let compiled = translate(&spec).unwrap();
        (spec, compiled)
    }

    fn put(spec: &Spec, k: i64, v: Value, p: Value) -> Action {
        Action::new(
            ObjId(0),
            spec.method_id("put").unwrap(),
            vec![Value::Int(k), v],
            p,
        )
    }

    fn vc(c: &[u64]) -> VectorClock {
        VectorClock::from_components(c.iter().copied())
    }

    #[test]
    fn ordered_actions_do_not_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let a = put(&spec, 1, Value::Int(1), Value::Nil);
        let b = put(&spec, 1, Value::Int(2), Value::Int(1));
        assert!(st.on_action(&c, &a, &vc(&[1, 0])).is_empty());
        // b's clock dominates a's: ordered, no race.
        assert!(st.on_action(&c, &b, &vc(&[2, 1])).is_empty());
    }

    #[test]
    fn concurrent_same_key_writes_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let a = put(&spec, 1, Value::Int(1), Value::Nil);
        let b = put(&spec, 1, Value::Int(2), Value::Int(1));
        assert!(st.on_action(&c, &a, &vc(&[1, 0])).is_empty());
        let races = st.on_action(&c, &b, &vc(&[0, 1]));
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].touched, races[0].conflicting); // w:k vs w:k
    }

    #[test]
    fn concurrent_different_key_writes_do_not_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let a = put(&spec, 1, Value::Int(1), Value::Int(9));
        let b = put(&spec, 2, Value::Int(2), Value::Int(9));
        assert!(st.on_action(&c, &a, &vc(&[1, 0])).is_empty());
        assert!(st.on_action(&c, &b, &vc(&[0, 1])).is_empty());
    }

    #[test]
    fn resize_races_with_concurrent_size() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // Fresh insert resizes.
        let grow = put(&spec, 1, Value::Int(1), Value::Nil);
        let size = Action::new(ObjId(0), spec.method_id("size").unwrap(), vec![], Value::Int(1));
        assert!(st.on_action(&c, &grow, &vc(&[1, 0])).is_empty());
        assert_eq!(st.on_action(&c, &size, &vc(&[0, 1])).len(), 1);
    }

    #[test]
    fn non_resizing_put_does_not_race_with_size() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // Overwrite non-nil → non-nil: no resize (the a2/a3 observation in §2).
        let over = put(&spec, 1, Value::Int(2), Value::Int(1));
        let size = Action::new(ObjId(0), spec.method_id("size").unwrap(), vec![], Value::Int(1));
        assert!(st.on_action(&c, &over, &vc(&[1, 0])).is_empty());
        assert!(st.on_action(&c, &size, &vc(&[0, 1])).is_empty());
    }

    #[test]
    fn concurrent_reads_never_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let get = |k: i64| Action::new(
            ObjId(0),
            spec.method_id("get").unwrap(),
            vec![Value::Int(k)],
            Value::Int(7),
        );
        assert!(st.on_action(&c, &get(1), &vc(&[1, 0])).is_empty());
        assert!(st.on_action(&c, &get(1), &vc(&[0, 1])).is_empty());
        // A read-like put is also a read.
        let noop = put(&spec, 1, Value::Int(7), Value::Int(7));
        assert!(st.on_action(&c, &noop, &vc(&[0, 0, 1])).is_empty());
    }

    #[test]
    fn read_write_on_same_key_races() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let get = Action::new(
            ObjId(0),
            spec.method_id("get").unwrap(),
            vec![Value::Int(1)],
            Value::Nil,
        );
        let write = put(&spec, 1, Value::Int(5), Value::Nil);
        assert!(st.on_action(&c, &get, &vc(&[1, 0])).is_empty());
        let races = st.on_action(&c, &write, &vc(&[0, 1]));
        // put touches w:1 (conflicts with r:1) and resize (no active size).
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn phase2_joins_clocks_of_repeated_touches() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        // τ0 writes, τ1 writes unordered → race; afterwards the point's
        // clock is the join ⟨1,1⟩, so a later τ0 action with clock ⟨2,1⟩ is
        // ordered after BOTH writes and must not race (the Fig. 3 a3 case).
        st.on_action(&c, &w1, &vc(&[1, 0]));
        assert_eq!(st.on_action(&c, &w2, &vc(&[0, 1])).len(), 1);
        let w3 = put(&spec, 1, Value::Int(3), Value::Int(2));
        assert!(st.on_action(&c, &w3, &vc(&[2, 1])).is_empty());
        // But a τ0 action that saw only its own history still races.
        let mut st2 = ObjState::new();
        st2.on_action(&c, &w1, &vc(&[1, 0]));
        st2.on_action(&c, &w2, &vc(&[0, 1]));
        assert_eq!(st2.on_action(&c, &w3, &vc(&[2, 0])).len(), 1);
    }

    #[test]
    fn one_action_can_race_with_multiple_points() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // Two concurrent fresh inserts on different keys, then a size()
        // concurrent with both: size races once per active resize-conflict…
        st.on_action(&c, &put(&spec, 1, Value::Int(1), Value::Nil), &vc(&[1, 0, 0]));
        st.on_action(&c, &put(&spec, 2, Value::Int(1), Value::Nil), &vc(&[0, 1, 0]));
        let size = Action::new(ObjId(0), spec.method_id("size").unwrap(), vec![], Value::Int(2));
        // …but resize is ONE ds point (value-free), so one race is reported
        // against the joined clock.
        let races = st.on_action(&c, &size, &vc(&[0, 0, 1]));
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn num_active_grows_with_distinct_points_only() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        assert_eq!(st.num_active(), 0);
        st.on_action(&c, &put(&spec, 1, Value::Int(1), Value::Nil), &vc(&[1]));
        assert_eq!(st.num_active(), 2); // w:1 + resize
        st.on_action(&c, &put(&spec, 1, Value::Int(2), Value::Int(1)), &vc(&[2]));
        assert_eq!(st.num_active(), 2); // w:1 again
        st.on_action(&c, &put(&spec, 2, Value::Int(1), Value::Nil), &vc(&[3]));
        assert_eq!(st.num_active(), 3); // w:2 (+ resize already active)
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn mismatched_action_arity_panics() {
        let (_, c) = setup();
        let bogus = Action::new(ObjId(0), MethodId(0), vec![], Value::Nil);
        ObjState::new().on_action(&c, &bogus, &VectorClock::new());
    }
}
