//! The per-object core of Algorithm 1.

use crate::points::{AccessPoint, ClassId, CompiledSpec};
use crace_model::{Action, Provenance, ThreadId};
use crace_vclock::{AdaptiveClock, ClockStats, VectorClock};
use std::collections::{HashMap, VecDeque};

/// One commutativity race found by phase 1 of Algorithm 1: the touched
/// point's class and the conflicting active class.
///
/// Stays tiny on the default path (two indices and a null pointer): race
/// *recording* must remain cheap even when a workload races millions of
/// times, so human-readable details are only rendered for the sampled
/// records a report retains. The `provenance` box is populated only by
/// states built with [`ObjState::with_provenance`], and only when the
/// caller asks for detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceHit {
    /// The class of the point touched by the current action.
    pub touched: ClassId,
    /// The conflicting active class.
    pub conflicting: ClassId,
    /// Full race provenance, when collection is enabled and requested.
    pub provenance: Option<Box<Provenance>>,
}

/// Which representation an [`ObjState`] keeps for its access-point clocks.
///
/// The two modes are observationally equivalent — same races, same counts
/// — which `tests/adaptive_vs_full.rs` verifies on random traces; the full
///-vector mode exists exactly to serve as that differential reference (and
/// as the before/after baseline in the benchmarks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockMode {
    /// Epoch-compressed `pt.vc` with promotion on contention (the fast
    /// default).
    #[default]
    Adaptive,
    /// Always keep the full vector (the seed behaviour; reference mode).
    FullVector,
}

/// The per-object auxiliary state of Algorithm 1: the vector clock
/// `pt.vc` of every *active* access point.
///
/// The paper keeps a global `active : Obj → P(X)` plus a clock map
/// `ptvc : X → VC`; following the implementation note in §5.3 we attach the
/// state to the object it belongs to, so reclaiming an object reclaims its
/// shadow state (the `forget`-style optimization the tool implements).
///
/// Point clocks are stored as [`AdaptiveClock`]s: an access point touched
/// by one thread at a time (or handed off in order) costs O(1) per touch —
/// an epoch compare and overwrite — instead of an O(threads) vector join.
/// The first concurrent touch promotes that point to a full vector. See
/// [`AdaptiveClock`] for why this never changes a race verdict, and
/// [`ObjState::clock_stats`] for how often each path was taken.
///
/// # Examples
///
/// ```
/// use crace_core::{translate, ObjState};
/// use crace_model::{Action, ObjId, ThreadId, Value};
/// use crace_spec::builtin;
/// use crace_vclock::VectorClock;
///
/// let spec = builtin::dictionary();
/// let compiled = translate(&spec).unwrap();
/// let put = spec.method_id("put").unwrap();
/// let mut state = ObjState::new();
///
/// // Two concurrent same-key puts: the second one races.
/// let a = Action::new(ObjId(0), put, vec![Value::Int(5), Value::Int(1)], Value::Nil);
/// let b = Action::new(ObjId(0), put, vec![Value::Int(5), Value::Int(2)], Value::Int(1));
/// let c1 = VectorClock::from_components([1, 0]);
/// let c2 = VectorClock::from_components([0, 1]);
/// assert_eq!(state.on_action(&compiled, &a, ThreadId(0), &c1).len(), 0);
/// assert_eq!(state.on_action(&compiled, &b, ThreadId(1), &c2).len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ObjState {
    /// `pt.vc` for every active point, keyed by `(class, value)`.
    active: HashMap<AccessPoint, AdaptiveClock>,
    /// Total phase-1 conflict probes performed (one per conflicting class
    /// per touched point) — the quantity §5.4 bounds by `|Cₒ(pt)|`.
    probes: u64,
    /// How the phase-2 updates were served (epoch / promotion / vector).
    stats: ClockStats,
    mode: ClockMode,
    /// Provenance bookkeeping — absent (and costing one branch per action)
    /// unless the state was built with [`ObjState::with_provenance`].
    trace: Option<Box<TraceState>>,
}

/// What [`ObjState`] remembers for race explanations: the trailing window
/// of event descriptors on the object, and the descriptor of the last
/// action that touched each active access point.
#[derive(Clone, Debug, Default)]
struct TraceState {
    /// Window capacity; the window holds the most recent `cap` actions.
    cap: usize,
    /// The last `cap` action descriptors on this object, oldest first.
    window: VecDeque<String>,
    /// Descriptor of the most recent action that touched each point.
    last_touch: HashMap<AccessPoint, String>,
}

/// The human-readable name of a concrete access point: the class label
/// plus the slot value when the class carries one, e.g. `w:"a.com"`.
fn point_label(spec: &CompiledSpec, pt: &AccessPoint) -> String {
    match &pt.value {
        Some(v) => format!("{}:{v}", spec.label(pt.class)),
        None => spec.label(pt.class).to_string(),
    }
}

impl ObjState {
    /// Creates empty state (no active access points), with adaptive
    /// clocks.
    pub fn new() -> ObjState {
        ObjState::default()
    }

    /// Creates empty state with an explicit clock representation.
    pub fn with_mode(mode: ClockMode) -> ObjState {
        ObjState {
            mode,
            ..ObjState::default()
        }
    }

    /// Creates empty state that additionally collects race provenance: a
    /// trailing window of the last `window` actions on the object, plus
    /// the last action that touched each active access point. A `window`
    /// of 0 keeps the point/clock provenance but no event window.
    pub fn with_provenance(mode: ClockMode, window: usize) -> ObjState {
        ObjState {
            mode,
            trace: Some(Box::new(TraceState {
                cap: window,
                ..TraceState::default()
            })),
            ..ObjState::default()
        }
    }

    /// Number of active access points (the `|active(o)|` the direct
    /// approach's complexity depends on, §5.4).
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// Total phase-1 conflict probes performed so far. Per Theorem 6.6
    /// this grows by at most a spec-dependent constant per action — the
    /// Fig. 4 claim ("a single conflict check and not three") made
    /// countable.
    pub fn num_probes(&self) -> u64 {
        self.probes
    }

    /// How this object's phase-2 clock updates were served — the epoch-hit
    /// rate of the adaptive representation. All counts land in
    /// `vector_updates` when the state runs in
    /// [`ClockMode::FullVector`].
    pub fn clock_stats(&self) -> ClockStats {
        self.stats
    }

    /// Epoch-GC sweep: retires every active access point whose clock is
    /// dominated by `watermark`, returning how many points were dropped.
    ///
    /// The watermark must be a lower bound of every clock a future action
    /// event can carry — in practice the pointwise meet of all *live*
    /// thread clocks (threads observed but neither joined nor abandoned),
    /// over a fork-structured stream (every thread except the root enters
    /// via a fork, so no fresh incomparable clock can appear later). Under
    /// that contract retirement is invisible:
    ///
    /// * phase 1 can never report a retired point again — a future clock
    ///   `D` dominates the watermark, so `pt.vc ⊑ watermark ⊑ D` means the
    ///   conflict probe `¬(pt.vc ⊑ D)` was already doomed to fail;
    /// * phase 2 re-materializes the point exactly — the fresh clock the
    ///   re-access inserts equals what the join/epoch-overwrite would have
    ///   produced, because the old clock was dominated by the new one.
    ///
    /// Provenance bookkeeping (event window, last-touch descriptors) is
    /// deliberately untouched, so explanations of later races are
    /// identical with GC on or off.
    pub fn retire_quiesced(&mut self, watermark: &VectorClock) -> usize {
        let before = self.active.len();
        self.active.retain(|_, vc| !vc.le(watermark));
        before - self.active.len()
    }

    /// Serializes this object's shadow state as checkpoint records:
    /// one `ostate` header (mode, probes, clock stats, provenance cap),
    /// one `pt` record per active access point (sorted for reproducible
    /// checkpoints), and — in provenance mode — `owin`/`otouch` records
    /// for the event window and last-touch map.
    pub fn ckpt_write(&self, w: &mut crace_vclock::CkptWriter) {
        use crate::checkpoint::{mode_word, point_word};
        use crace_vclock::ckpt::{esc, stats_word};
        let cap = match &self.trace {
            Some(t) => t.cap.to_string(),
            None => "-".to_string(),
        };
        w.rec(&format!(
            "ostate {} {} {} {}",
            mode_word(self.mode),
            self.probes,
            stats_word(&self.stats),
            cap
        ));
        let mut points: Vec<(String, &AdaptiveClock)> = self
            .active
            .iter()
            .map(|(pt, clock)| (point_word(pt), clock))
            .collect();
        points.sort_by(|a, b| a.0.cmp(&b.0));
        for (pt, clock) in points {
            w.rec_with(|out| {
                use std::fmt::Write;
                let _ = write!(out, "pt {pt} ");
                crace_vclock::ckpt::adaptive_append(out, clock);
            });
        }
        if let Some(trace) = &self.trace {
            for entry in &trace.window {
                w.rec(&format!("owin {}", esc(entry)));
            }
            let mut touches: Vec<(String, &String)> = trace
                .last_touch
                .iter()
                .map(|(pt, desc)| (point_word(pt), desc))
                .collect();
            touches.sort_by(|a, b| a.0.cmp(&b.0));
            for (pt, desc) in touches {
                w.rec(&format!("otouch {pt} {}", esc(desc)));
            }
        }
    }

    /// Reads back the state written by [`ObjState::ckpt_write`]; the
    /// reader must be positioned on the `ostate` record.
    ///
    /// # Errors
    ///
    /// A spanned [`crace_vclock::CkptError`] on any malformation.
    pub fn ckpt_read(
        r: &mut crace_vclock::CkptReader<'_>,
    ) -> Result<ObjState, crace_vclock::CkptError> {
        use crate::checkpoint::{mode_parse, point_parse};
        use crace_vclock::ckpt::{adaptive_parse, stats_parse, CkptError};
        let head = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint ends where `ostate` was expected"))?;
        if head.tag() != "ostate" {
            return Err(CkptError::at(
                head.line,
                format!("expected `ostate`, found `{}`", head.tag()),
            ));
        }
        let mode = mode_parse(head.word(1)?, head.line)?;
        let probes: u64 = head.num(2)?;
        let stats = stats_parse(head.word(3)?, head.line)?;
        let trace = match head.word(4)? {
            "-" => None,
            cap => {
                let cap: usize = cap.parse().map_err(|_| {
                    CkptError::at(head.line, format!("bad provenance window `{cap}`"))
                })?;
                Some(Box::new(TraceState {
                    cap,
                    ..TraceState::default()
                }))
            }
        };
        let mut state = ObjState {
            active: HashMap::new(),
            probes,
            stats,
            mode,
            trace,
        };
        while let Some(rec) = r.peek() {
            match rec.tag() {
                "pt" => {
                    let pt = point_parse(rec.word(1)?, rec.line)?;
                    let clock = adaptive_parse(rec.word(2)?, rec.line)?;
                    state.active.insert(pt, clock);
                }
                "owin" => {
                    let trace = state.trace.as_mut().ok_or_else(|| {
                        CkptError::at(rec.line, "`owin` record on a provenance-free object")
                    })?;
                    trace.window.push_back(rec.text(1)?);
                }
                "otouch" => {
                    let pt = point_parse(rec.word(1)?, rec.line)?;
                    let desc = rec.text(2)?;
                    let trace = state.trace.as_mut().ok_or_else(|| {
                        CkptError::at(rec.line, "`otouch` record on a provenance-free object")
                    })?;
                    trace.last_touch.insert(pt, desc);
                }
                _ => break,
            }
            r.next_rec();
        }
        Ok(state)
    }

    /// Processes one action event by thread `tid` with vector clock
    /// `vc(e) = clock` (which must be `T(tid)`, the acting thread's
    /// current clock): phase 1 checks every touched point against its
    /// conflicting active points; phase 2 folds `clock` into the touched
    /// points' clocks.
    ///
    /// Returns one [`RaceHit`] per conflicting access-point pair (what the
    /// algorithm reports at line 6).
    pub fn on_action(
        &mut self,
        spec: &CompiledSpec,
        action: &Action,
        tid: ThreadId,
        clock: &VectorClock,
    ) -> Vec<RaceHit> {
        self.on_action_detailed(spec, action, tid, clock, true)
    }

    /// [`ObjState::on_action`] with explicit control over provenance
    /// rendering: when `want_detail` is false the bookkeeping (event
    /// window, last-touch map) still advances but no [`Provenance`] is
    /// rendered for the returned hits — the path detectors take once their
    /// report's sample buffer is full.
    pub fn on_action_detailed(
        &mut self,
        spec: &CompiledSpec,
        action: &Action,
        tid: ThreadId,
        clock: &VectorClock,
        want_detail: bool,
    ) -> Vec<RaceHit> {
        let touched = spec.touched(action);
        let mut races = Vec::new();
        // Rendered once per action, only when provenance is on.
        let desc = self.trace.as_ref().map(|_| format!("{tid}: {action}"));

        // Phase 1: check for commutativity races.
        for pt in &touched {
            for &other_class in spec.conflicting(pt.class) {
                self.probes += 1;
                let key = AccessPoint {
                    class: other_class,
                    value: pt.value.clone(),
                };
                if let Some(pt_vc) = self.active.get(&key) {
                    if !pt_vc.le(clock) {
                        let provenance = match (&self.trace, &desc, want_detail) {
                            (Some(trace), Some(desc), true) => Some(Box::new(Provenance {
                                current: desc.clone(),
                                prior: trace.last_touch.get(&key).cloned(),
                                touched: point_label(spec, pt),
                                conflicting: point_label(spec, &key),
                                thread_clock: clock.to_string(),
                                point_clock: pt_vc.to_string(),
                                recent: trace.window.iter().cloned().collect(),
                            })),
                            _ => None,
                        };
                        races.push(RaceHit {
                            touched: pt.class,
                            conflicting: other_class,
                            provenance,
                        });
                    }
                }
            }
        }

        // Provenance bookkeeping, before phase 2 consumes the points.
        if let Some(trace) = &mut self.trace {
            let desc = desc.as_deref().unwrap_or_default();
            for pt in &touched {
                trace.last_touch.insert(pt.clone(), desc.to_string());
            }
            if trace.cap > 0 {
                if trace.window.len() == trace.cap {
                    trace.window.pop_front();
                }
                trace.window.push_back(desc.to_string());
            }
        }

        // Phase 2: update auxiliary state.
        for pt in touched {
            match self.active.entry(pt) {
                std::collections::hash_map::Entry::Occupied(mut e) => match self.mode {
                    ClockMode::Adaptive => {
                        self.stats.record(e.get_mut().observe(tid, clock));
                    }
                    ClockMode::FullVector => {
                        let AdaptiveClock::Vector(v) = e.get_mut() else {
                            unreachable!("FullVector state never stores epochs");
                        };
                        v.join_in_place(clock);
                        self.stats.record(crace_vclock::Observation::VectorJoin);
                    }
                },
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(match self.mode {
                        ClockMode::Adaptive => AdaptiveClock::first(tid, clock),
                        ClockMode::FullVector => AdaptiveClock::Vector(clock.clone()),
                    });
                }
            }
        }
        races
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use crace_model::{MethodId, ObjId, Value};
    use crace_spec::{builtin, Spec};

    fn setup() -> (Spec, CompiledSpec) {
        let spec = builtin::dictionary();
        let compiled = translate(&spec).unwrap();
        (spec, compiled)
    }

    fn put(spec: &Spec, k: i64, v: Value, p: Value) -> Action {
        Action::new(
            ObjId(0),
            spec.method_id("put").unwrap(),
            vec![Value::Int(k), v],
            p,
        )
    }

    fn vc(c: &[u64]) -> VectorClock {
        VectorClock::from_components(c.iter().copied())
    }

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn ordered_actions_do_not_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let a = put(&spec, 1, Value::Int(1), Value::Nil);
        let b = put(&spec, 1, Value::Int(2), Value::Int(1));
        assert!(st.on_action(&c, &a, T0, &vc(&[1, 0])).is_empty());
        // b's clock dominates a's: ordered, no race.
        assert!(st.on_action(&c, &b, T1, &vc(&[2, 1])).is_empty());
    }

    #[test]
    fn concurrent_same_key_writes_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let a = put(&spec, 1, Value::Int(1), Value::Nil);
        let b = put(&spec, 1, Value::Int(2), Value::Int(1));
        assert!(st.on_action(&c, &a, T0, &vc(&[1, 0])).is_empty());
        let races = st.on_action(&c, &b, T1, &vc(&[0, 1]));
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].touched, races[0].conflicting); // w:k vs w:k
    }

    #[test]
    fn concurrent_different_key_writes_do_not_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let a = put(&spec, 1, Value::Int(1), Value::Int(9));
        let b = put(&spec, 2, Value::Int(2), Value::Int(9));
        assert!(st.on_action(&c, &a, T0, &vc(&[1, 0])).is_empty());
        assert!(st.on_action(&c, &b, T1, &vc(&[0, 1])).is_empty());
    }

    #[test]
    fn resize_races_with_concurrent_size() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // Fresh insert resizes.
        let grow = put(&spec, 1, Value::Int(1), Value::Nil);
        let size = Action::new(
            ObjId(0),
            spec.method_id("size").unwrap(),
            vec![],
            Value::Int(1),
        );
        assert!(st.on_action(&c, &grow, T0, &vc(&[1, 0])).is_empty());
        assert_eq!(st.on_action(&c, &size, T1, &vc(&[0, 1])).len(), 1);
    }

    #[test]
    fn non_resizing_put_does_not_race_with_size() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // Overwrite non-nil → non-nil: no resize (the a2/a3 observation in §2).
        let over = put(&spec, 1, Value::Int(2), Value::Int(1));
        let size = Action::new(
            ObjId(0),
            spec.method_id("size").unwrap(),
            vec![],
            Value::Int(1),
        );
        assert!(st.on_action(&c, &over, T0, &vc(&[1, 0])).is_empty());
        assert!(st.on_action(&c, &size, T1, &vc(&[0, 1])).is_empty());
    }

    #[test]
    fn concurrent_reads_never_race() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let get = |k: i64| {
            Action::new(
                ObjId(0),
                spec.method_id("get").unwrap(),
                vec![Value::Int(k)],
                Value::Int(7),
            )
        };
        assert!(st.on_action(&c, &get(1), T0, &vc(&[1, 0])).is_empty());
        assert!(st.on_action(&c, &get(1), T1, &vc(&[0, 1])).is_empty());
        // A read-like put is also a read.
        let noop = put(&spec, 1, Value::Int(7), Value::Int(7));
        assert!(st.on_action(&c, &noop, T2, &vc(&[0, 0, 1])).is_empty());
    }

    #[test]
    fn read_write_on_same_key_races() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let get = Action::new(
            ObjId(0),
            spec.method_id("get").unwrap(),
            vec![Value::Int(1)],
            Value::Nil,
        );
        let write = put(&spec, 1, Value::Int(5), Value::Nil);
        assert!(st.on_action(&c, &get, T0, &vc(&[1, 0])).is_empty());
        let races = st.on_action(&c, &write, T1, &vc(&[0, 1]));
        // put touches w:1 (conflicts with r:1) and resize (no active size).
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn phase2_joins_clocks_of_repeated_touches() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        // τ0 writes, τ1 writes unordered → race; afterwards the point's
        // clock is the join ⟨1,1⟩, so a later τ0 action with clock ⟨2,1⟩ is
        // ordered after BOTH writes and must not race (the Fig. 3 a3 case).
        st.on_action(&c, &w1, T0, &vc(&[1, 0]));
        assert_eq!(st.on_action(&c, &w2, T1, &vc(&[0, 1])).len(), 1);
        let w3 = put(&spec, 1, Value::Int(3), Value::Int(2));
        assert!(st.on_action(&c, &w3, T0, &vc(&[2, 1])).is_empty());
        // But a τ0 action that saw only its own history still races.
        let mut st2 = ObjState::new();
        st2.on_action(&c, &w1, T0, &vc(&[1, 0]));
        st2.on_action(&c, &w2, T1, &vc(&[0, 1]));
        assert_eq!(st2.on_action(&c, &w3, T0, &vc(&[2, 0])).len(), 1);
    }

    #[test]
    fn one_action_can_race_with_multiple_points() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // Two concurrent fresh inserts on different keys, then a size()
        // concurrent with both: size races once per active resize-conflict…
        st.on_action(
            &c,
            &put(&spec, 1, Value::Int(1), Value::Nil),
            T0,
            &vc(&[1, 0, 0]),
        );
        st.on_action(
            &c,
            &put(&spec, 2, Value::Int(1), Value::Nil),
            T1,
            &vc(&[0, 1, 0]),
        );
        let size = Action::new(
            ObjId(0),
            spec.method_id("size").unwrap(),
            vec![],
            Value::Int(2),
        );
        // …but resize is ONE ds point (value-free), so one race is reported
        // against the joined clock.
        let races = st.on_action(&c, &size, T2, &vc(&[0, 0, 1]));
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn num_active_grows_with_distinct_points_only() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        assert_eq!(st.num_active(), 0);
        st.on_action(&c, &put(&spec, 1, Value::Int(1), Value::Nil), T0, &vc(&[1]));
        assert_eq!(st.num_active(), 2); // w:1 + resize
        st.on_action(
            &c,
            &put(&spec, 1, Value::Int(2), Value::Int(1)),
            T0,
            &vc(&[2]),
        );
        assert_eq!(st.num_active(), 2); // w:1 again
        st.on_action(&c, &put(&spec, 2, Value::Int(1), Value::Nil), T0, &vc(&[3]));
        assert_eq!(st.num_active(), 3); // w:2 (+ resize already active)
    }

    #[test]
    fn single_thread_workload_stays_all_epochs() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        for i in 1..=10u64 {
            let prev = if i == 1 {
                Value::Nil
            } else {
                Value::Int(i as i64 - 1)
            };
            st.on_action(
                &c,
                &put(&spec, 1, Value::Int(i as i64), prev),
                T0,
                &vc(&[i]),
            );
        }
        let stats = st.clock_stats();
        assert_eq!(stats.promotions, 0);
        assert_eq!(stats.vector_updates, 0);
        assert!(stats.epoch_updates > 0);
        assert_eq!(stats.epoch_hit_rate(), 1.0);
    }

    #[test]
    fn contention_promotes_and_is_counted() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        st.on_action(&c, &w1, T0, &vc(&[1, 0]));
        st.on_action(&c, &w2, T1, &vc(&[0, 1]));
        let stats = st.clock_stats();
        assert_eq!(stats.promotions, 1); // the shared w:1 point
                                         // A third, ordered access joins into the now-vector clock.
        let w3 = put(&spec, 1, Value::Int(3), Value::Int(2));
        st.on_action(&c, &w3, T0, &vc(&[2, 1]));
        assert_eq!(st.clock_stats().vector_updates, 1);
    }

    #[test]
    fn full_vector_mode_reports_identically() {
        let (spec, c) = setup();
        let mut adaptive = ObjState::new();
        let mut full = ObjState::with_mode(ClockMode::FullVector);
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        let w3 = put(&spec, 1, Value::Int(3), Value::Int(2));
        for (action, tid, clock) in [
            (&w1, T0, vc(&[1, 0])),
            (&w2, T1, vc(&[0, 1])),
            (&w3, T0, vc(&[2, 0])),
        ] {
            assert_eq!(
                adaptive.on_action(&c, action, tid, &clock),
                full.on_action(&c, action, tid, &clock)
            );
        }
        // The reference mode never uses the compressed path.
        assert_eq!(full.clock_stats().epoch_updates, 0);
        assert_eq!(full.clock_stats().promotions, 0);
    }

    #[test]
    fn provenance_carries_points_clocks_and_window() {
        let (spec, c) = setup();
        let mut st = ObjState::with_provenance(ClockMode::Adaptive, 4);
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        assert!(st.on_action(&c, &w1, T0, &vc(&[1, 0])).is_empty());
        let races = st.on_action(&c, &w2, T1, &vc(&[0, 1]));
        assert_eq!(races.len(), 1);
        let p = races[0].provenance.as_ref().expect("provenance collected");
        assert!(p.current.contains("τ1"), "{}", p.current);
        assert_eq!(p.prior.as_deref(), Some(format!("τ0: {w1}").as_str()));
        assert_eq!(p.touched, "put.w0:1");
        assert_eq!(p.conflicting, "put.w0:1");
        assert_eq!(p.thread_clock, "⟨0, 1⟩");
        // The conflicting w:1 point was only touched by τ0 → still an epoch.
        assert_eq!(p.point_clock, "1@τ0");
        assert_eq!(p.recent, vec![format!("τ0: {w1}")]);
    }

    #[test]
    fn provenance_window_is_bounded_and_oldest_first() {
        let (spec, c) = setup();
        let mut st = ObjState::with_provenance(ClockMode::Adaptive, 2);
        for i in 1..=4i64 {
            st.on_action(
                &c,
                &put(&spec, i, Value::Int(i), Value::Nil),
                T0,
                &vc(&[i as u64]),
            );
        }
        let racy = put(&spec, 4, Value::Int(9), Value::Int(4));
        let races = st.on_action(&c, &racy, T1, &vc(&[0, 1]));
        let p = races[0].provenance.as_ref().unwrap();
        assert_eq!(p.recent.len(), 2);
        assert!(p.recent[0].contains("(3, 3)"), "{:?}", p.recent);
        assert!(p.recent[1].contains("(4, 4)"), "{:?}", p.recent);
    }

    #[test]
    fn want_detail_false_skips_rendering_but_keeps_bookkeeping() {
        let (spec, c) = setup();
        let mut st = ObjState::with_provenance(ClockMode::Adaptive, 4);
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        st.on_action_detailed(&c, &w1, T0, &vc(&[1, 0]), false);
        let races = st.on_action_detailed(&c, &w2, T1, &vc(&[0, 1]), false);
        assert_eq!(races.len(), 1);
        assert!(races[0].provenance.is_none());
        // The window kept advancing: a later detailed race still sees w1/w2.
        let w3 = put(&spec, 1, Value::Int(3), Value::Int(2));
        let races = st.on_action_detailed(&c, &w3, T2, &vc(&[0, 0, 1]), true);
        let p = races[0].provenance.as_ref().unwrap();
        assert_eq!(p.recent.len(), 2);
    }

    #[test]
    fn default_state_collects_no_provenance() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        st.on_action(&c, &w1, T0, &vc(&[1, 0]));
        let races = st.on_action(&c, &w2, T1, &vc(&[0, 1]));
        assert_eq!(races.len(), 1);
        assert!(races[0].provenance.is_none());
    }

    #[test]
    fn retire_quiesced_drops_only_dominated_points() {
        let (spec, c) = setup();
        let mut st = ObjState::new();
        // τ0's point is below the watermark; τ1's concurrent point is not.
        st.on_action(
            &c,
            &put(&spec, 1, Value::Int(1), Value::Int(9)),
            T0,
            &vc(&[1, 0]),
        );
        st.on_action(
            &c,
            &put(&spec, 2, Value::Int(1), Value::Int(9)),
            T1,
            &vc(&[0, 5]),
        );
        assert_eq!(st.num_active(), 2);
        let retired = st.retire_quiesced(&vc(&[2, 1]));
        assert_eq!(retired, 1); // w:1 at 1@τ0 ⊑ ⟨2,1⟩; w:2 at 5@τ1 is not
        assert_eq!(st.num_active(), 1);
    }

    /// The no-false-negatives property behind the GC: a retired point that
    /// is touched again is re-materialized exactly, so a later concurrent
    /// access still races just as it would have with GC off.
    #[test]
    fn retired_point_rematerializes_without_losing_races() {
        let (spec, c) = setup();
        let mut gc = ObjState::new();
        let mut plain = ObjState::new();
        let w1 = put(&spec, 1, Value::Int(1), Value::Int(9));
        for st in [&mut gc, &mut plain] {
            assert!(st.on_action(&c, &w1, T0, &vc(&[1, 0])).is_empty());
        }
        // Watermark ⟨2,1⟩ dominates the point: GC retires it.
        assert_eq!(gc.retire_quiesced(&vc(&[2, 1])), 1);
        assert_eq!(plain.num_active(), 1);
        // τ1 (clock above the watermark) re-touches the key …
        let w2 = put(&spec, 1, Value::Int(2), Value::Int(1));
        assert_eq!(
            gc.on_action(&c, &w2, T1, &vc(&[2, 1])),
            plain.on_action(&c, &w2, T1, &vc(&[2, 1]))
        );
        // … and a later access concurrent with τ1 races identically.
        let w3 = put(&spec, 1, Value::Int(3), Value::Int(2));
        let gc_races = gc.on_action(&c, &w3, T2, &vc(&[2, 0, 1]));
        let plain_races = plain.on_action(&c, &w3, T2, &vc(&[2, 0, 1]));
        assert_eq!(gc_races.len(), 1);
        assert_eq!(gc_races, plain_races);
    }

    #[test]
    fn retire_quiesced_handles_both_representations() {
        let (spec, c) = setup();
        for mode in [ClockMode::Adaptive, ClockMode::FullVector] {
            let mut st = ObjState::with_mode(mode);
            // Overwrite put (prev non-nil): touches only the w:1 point.
            st.on_action(
                &c,
                &put(&spec, 1, Value::Int(1), Value::Int(9)),
                T0,
                &vc(&[3, 0]),
            );
            assert_eq!(st.num_active(), 1);
            // Watermark below the point: nothing retired.
            assert_eq!(st.retire_quiesced(&vc(&[2, 0])), 0);
            // Watermark at/above the point: retired, in either representation.
            assert_eq!(st.retire_quiesced(&vc(&[3, 7])), 1, "{mode:?}");
            assert_eq!(st.num_active(), 0, "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn mismatched_action_arity_panics() {
        let (_, c) = setup();
        let bogus = Action::new(ObjId(0), MethodId(0), vec![], Value::Nil);
        ObjState::new().on_action(&c, &bogus, T0, &VectorClock::new());
    }
}
