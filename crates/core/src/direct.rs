//! The direct detector (§5.1): checking the logical specification pairwise
//! against every previously recorded action.
//!
//! This is the baseline the access-point representation improves on. It
//! records each action independently and, per encountered action, performs
//! `Θ(|A|)` commutativity checks (one against every previous action on the
//! same object), evaluating the specification formula directly. It exists
//! (a) to demonstrate the asymptotic gap measured in the
//! `direct_vs_rd2` benchmark and (b) as a second, independent
//! implementation of commutativity race detection to cross-check RD2
//! against (they must report races on exactly the same traces, per
//! Theorem 5.1 both are precise).

use crace_model::{Action, Analysis, LockId, ObjId, RaceKind, RaceRecord, RaceReport, ThreadId};
use crace_spec::Spec;
use crace_vclock::{SyncClocks, VectorClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Offline core of the direct detector: per-object action log plus
/// pairwise formula checks.
///
/// # Examples
///
/// ```
/// use crace_core::DirectDetector;
/// use crace_model::{Action, ObjId, Value};
/// use crace_spec::builtin;
/// use crace_vclock::VectorClock;
/// use std::sync::Arc;
///
/// let spec = Arc::new(builtin::dictionary());
/// let put = spec.method_id("put").unwrap();
/// let mut d = DirectDetector::new(spec);
/// let a = Action::new(ObjId(0), put, vec![Value::Int(1), Value::Int(1)], Value::Nil);
/// let b = Action::new(ObjId(0), put, vec![Value::Int(1), Value::Int(2)], Value::Int(1));
/// assert_eq!(d.on_action(&a, &VectorClock::from_components([1, 0])), 0);
/// assert_eq!(d.on_action(&b, &VectorClock::from_components([0, 1])), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DirectDetector {
    spec: Arc<Spec>,
    /// Every recorded action with its clock — the `Θ(|A|)` working set.
    log: Vec<(Action, VectorClock)>,
}

impl DirectDetector {
    /// Creates a direct detector for one object's specification.
    pub fn new(spec: Arc<Spec>) -> DirectDetector {
        DirectDetector {
            spec,
            log: Vec::new(),
        }
    }

    /// Records `action` with clock `clock`, returning the number of
    /// previous actions it races with (unordered and non-commuting).
    pub fn on_action(&mut self, action: &Action, clock: &VectorClock) -> usize {
        let mut races = 0;
        for (prev, prev_clock) in &self.log {
            if !prev_clock.le(clock) && !self.spec.commute(prev, action) {
                races += 1;
            }
        }
        self.log.push((action.clone(), clock.clone()));
        races
    }

    /// Number of recorded actions.
    pub fn num_recorded(&self) -> usize {
        self.log.len()
    }
}

/// The direct detector as an [`Analysis`] over event streams, for
/// replaying the same traces RD2 and FastTrack consume.
pub struct Direct {
    inner: Mutex<DirectInner>,
}

struct DirectInner {
    sync: SyncClocks,
    registry: HashMap<ObjId, Arc<Spec>>,
    objects: HashMap<ObjId, DirectDetector>,
    report: RaceReport,
}

impl Direct {
    /// Creates a detector with no registered objects.
    pub fn new() -> Direct {
        Direct {
            inner: Mutex::new(DirectInner {
                sync: SyncClocks::new(),
                registry: HashMap::new(),
                objects: HashMap::new(),
                report: RaceReport::new(),
            }),
        }
    }

    /// Registers `obj` to be checked against the (uncompiled) logical
    /// specification `spec`. Unlike RD2, the direct detector accepts
    /// specifications outside ECL.
    pub fn register(&self, obj: ObjId, spec: Arc<Spec>) {
        let mut inner = self.inner.lock();
        inner.registry.insert(obj, spec);
        inner.objects.remove(&obj);
    }
}

impl Default for Direct {
    fn default() -> Direct {
        Direct::new()
    }
}

impl Analysis for Direct {
    fn name(&self) -> &str {
        "direct"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.inner.lock().sync.fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.inner.lock().sync.join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.inner.lock().sync.acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.inner.lock().sync.release(tid, lock);
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        let inner = &mut *self.inner.lock();
        let Some(spec) = inner.registry.get(&action.obj()) else {
            return;
        };
        let clock = inner.sync.clock(tid).clone();
        let detector = inner
            .objects
            .entry(action.obj())
            .or_insert_with(|| DirectDetector::new(Arc::clone(spec)));
        let races = detector.on_action(action, &clock);
        for _ in 0..races {
            inner.report.record(RaceRecord {
                kind: RaceKind::Commutativity { obj: action.obj() },
                tid,
                action: Some(action.clone()),
                detail: String::from("direct pairwise check"),
                provenance: None,
            });
        }
    }

    fn report(&self) -> RaceReport {
        self.inner.lock().report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_model::{replay, Event, Trace, Value};
    use crace_spec::builtin;

    #[test]
    fn direct_finds_the_running_example_race() {
        let spec = Arc::new(builtin::dictionary());
        let put = spec.method_id("put").unwrap();
        let direct = Direct::new();
        direct.register(ObjId(1), Arc::clone(&spec));
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(5), Value::Int(1)],
                Value::Nil,
            ),
        });
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(5), Value::Int(2)],
                Value::Int(1),
            ),
        });
        let report = replay(&trace, &direct);
        assert_eq!(report.total(), 1);
    }

    #[test]
    fn direct_counts_one_race_per_conflicting_pair() {
        // Three concurrent resizing puts on DISTINCT keys plus a size():
        // RD2's resize point reports once (the clocks join), while the
        // direct detector reports one race per non-commuting pair — it
        // enumerates pairs by construction. Both are "a race exists"
        // (Theorem 5.1 is about existence), but the counts differ, which is
        // also visible in Table 2's total-vs-distinct gap.
        let spec = Arc::new(builtin::dictionary());
        let put = spec.method_id("put").unwrap();
        let size = spec.method_id("size").unwrap();
        let direct = Direct::new();
        direct.register(ObjId(1), Arc::clone(&spec));
        let mut trace = Trace::new();
        for t in 1..=3u32 {
            trace.push(Event::Fork {
                parent: ThreadId(0),
                child: ThreadId(t),
            });
            trace.push(Event::Action {
                tid: ThreadId(t),
                action: Action::new(
                    ObjId(1),
                    put,
                    vec![Value::Int(t as i64), Value::Int(1)],
                    Value::Nil,
                ),
            });
        }
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(ObjId(1), size, vec![], Value::Int(3)),
        });
        let report = replay(&trace, &direct);
        assert_eq!(report.total(), 3); // size vs each of the three puts
    }

    #[test]
    fn direct_respects_happens_before() {
        let spec = Arc::new(builtin::dictionary());
        let put = spec.method_id("put").unwrap();
        let direct = Direct::new();
        direct.register(ObjId(1), Arc::clone(&spec));
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(5), Value::Int(1)],
                Value::Nil,
            ),
        });
        trace.push(Event::Join {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(
                ObjId(1),
                put,
                vec![Value::Int(5), Value::Int(2)],
                Value::Int(1),
            ),
        });
        assert!(replay(&trace, &direct).is_empty());
    }

    #[test]
    fn direct_accepts_non_ecl_specs() {
        // A spec RD2's translation rejects still works directly.
        let spec = Arc::new(
            crace_spec::parse("spec s { method m(a); commute m(x1), m(x2) when !(x1 != x2); }")
                .unwrap(),
        );
        let m = spec.method_id("m").unwrap();
        assert!(crate::translate(&spec).is_err());
        let direct = Direct::new();
        direct.register(ObjId(1), Arc::clone(&spec));
        let mut trace = Trace::new();
        trace.push(Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        // Same argument: ¬(x1 ≠ x2) holds → commute → no race.
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: Action::new(ObjId(1), m, vec![Value::Int(7)], Value::Nil),
        });
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: Action::new(ObjId(1), m, vec![Value::Int(7)], Value::Nil),
        });
        assert!(replay(&trace, &direct).is_empty());
        // Different argument: races with the concurrent τ0 action (but not
        // with τ1's own earlier action, which happens before it).
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: Action::new(ObjId(1), m, vec![Value::Int(8)], Value::Nil),
        });
        let direct2 = Direct::new();
        direct2.register(ObjId(1), spec);
        assert_eq!(replay(&trace, &direct2).total(), 1);
    }

    #[test]
    fn working_set_grows_linearly() {
        let spec = Arc::new(builtin::dictionary());
        let put = spec.method_id("put").unwrap();
        let mut d = DirectDetector::new(Arc::clone(&spec));
        for i in 0..100i64 {
            let a = Action::new(
                ObjId(0),
                put,
                vec![Value::Int(i), Value::Int(1)],
                Value::Nil,
            );
            d.on_action(&a, &VectorClock::from_components([i as u64 + 1]));
        }
        assert_eq!(d.num_recorded(), 100);
    }
}
