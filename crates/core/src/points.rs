//! Compiled access-point representations (§4.2).

use crace_model::{Action, Value};
use crace_spec::{NormAtom, Spec};
use std::fmt;

/// Index of an access-point *class* within a [`CompiledSpec`].
///
/// A class is what remains of the translation's symbolic access points
/// (`o.m:β:ds` and `o.m:β:i:wᵢ`, §6.2) after the Appendix A.3 optimizations
/// merge congruent points and drop conflict-free ones. A concrete access
/// point is a class plus, for value-carrying classes, the concrete slot
/// value — see [`AccessPoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The class index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Whether a class's concrete points carry a slot value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// A `ds` point: witnesses only that the method was invoked (with a
    /// particular β). Conflicts unconditionally with its conflicting
    /// classes. Example: `o:resize`.
    Ds,
    /// A slot point: carries the concrete argument/return value `wᵢ`, and
    /// conflicts with a point of a conflicting class only when the values
    /// are equal (rule 2 of §6.2). Example: `o:w:k`.
    Slot,
}

/// A concrete access point touched by an action: a class plus the slot
/// value for value-carrying classes.
///
/// # Examples
///
/// ```
/// use crace_core::translate;
/// use crace_model::{Action, ObjId, Value};
/// use crace_spec::builtin;
///
/// let spec = builtin::dictionary();
/// let compiled = translate(&spec).unwrap();
/// let put = spec.method_id("put").unwrap();
/// // A fresh insert touches two points: o:w:k and o:resize (Fig. 7b).
/// let action = Action::new(ObjId(0), put, vec![Value::Int(5), Value::Int(1)], Value::Nil);
/// let points = compiled.touched(&action);
/// assert_eq!(points.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AccessPoint {
    /// The access-point class.
    pub class: ClassId,
    /// The concrete slot value, for [`PointKind::Slot`] classes.
    pub value: Option<Value>,
}

impl fmt::Display for AccessPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Some(v) => write!(f, "{}:{v}", self.class),
            None => write!(f, "{}", self.class),
        }
    }
}

/// How an action of a given method/β touches a class: either as a `ds`
/// point or by contributing the value of slot `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TouchTemplate {
    Ds(ClassId),
    Slot(ClassId, usize),
}

/// Per-method compiled tables.
#[derive(Clone, Debug)]
pub(crate) struct MethodTable {
    /// `B(Φ, m)`: the normalized LB atoms relevant to the method, in a
    /// fixed order; bit `k` of a β index is `atoms[k]`'s truth value.
    pub atoms: Vec<NormAtom>,
    /// `touch[β]`: the surviving access points of an action with that β.
    pub touch: Vec<Vec<TouchTemplate>>,
}

/// Statistics about a translation, before and after the Appendix A.3
/// optimizations. Used by tests and the translation benchmarks to check
/// Theorem 6.6 (bounded conflict degree) quantitatively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationStats {
    /// Symbolic points of the unoptimized §6.2 representation: a `ds`
    /// point and one point per slot for every `(method, β)`.
    pub raw_classes: usize,
    /// Classes after congruence merging and cleanup.
    pub classes: usize,
    /// The largest `|Cₒ(pt)|` over all classes — the per-point work bound
    /// of Algorithm 1 (Theorem 6.6 guarantees this is finite; §5.4 uses it
    /// as the per-action cost).
    pub max_conflict_degree: usize,
}

/// A commutativity specification compiled to its access-point
/// representation `⟨Xₒ, ηₒ, Cₒ⟩` (§4.2, Definition 4.4).
///
/// * `Xₒ` is the set of [`AccessPoint`]s: `(class, value)` pairs,
/// * `ηₒ` is [`CompiledSpec::touched`],
/// * `Cₒ` is [`CompiledSpec::conflicting`] lifted to values (two slot
///   points conflict only on equal values).
///
/// Produced by [`crate::translate`]; Definition 4.5 equivalence with the
/// source [`Spec`] is exercised exhaustively by this crate's tests.
#[derive(Clone, Debug)]
pub struct CompiledSpec {
    pub(crate) spec: Spec,
    pub(crate) methods: Vec<MethodTable>,
    /// `conflicts[c]`: the classes conflicting with class `c` (symmetric).
    pub(crate) conflicts: Vec<Vec<ClassId>>,
    pub(crate) kinds: Vec<PointKind>,
    pub(crate) labels: Vec<String>,
    pub(crate) stats: TranslationStats,
}

impl CompiledSpec {
    /// The source specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Number of access-point classes after optimization.
    pub fn num_classes(&self) -> usize {
        self.conflicts.len()
    }

    /// The classes conflicting with `class` (the finite `Cₒ(pt)` of §5.4).
    pub fn conflicting(&self, class: ClassId) -> &[ClassId] {
        &self.conflicts[class.index()]
    }

    /// The kind of a class.
    pub fn kind(&self, class: ClassId) -> PointKind {
        self.kinds[class.index()]
    }

    /// A human-readable label for a class, synthesized from the symbolic
    /// points merged into it (e.g. `put.w0|get.r0` for the dictionary's
    /// `o:w:k`-style class).
    pub fn label(&self, class: ClassId) -> &str {
        &self.labels[class.index()]
    }

    /// Translation statistics (pre/post-optimization sizes, max degree).
    pub fn stats(&self) -> TranslationStats {
        self.stats
    }

    /// Every `(class, slot)` combination an action of `method` can touch,
    /// over all possible β vectors; `slot` is `None` for `ds` points.
    ///
    /// Used by abstract-lock schemes, which must request locks *before*
    /// the invocation runs and therefore cannot know the actual β — the
    /// pessimism that distinguishes Kulkarni et al.'s setting from the
    /// detector's (§6, "Why ECL?").
    ///
    /// # Panics
    ///
    /// Panics if `method` is out of range for the specification.
    pub fn method_touch_universe(
        &self,
        method: crace_model::MethodId,
    ) -> Vec<(ClassId, Option<usize>)> {
        let table = &self.methods[method.index()];
        let mut set = std::collections::BTreeSet::new();
        for templates in &table.touch {
            for t in templates {
                match *t {
                    TouchTemplate::Ds(c) => {
                        set.insert((c, None));
                    }
                    TouchTemplate::Slot(c, i) => {
                        set.insert((c, Some(i)));
                    }
                }
            }
        }
        set.into_iter().collect()
    }

    /// The largest number of pairwise conflict checks an invocation of
    /// `method` can trigger: the maximum over the method's β vectors of
    /// `Σ_{pt ∈ ηₒ} |Cₒ(pt.class)|`.
    ///
    /// This is the static per-pair bound of Theorem 6.6 — in the ECL
    /// fragment it is a constant independent of trace length, which is
    /// exactly what the fragment-conformance lint reports per method.
    ///
    /// # Panics
    ///
    /// Panics if `method` is out of range for the specification.
    pub fn max_conflict_checks(&self, method: crace_model::MethodId) -> usize {
        self.methods[method.index()]
            .touch
            .iter()
            .map(|templates| {
                templates
                    .iter()
                    .map(|t| {
                        let class = match *t {
                            TouchTemplate::Ds(c) => c,
                            TouchTemplate::Slot(c, _) => c,
                        };
                        self.conflicting(class).len()
                    })
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Computes the β index of an action: bit `k` holds atom `k`'s truth
    /// value on the action's slots.
    pub(crate) fn beta_of(&self, action: &Action) -> usize {
        let table = &self.methods[action.method().index()];
        let slots: Vec<Value> = action.slots().cloned().collect();
        let mut beta = 0usize;
        for (k, atom) in table.atoms.iter().enumerate() {
            if atom.eval(&slots) {
                beta |= 1 << k;
            }
        }
        beta
    }

    /// `ηₒ(a)`: the finite set of access points touched by an action
    /// (Definition 4.4, item 2), after optimization — points whose class
    /// never conflicts are already dropped.
    ///
    /// # Panics
    ///
    /// Panics if the action's method id or arity does not match the
    /// specification.
    pub fn touched(&self, action: &Action) -> Vec<AccessPoint> {
        assert!(
            action.method().index() < self.methods.len(),
            "action {action} does not belong to spec `{}`",
            self.spec.name()
        );
        assert_eq!(
            action.arity(),
            self.spec.sig(action.method()).num_slots(),
            "action {action} has wrong arity for `{}`",
            self.spec.sig(action.method())
        );
        let beta = self.beta_of(action);
        let table = &self.methods[action.method().index()];
        table.touch[beta]
            .iter()
            .map(|t| match *t {
                TouchTemplate::Ds(class) => AccessPoint { class, value: None },
                TouchTemplate::Slot(class, i) => AccessPoint {
                    class,
                    value: Some(action.slot(i).expect("arity checked").clone()),
                },
            })
            .collect()
    }

    /// Do two concrete actions conflict according to the compiled
    /// representation — i.e. `(ηₒ(a) × ηₒ(b)) ∩ Cₒ ≠ ∅`?
    ///
    /// By Definition 4.5 this must equal `¬ϕ(a, b)`; the equivalence is
    /// what the translation tests check exhaustively.
    pub fn actions_conflict(&self, a: &Action, b: &Action) -> bool {
        let pa = self.touched(a);
        let pb = self.touched(b);
        pa.iter().any(|x| {
            self.conflicting(x.class)
                .iter()
                .any(|&c| pb.iter().any(|y| y.class == c && y.value == x.value))
        })
    }
}

impl fmt::Display for CompiledSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "access points for `{}` ({} classes):",
            self.spec.name(),
            self.num_classes()
        )?;
        for (i, adj) in self.conflicts.iter().enumerate() {
            let kind = match self.kinds[i] {
                PointKind::Ds => "ds",
                PointKind::Slot => "slot",
            };
            let names: Vec<&str> = adj.iter().map(|c| self.label(*c)).collect();
            writeln!(
                f,
                "  {:<24} [{kind}] conflicts {{{}}}",
                self.labels[i],
                names.join(", ")
            )?;
        }
        Ok(())
    }
}
