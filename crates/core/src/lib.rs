//! Commutativity race detection — the paper's primary contribution.
//!
//! This crate implements:
//!
//! * the **access-point representation** `⟨Xₒ, ηₒ, Cₒ⟩` of a commutativity
//!   specification (§4.2) in compiled form — [`CompiledSpec`],
//! * the **translation** from ECL specifications to access-point
//!   representations (§6.2), including the optimization pipeline of
//!   Appendix A.3 (consolidation, dropping, cleanup, congruence
//!   replacement) — [`translate`],
//! * **Algorithm 1**, the online commutativity race detector combining the
//!   access points with vector clocks (§5.3) — [`TraceDetector`] for
//!   recorded traces and [`Rd2`] for live multi-threaded programs,
//! * the **direct detector** (§5.1), which checks the logical specification
//!   pairwise against all previous actions — the Θ(|A|)-per-action baseline
//!   the access-point representation improves on — [`DirectDetector`] /
//!   [`Direct`],
//! * a **quadratic oracle** ([`oracle::find_races`]) enumerating every
//!   racing pair, used to validate the precision guarantee of Theorem 5.1.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use crace_core::{translate, TraceDetector};
//! use crace_model::{replay, Action, Event, ObjId, ThreadId, Trace, Value};
//! use crace_spec::builtin;
//!
//! // 1. Compile the Fig. 6 dictionary specification to access points.
//! let spec = builtin::dictionary();
//! let compiled = Arc::new(translate(&spec)?);
//! let put = spec.method_id("put").unwrap();
//!
//! // 2. Record the trace of the paper's running example (Fig. 3).
//! let (main, t2, t3) = (ThreadId(0), ThreadId(1), ThreadId(2));
//! let o = ObjId(1);
//! let mut trace = Trace::new();
//! trace.push(Event::Fork { parent: main, child: t2 });
//! trace.push(Event::Fork { parent: main, child: t3 });
//! trace.push(Event::Action {
//!     tid: t3,
//!     action: Action::new(o, put, vec![Value::str("a.com"), Value::Int(1)], Value::Nil),
//! });
//! trace.push(Event::Action {
//!     tid: t2,
//!     action: Action::new(o, put, vec![Value::str("a.com"), Value::Int(2)], Value::Int(1)),
//! });
//!
//! // 3. Detect: the two unordered, same-key puts race.
//! let mut detector = TraceDetector::new();
//! detector.register(o, compiled);
//! let report = replay(&trace, &detector);
//! assert_eq!(report.total(), 1);
//! # Ok::<(), crace_core::TranslateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod detector;
mod direct;
mod engine;
pub mod oracle;
mod points;
mod translate;

pub use checkpoint::{builtin_resolver, Checkpoint, SpecResolver};
pub use detector::TraceDetector;
pub use direct::{Direct, DirectDetector};
pub use engine::{ClockMode, ObjState, RaceHit};
pub use points::{AccessPoint, ClassId, CompiledSpec, PointKind, TranslationStats};
pub use translate::{
    translate, translate_with, OptPass, TranslateError, A3_PIPELINE, MAX_ATOMS_PER_METHOD,
};

mod rd2;
pub use rd2::Rd2;

mod parallel;
pub use parallel::{ParallelConfig, ParallelRd2, ParallelStats, WorkerStats};
