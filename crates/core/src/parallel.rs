//! `ParallelRd2` — the sharded parallel detection pipeline.
//!
//! RD2 is inherently per-access-point: once the synchronization clocks are
//! known, actions on different objects never touch the same shadow state.
//! This module exploits that independence with a pool of N detector
//! workers, each owning a disjoint slice of the 64-way object-shard space:
//!
//! * **routing** — action events are dispatched to the worker owning their
//!   object's shard (`(obj % 64) % N`, the same shard function the live
//!   [`Rd2`](crate::Rd2) uses), so each access point is only ever touched
//!   by one worker and workers need no locks around their shadow state;
//! * **sync broadcast** — fork/join/acquire/release events are broadcast
//!   *in ingress order* to every worker. Synchronization events are the
//!   only events that modify thread clocks (action events read `T(τ)` but
//!   never write it — the last row of Table 1), so every worker's private
//!   [`SyncClocks`] replays exactly the serial detector's clock state at
//!   every point of the stream, and each shard sees a happens-before-
//!   consistent sub-stream (the offline [`ParallelRd2::ingest_shared`]
//!   path goes further: the ingress replays sync events once against a
//!   master replica and ships workers the resulting clocks, so the
//!   joins are not redone per worker);
//! * **batched delivery** — events travel through bounded per-worker rings
//!   in batches; batch buffers are pooled and recycled between producer
//!   and worker, so steady-state delivery does not allocate per batch;
//! * **deterministic merge** — every race is tagged with the global
//!   ingress sequence number of its action; [`ParallelRd2::report`]
//!   stably sorts the sampled records by that sequence number and rebuilds
//!   the report through the ordinary [`RaceReport`] machinery, which makes
//!   the merged report *bit-for-bit equal* to the serial detector's
//!   (`tests/parallel_vs_serial.rs` asserts exactly that);
//! * **epoch GC** — the per-thread abandonment of PR 5 generalizes to a
//!   watermark sweep: every `gc_every` actions a worker computes the meet
//!   of all live thread clocks and retires access points dominated by it
//!   (see [`ObjState::retire_quiesced`]); a retired point re-materializes
//!   exactly if touched again, so GC never changes a report;
//! * **supervision** — each event is processed under `catch_unwind`, and
//!   a panicking worker is *healed* when that is sound: the worker keeps a
//!   periodic in-memory snapshot of its shadow state plus a journal of the
//!   batches processed since, rebuilds itself from the snapshot, replays
//!   the journal, and skips only the poisoned message. Skipping an action
//!   event can only *hide* a race (it removes a point update and a
//!   detection), so the heal never invents one; a panic on a message that
//!   writes clock or registry state (sync events, shared-stream views,
//!   register/forget) cannot be healed by skipping — losing a
//!   happens-before edge could fabricate races — so the worker degrades
//!   fail-open instead (sheds its further events, keeps the races found
//!   before the panic, still answers report barriers). The contract:
//!   *heal when possible, shed only when healing fails, never invent
//!   races*;
//! * **checkpoint/restore** — the pipeline implements
//!   [`Checkpoint`](crate::Checkpoint): a snapshot barrier collects every
//!   worker's state consistent with one ingress sequence number, and
//!   restore installs the parsed state back into a same-shaped pipeline,
//!   after which detection continues exactly as if never interrupted.

use crate::engine::{ClockMode, ObjState};
use crate::points::CompiledSpec;
use crace_model::{
    Action, Analysis, Event, LockId, ObjId, RaceKind, RaceRecord, RaceReport, ThreadId, Trace,
};
use crace_obs::trace::{Lane, PhaseId, Tracer};
use crace_obs::Registry;
use crace_vclock::{ClockStats, SyncClocks, VectorClock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// The object-shard modulus, kept identical to [`crate::Rd2`]'s sharding
/// so the two detectors partition objects the same way.
const OBJ_SHARDS: usize = 64;

/// Sample cap mirrored from the report machinery
/// (`RaceReport::DEFAULT_MAX_SAMPLES`); a unit test below pins the two
/// against drifting apart.
const SAMPLE_CAP: usize = 64;

/// Maximum recycled batch buffers kept per worker ring.
const FREE_POOL: usize = 16;

/// Tuning knobs of the parallel pipeline. The defaults favor throughput;
/// tests shrink `batch` to exercise multi-batch delivery on small traces.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Events accumulated per worker before a batch is shipped (report
    /// barriers flush partial batches). Larger batches amortize ring
    /// synchronization; smaller ones reduce detection latency.
    pub batch: usize,
    /// Maximum in-flight batches per worker ring; producers block (back
    /// pressure) when a ring is full.
    pub queue_depth: usize,
    /// Access-point clock representation, as in the serial detectors.
    pub mode: ClockMode,
    /// When set, workers collect race provenance with this event window.
    pub provenance_window: Option<usize>,
    /// Run the epoch-GC watermark sweep every this many actions per
    /// worker; `0` disables GC. Enabling GC assumes a fork-structured
    /// stream (every thread except the root enters via a fork event).
    pub gc_every: usize,
    /// Refresh each worker's in-memory supervision snapshot every this
    /// many processed events; `0` disables supervision entirely (a panic
    /// then degrades the worker forever, the pre-PR-10 behavior). Between
    /// refreshes the worker journals its processed batches, so a heal
    /// costs one snapshot clone plus a bounded replay — there is no
    /// per-event cloning on the hot path.
    pub snapshot_every: usize,
    /// When set, the pipeline records span timelines into this tracer:
    /// ingress batch pushes, sync broadcasts, per-worker batch dispatch,
    /// GC sweeps, worker heals, and the report merge, plus
    /// ring-queue-depth counter samples. `None` (the default) records
    /// nothing and adds no work to any path — the same double-gating
    /// discipline as `provenance_window`.
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            batch: 512,
            queue_depth: 8,
            mode: ClockMode::Adaptive,
            provenance_window: None,
            gc_every: 0,
            snapshot_every: 4096,
            tracer: None,
        }
    }
}

/// One message on a worker ring. Sync events and control messages are
/// broadcast to all workers; actions go to their object's owner only.
enum Msg {
    Fork(ThreadId, ThreadId),
    Join(ThreadId, ThreadId),
    Acquire(ThreadId, LockId),
    Release(ThreadId, LockId),
    Action {
        /// Global ingress sequence number — the merge key.
        seq: u64,
        tid: ThreadId,
        action: Action,
    },
    /// A zero-copy view into a shared recorded trace
    /// ([`ParallelRd2::ingest_shared`]): the ingress indexed the chunk
    /// once and each worker receives only the trace offsets of its
    /// shard's actions — no per-event clone, no per-event message, no
    /// per-worker rescan. Synchronization events are not re-applied by
    /// workers at all: the ingress replayed them once on its master
    /// clocks and `sets` carries the resulting thread clocks, which a
    /// worker installs in O(1) each (an `Arc` pointer into its overlay)
    /// instead of redoing the O(clock-density) join N times.
    Shared {
        /// `base + 1 + offset` is an event's global sequence number.
        base: u64,
        trace: Arc<Trace>,
        /// Trace offsets of this worker's shard's actions, ascending.
        picks: Vec<u32>,
        /// Precomputed thread-clock updates of the chunk's sync events,
        /// ascending by offset, shared by all workers.
        sets: Arc<Vec<ClockSet>>,
    },
    Register(ObjId, Arc<CompiledSpec>),
    Forget(ObjId),
    Abandon(ThreadId),
    /// End-of-[`ParallelRd2::ingest_shared`] reconciliation: replaces the
    /// worker's private clock replica with the ingress's master state, so
    /// per-event (online) dispatch composes after a shared stream.
    SyncState(Arc<SyncClocks>),
    /// Chaos hook: makes the worker panic while processing, exercising the
    /// supervision path (heal, or degrade without a snapshot) end to end.
    Poison,
    /// Report barrier: snapshot the worker's findings into the reply slot.
    Collect(Arc<Reply>),
    /// Checkpoint barrier: snapshot the worker's complete shadow state
    /// into the reply slot.
    Snapshot(Arc<SnapReply>),
    /// Restore barrier: replace the worker's shadow state with this
    /// snapshot (clearing any degradation), then acknowledge.
    Install(Box<WorkerSnapshot>, Arc<Reply>),
}

/// One thread-clock change produced by the ingress's master replay of a
/// shared chunk's synchronization events: `tid`'s clock *after* the sync
/// event at trace offset `off`.
struct ClockSet {
    off: u32,
    tid: ThreadId,
    clock: Arc<VectorClock>,
    /// The thread emits no further events (a joined child): it leaves the
    /// GC live set instead of entering it.
    dead: bool,
}

impl Msg {
    /// How many events this message stands for in a worker's counters
    /// (shared views span many; barriers none; everything else is one).
    fn weight(&self) -> u64 {
        match self {
            Msg::Shared { picks, .. } => picks.len() as u64,
            Msg::Collect(_) | Msg::Snapshot(_) | Msg::Install(..) => 0,
            _ => 1,
        }
    }

    /// Barrier/control messages the worker loop answers itself; a heal
    /// replay skips them (they were already answered).
    fn is_control(&self) -> bool {
        matches!(self, Msg::Collect(_) | Msg::Snapshot(_) | Msg::Install(..))
    }

    /// Whether a panic on this message can be healed by skipping it.
    /// Only pure detection work qualifies: dropping an action removes a
    /// point update and a detection, which can only *hide* a race.
    /// Everything that writes clock, overlay, or registry state is
    /// excluded — skipping one of those could delete a happens-before
    /// edge and make a later pair look concurrent, i.e. invent a race —
    /// so those degrade instead.
    fn heals_by_skipping(&self) -> bool {
        matches!(self, Msg::Action { .. } | Msg::Poison)
    }
}

/// A one-shot reply slot for a [`Msg::Collect`] barrier.
#[derive(Default)]
struct Reply {
    slot: Mutex<Option<WorkerFindings>>,
    ready: Condvar,
}

impl Reply {
    fn fill(&self, findings: WorkerFindings) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(findings);
        self.ready.notify_all();
    }

    fn wait(&self) -> WorkerFindings {
        let mut guard = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(findings) = guard.take() {
                return findings;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A one-shot reply slot for a [`Msg::Snapshot`] checkpoint barrier.
#[derive(Default)]
struct SnapReply {
    slot: Mutex<Option<WorkerSnapshot>>,
    ready: Condvar,
}

impl SnapReply {
    fn fill(&self, snapshot: WorkerSnapshot) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(snapshot);
        self.ready.notify_all();
    }

    fn wait(&self) -> WorkerSnapshot {
        let mut guard = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(snapshot) = guard.take() {
                return snapshot;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A worker's complete shadow state as a value: the supervision
/// snapshot a heal rebuilds from, and the per-worker section of a
/// pipeline checkpoint. Exactly the data fields of [`WorkerState`] —
/// configuration and tracing handles stay with the worker.
#[derive(Clone)]
struct WorkerSnapshot {
    sync: SyncClocks,
    overlay: HashMap<ThreadId, Arc<VectorClock>>,
    registry: HashMap<ObjId, Arc<CompiledSpec>>,
    objects: HashMap<ObjId, ObjState>,
    detailed: Vec<(u64, RaceRecord)>,
    overflow: RaceReport,
    live: HashSet<ThreadId>,
    since_gc: usize,
    gc_retired: u64,
    folded_probes: u64,
    folded_stats: ClockStats,
}

impl WorkerSnapshot {
    fn empty() -> WorkerSnapshot {
        WorkerSnapshot {
            sync: SyncClocks::new(),
            overlay: HashMap::new(),
            registry: HashMap::new(),
            objects: HashMap::new(),
            detailed: Vec::new(),
            overflow: RaceReport::with_sample_capacity(0),
            live: HashSet::new(),
            since_gc: 0,
            gc_retired: 0,
            folded_probes: 0,
            folded_stats: ClockStats::default(),
        }
    }

    /// Serializes this worker's section of a pipeline checkpoint,
    /// starting with its `worker <idx>` header.
    fn ckpt_write(&self, idx: usize, w: &mut crace_vclock::CkptWriter) {
        use crate::checkpoint as ck;
        use crace_vclock::ckpt::{esc, stats_word};
        w.rec(&format!("worker {idx}"));
        ck::sync_write(w, &self.sync);
        let mut overlay: Vec<(u32, &Arc<VectorClock>)> =
            self.overlay.iter().map(|(t, c)| (t.0, c)).collect();
        overlay.sort_unstable_by_key(|&(t, _)| t);
        for (tid, clock) in overlay {
            w.rec_with(|out| {
                use std::fmt::Write;
                let _ = write!(out, "wover {tid} ");
                crace_vclock::ckpt::vc_append(out, clock);
            });
        }
        let mut registry: Vec<(u64, &Arc<CompiledSpec>)> =
            self.registry.iter().map(|(o, s)| (o.0, s)).collect();
        registry.sort_unstable_by_key(|&(o, _)| o);
        for (obj, spec) in registry {
            w.rec(&format!("wreg {obj} {}", esc(spec.spec().name())));
        }
        let mut objects: Vec<(&ObjId, &ObjState)> = self.objects.iter().collect();
        objects.sort_by_key(|(obj, _)| obj.0);
        for (obj, state) in objects {
            // Object states only exist for registered objects; the
            // registry entry carries the spec name.
            let Some(spec) = self.registry.get(obj) else {
                continue;
            };
            ck::object_header(w, *obj, spec);
            state.ckpt_write(w);
        }
        for (seq, record) in &self.detailed {
            let mut words = vec!["wdet".to_string(), seq.to_string()];
            ck::record_words(&mut words, record);
            w.rec(&words.join(" "));
        }
        ck::report_write(w, &format!("w{idx}."), &self.overflow);
        let mut live: Vec<u32> = self.live.iter().map(|t| t.0).collect();
        live.sort_unstable();
        let mut words = vec!["wlive".to_string(), live.len().to_string()];
        words.extend(live.iter().map(u32::to_string));
        w.rec(&words.join(" "));
        w.rec(&format!(
            "wctr {} {} {} {}",
            self.since_gc,
            self.gc_retired,
            self.folded_probes,
            stats_word(&self.folded_stats)
        ));
    }

    /// Reads back one worker section; the reader must be positioned just
    /// past the `worker <idx>` header.
    fn ckpt_read(
        r: &mut crace_vclock::CkptReader<'_>,
        idx: usize,
        resolve: &crate::SpecResolver<'_>,
    ) -> Result<WorkerSnapshot, crace_vclock::CkptError> {
        use crate::checkpoint as ck;
        use crace_vclock::ckpt::{stats_parse, vc_parse, CkptError};
        let mut snap = WorkerSnapshot::empty();
        snap.sync = ck::sync_read(r)?;
        while let Some(rec) = r.peek() {
            if rec.tag() != "wover" {
                break;
            }
            let tid = ThreadId(rec.num(1)?);
            let clock = vc_parse(rec.word(2)?, rec.line)?;
            snap.overlay.insert(tid, Arc::new(clock));
            r.next_rec();
        }
        while let Some(rec) = r.peek() {
            if rec.tag() != "wreg" {
                break;
            }
            let obj = ObjId(rec.num(1)?);
            let name = rec.text(2)?;
            let spec = resolve(&name).ok_or_else(|| {
                CkptError::at(
                    rec.line,
                    format!("checkpoint references unknown spec `{name}` — cannot restore"),
                )
            })?;
            snap.registry.insert(obj, spec);
            r.next_rec();
        }
        while let Some(rec) = r.peek() {
            if rec.tag() != "object" {
                break;
            }
            let (obj, _spec) = ck::object_parse(rec, resolve)?;
            r.next_rec();
            let state = ObjState::ckpt_read(r)?;
            snap.objects.insert(obj, state);
        }
        while let Some(rec) = r.peek() {
            if rec.tag() != "wdet" {
                break;
            }
            let seq: u64 = rec.num(1)?;
            let (record, _) = ck::record_parse(rec, 2)?;
            snap.detailed.push((seq, record));
            r.next_rec();
        }
        snap.overflow = ck::report_read(r, &format!("w{idx}."))?;
        let rec = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint ends where `wlive` was expected"))?;
        if rec.tag() != "wlive" {
            return Err(CkptError::at(
                rec.line,
                format!("expected `wlive`, found `{}`", rec.tag()),
            ));
        }
        let n: usize = rec.num(1)?;
        for i in 0..n {
            snap.live.insert(ThreadId(rec.num(2 + i)?));
        }
        let rec = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint ends where `wctr` was expected"))?;
        if rec.tag() != "wctr" {
            return Err(CkptError::at(
                rec.line,
                format!("expected `wctr`, found `{}`", rec.tag()),
            ));
        }
        snap.since_gc = rec.num(1)?;
        snap.gc_retired = rec.num(2)?;
        snap.folded_probes = rec.num(3)?;
        snap.folded_stats = stats_parse(rec.word(4)?, rec.line)?;
        Ok(snap)
    }
}

/// What a worker hands back at a report barrier.
#[derive(Clone, Default)]
struct WorkerFindings {
    /// The first [`SAMPLE_CAP`] races this worker found, with the global
    /// sequence number of the racing action.
    detailed: Vec<(u64, RaceRecord)>,
    /// Count-only record (no samples) of the races beyond the cap.
    overflow: RaceReport,
    clock_stats: ClockStats,
    probes: u64,
    gc_retired: u64,
}

/// The bounded ring between the ingress and one worker: a batch queue plus
/// a free list of recycled batch buffers.
struct Ring {
    state: Mutex<RingState>,
    can_pop: Condvar,
    can_push: Condvar,
    cap: usize,
}

#[derive(Default)]
struct RingState {
    queue: VecDeque<Vec<Msg>>,
    free: Vec<Vec<Msg>>,
    closed: bool,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            state: Mutex::new(RingState::default()),
            can_pop: Condvar::new(),
            can_push: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Ships one batch, blocking while the ring is full (back pressure).
    /// Returns a recycled buffer for the producer's next batch.
    fn push(&self, batch: Vec<Msg>, shared: &WorkerShared) -> Vec<Msg> {
        let mut state = self.lock();
        while state.queue.len() >= self.cap && !state.closed {
            state = self
                .can_push
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if !state.closed {
            state.queue.push_back(batch);
            shared
                .max_queue_depth
                .fetch_max(state.queue.len() as u64, Ordering::Relaxed);
        }
        let spare = state.free.pop().unwrap_or_default();
        drop(state);
        self.can_pop.notify_one();
        spare
    }

    /// Takes the next batch; `None` once the ring is closed and drained.
    fn pop(&self, shared: &WorkerShared) -> Option<Vec<Msg>> {
        let mut state = self.lock();
        loop {
            if let Some(batch) = state.queue.pop_front() {
                drop(state);
                self.can_push.notify_one();
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            shared.parks.fetch_add(1, Ordering::Relaxed);
            state = self
                .can_pop
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Returns a drained batch buffer to the free pool.
    fn recycle(&self, mut batch: Vec<Msg>) {
        batch.clear();
        let mut state = self.lock();
        if state.free.len() < FREE_POOL {
            state.free.push(batch);
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }

    /// Batches currently queued (traced runs sample this after pushes).
    fn depth(&self) -> usize {
        self.lock().queue.len()
    }
}

/// Pre-resolved tracing handles of the ingress side; present only when
/// [`ParallelConfig::tracer`] is set.
struct IngressTrace {
    lane: Arc<Lane>,
    p_ingress: PhaseId,
    p_sync: PhaseId,
    p_merge: PhaseId,
    p_depth: PhaseId,
}

/// Pre-resolved tracing handles of one worker thread.
#[derive(Clone)]
struct WorkerTrace {
    lane: Arc<Lane>,
    p_batch: PhaseId,
    p_gc: PhaseId,
    p_heal: PhaseId,
}

/// Lock-free per-worker counters, shared between the worker thread and
/// [`ParallelRd2::stats`].
#[derive(Default)]
struct WorkerShared {
    events: AtomicU64,
    batches: AtomicU64,
    max_queue_depth: AtomicU64,
    parks: AtomicU64,
    panics: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicBool,
    respawns: AtomicU64,
    healed_events: AtomicU64,
    heal_micros: AtomicU64,
}

/// Snapshot of one worker's pipeline counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Messages this worker processed (actions, sync events, control).
    pub events: u64,
    /// Batches this worker drained from its ring.
    pub batches: u64,
    /// High-watermark of the ring's queued-batch depth.
    pub max_queue_depth: u64,
    /// Times the worker slept waiting for work (idle transitions).
    pub parks: u64,
    /// Panics caught inside this worker.
    pub panics: u64,
    /// Events shed after the worker degraded (plus one per message
    /// skipped by a heal).
    pub events_shed: u64,
    /// True once a panic tripped this worker into shedding mode (healing
    /// failed or supervision is off).
    pub degraded: bool,
    /// Times the supervisor rebuilt this worker from its snapshot after
    /// a panic.
    pub respawns: u64,
    /// Journal events replayed across all heals.
    pub healed_events: u64,
    /// Total wall-clock microseconds spent healing.
    pub heal_micros: u64,
}

/// Snapshot of the whole pipeline's counters — the `parallel.*` metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Events accepted at the ingress (not shed).
    pub events_in: u64,
    /// Synchronization events broadcast to every worker.
    pub sync_broadcasts: u64,
    /// Events shed at the ingress because they named an abandoned thread.
    pub events_shed: u64,
}

impl ParallelStats {
    /// Exports the pipeline counters into `registry` under `parallel.*`:
    /// ingress totals as counters, per-worker occupancy (this worker's
    /// share of processed events), queue-depth high-watermarks and
    /// degradation flags as gauges. Safe to call repeatedly — counters are
    /// advanced by delta, never double-counted.
    pub fn feed(&self, registry: &Registry) {
        fn bump(registry: &Registry, name: &str, now: u64) {
            let counter = registry.counter(name);
            let cur = counter.get();
            if now > cur {
                counter.add(now - cur);
            }
        }
        bump(registry, "parallel.events_in", self.events_in);
        bump(registry, "parallel.sync_broadcasts", self.sync_broadcasts);
        bump(registry, "parallel.events_shed", self.events_shed);
        bump(
            registry,
            "supervisor.respawns",
            self.workers.iter().map(|w| w.respawns).sum(),
        );
        bump(
            registry,
            "supervisor.healed_events",
            self.workers.iter().map(|w| w.healed_events).sum(),
        );
        bump(
            registry,
            "supervisor.heal_micros",
            self.workers.iter().map(|w| w.heal_micros).sum(),
        );
        registry.set_gauge("parallel.workers", self.workers.len() as f64);
        let total: u64 = self.workers.iter().map(|w| w.events).sum();
        for (i, w) in self.workers.iter().enumerate() {
            let share = if total > 0 {
                w.events as f64 / total as f64
            } else {
                0.0
            };
            registry.set_gauge(&format!("parallel.w{i}.occupancy"), share);
            registry.set_gauge(
                &format!("parallel.w{i}.queue_depth_max"),
                w.max_queue_depth as f64,
            );
            registry.set_gauge(
                &format!("parallel.w{i}.degraded"),
                if w.degraded { 1.0 } else { 0.0 },
            );
        }
    }
}

/// Producer-side state, serialized by the ingress lock: the global
/// sequence counter, the per-worker pending batches, and the abandonment
/// set (the shed filter runs at the ingress so shed events are never
/// routed at all, matching the serial detectors' counters).
struct Ingress {
    seq: u64,
    pending: Vec<Vec<Msg>>,
    abandoned: HashSet<ThreadId>,
    compiled: HashMap<String, Arc<CompiledSpec>>,
    /// The master synchronization clocks, kept in lockstep with the
    /// workers' replicas (every non-shed sync event is applied here too).
    /// [`ParallelRd2::ingest_shared`] replays a recorded trace's sync
    /// events against it *once* and ships workers the resulting clocks,
    /// instead of having every worker redo the joins.
    sync: SyncClocks,
}

/// The sharded parallel commutativity race detector.
///
/// Functionally identical to the serial [`Rd2`](crate::Rd2) — the
/// differential suite asserts bit-for-bit equal [`RaceReport`]s — but the
/// per-event work is split between a thin ingress (route, stamp, batch)
/// and N single-owner workers that run phase 1/phase 2 of Algorithm 1
/// without any locking around their shadow state.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use crace_core::{translate, ParallelRd2};
/// use crace_model::{Action, Analysis, ObjId, ThreadId, Value};
/// use crace_spec::builtin;
///
/// let spec = builtin::dictionary();
/// let rd2 = ParallelRd2::new(4);
/// rd2.register(ObjId(1), Arc::new(translate(&spec)?));
///
/// let put = spec.method_id("put").unwrap();
/// rd2.on_fork(ThreadId(0), ThreadId(1));
/// rd2.on_action(ThreadId(0), &Action::new(
///     ObjId(1), put, vec![Value::Int(5), Value::Int(1)], Value::Nil));
/// rd2.on_action(ThreadId(1), &Action::new(
///     ObjId(1), put, vec![Value::Int(5), Value::Int(2)], Value::Int(1)));
/// assert_eq!(rd2.report().total(), 1);
/// # Ok::<(), crace_core::TranslateError>(())
/// ```
pub struct ParallelRd2 {
    ingress: Mutex<Ingress>,
    rings: Vec<Arc<Ring>>,
    shared: Vec<Arc<WorkerShared>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    cfg: ParallelConfig,
    workers: usize,
    has_abandoned: AtomicBool,
    shed: AtomicU64,
    events_in: AtomicU64,
    sync_broadcasts: AtomicU64,
    trace: Option<IngressTrace>,
}

impl ParallelRd2 {
    /// Spawns a pipeline with `workers` detector workers (clamped to
    /// `1..=64`) and default tuning.
    pub fn new(workers: usize) -> ParallelRd2 {
        ParallelRd2::with_config(workers, ParallelConfig::default())
    }

    /// Spawns a pipeline with an explicit clock representation.
    pub fn with_mode(workers: usize, mode: ClockMode) -> ParallelRd2 {
        ParallelRd2::with_config(
            workers,
            ParallelConfig {
                mode,
                ..ParallelConfig::default()
            },
        )
    }

    /// Spawns a pipeline that collects race provenance with the given
    /// event window, as [`Rd2::with_provenance`](crate::Rd2::with_provenance).
    pub fn with_provenance(workers: usize, window: usize) -> ParallelRd2 {
        ParallelRd2::with_config(
            workers,
            ParallelConfig {
                provenance_window: Some(window),
                ..ParallelConfig::default()
            },
        )
    }

    /// Spawns a pipeline with full control over the tuning knobs.
    pub fn with_config(workers: usize, cfg: ParallelConfig) -> ParallelRd2 {
        let workers = workers.clamp(1, OBJ_SHARDS);
        let cfg = ParallelConfig {
            batch: cfg.batch.max(1),
            ..cfg
        };
        let rings: Vec<Arc<Ring>> = (0..workers)
            .map(|_| Arc::new(Ring::new(cfg.queue_depth)))
            .collect();
        let shared: Vec<Arc<WorkerShared>> = (0..workers)
            .map(|_| Arc::new(WorkerShared::default()))
            .collect();
        let handles = rings
            .iter()
            .zip(&shared)
            .enumerate()
            .map(|(w, (ring, shared))| {
                let ring = Arc::clone(ring);
                let shared = Arc::clone(shared);
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("crace-rd2-w{w}"))
                    .spawn(move || worker_main(&ring, &shared, &cfg, w))
                    .expect("spawn detector worker")
            })
            .collect();
        let trace = cfg.tracer.as_ref().map(|t| IngressTrace {
            lane: t.lane("ingress"),
            p_ingress: t.phase("parallel.ingress"),
            p_sync: t.phase("parallel.sync"),
            p_merge: t.phase("parallel.merge"),
            p_depth: t.phase("parallel.queue_depth"),
        });
        ParallelRd2 {
            ingress: Mutex::new(Ingress {
                seq: 0,
                pending: (0..workers).map(|_| Vec::new()).collect(),
                abandoned: HashSet::new(),
                compiled: HashMap::new(),
                sync: SyncClocks::new(),
            }),
            rings,
            shared,
            handles: Mutex::new(handles),
            cfg,
            workers,
            has_abandoned: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            events_in: AtomicU64::new(0),
            sync_broadcasts: AtomicU64::new(0),
            trace,
        }
    }

    /// Number of detector workers in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// The worker owning `obj`'s shard — the same partition the serial
    /// sharded detector uses, folded onto the worker pool.
    fn route(&self, obj: ObjId) -> usize {
        (obj.0 as usize % OBJ_SHARDS) % self.workers
    }

    fn lock_ingress(&self) -> MutexGuard<'_, Ingress> {
        self.ingress.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends `msg` to worker `w`'s pending batch, shipping the batch
    /// when it reaches the configured size.
    fn enqueue(&self, ingress: &mut Ingress, w: usize, msg: Msg) {
        ingress.pending[w].push(msg);
        if ingress.pending[w].len() >= self.cfg.batch {
            self.flush(ingress, w);
        }
    }

    /// Ships worker `w`'s pending batch (if any), leaving a recycled
    /// buffer in its place.
    fn flush(&self, ingress: &mut Ingress, w: usize) {
        if ingress.pending[w].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut ingress.pending[w]);
        let span = self.trace.as_ref().map(|t| {
            let mut span = t.lane.span(t.p_ingress);
            span.set_aux(batch.len() as u64);
            span
        });
        ingress.pending[w] = self.rings[w].push(batch, &self.shared[w]);
        drop(span);
        if let Some(t) = &self.trace {
            t.lane.counter(t.p_depth, self.rings[w].depth() as u64);
        }
    }

    /// Ingress shed filter (identical to the serial detectors): one shed
    /// count per event naming an abandoned thread, fast-pathed to a single
    /// relaxed load while nothing was ever abandoned.
    fn sheds(&self, ingress: &Ingress, tids: &[ThreadId]) -> bool {
        if !self.has_abandoned.load(Ordering::Relaxed) {
            return false;
        }
        if tids.iter().any(|t| ingress.abandoned.contains(t)) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Broadcasts one synchronization event, in ingress order, to every
    /// worker, mirroring it onto the ingress's master clocks.
    fn sync_event(
        &self,
        tids: &[ThreadId],
        make: impl Fn() -> Msg,
        apply: impl FnOnce(&mut SyncClocks),
    ) {
        let mut ingress = self.lock_ingress();
        if self.sheds(&ingress, tids) {
            return;
        }
        ingress.seq += 1;
        self.events_in.fetch_add(1, Ordering::Relaxed);
        self.sync_broadcasts.fetch_add(1, Ordering::Relaxed);
        let _span = self.trace.as_ref().map(|t| t.lane.span(t.p_sync));
        apply(&mut ingress.sync);
        for w in 0..self.workers {
            self.enqueue(&mut ingress, w, make());
        }
    }

    /// Registers `obj` to be checked against `spec`. Actions on
    /// unregistered objects are ignored (selective instrumentation).
    pub fn register(&self, obj: ObjId, spec: Arc<CompiledSpec>) {
        let mut ingress = self.lock_ingress();
        let w = self.route(obj);
        self.enqueue(&mut ingress, w, Msg::Register(obj, spec));
    }

    /// Registers `obj` against an uncompiled specification, translating on
    /// first use and caching by spec name (as the serial detectors do).
    ///
    /// # Errors
    ///
    /// Returns the translation error if the specification is outside ECL.
    pub fn register_spec(
        &self,
        obj: ObjId,
        spec: &crace_spec::Spec,
    ) -> Result<(), crate::TranslateError> {
        let compiled = {
            let mut ingress = self.lock_ingress();
            match ingress.compiled.get(spec.name()) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(crate::translate(spec)?);
                    ingress
                        .compiled
                        .insert(spec.name().to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        self.register(obj, compiled);
        Ok(())
    }

    /// Drops all shadow state of `obj` (the §5.3 reclamation).
    pub fn forget(&self, obj: ObjId) {
        let mut ingress = self.lock_ingress();
        let w = self.route(obj);
        self.enqueue(&mut ingress, w, Msg::Forget(obj));
    }

    /// Number of events shed at the ingress because they named an
    /// abandoned thread.
    pub fn events_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Chaos hook: delivers a poison message to `worker` (modulo the pool
    /// size), making it panic in-stream. With supervision enabled
    /// ([`ParallelConfig::snapshot_every`] > 0, the default) the worker
    /// heals: it rebuilds from its last snapshot, replays its journal,
    /// skips only the poisoned message, and the report stays bit-for-bit
    /// equal to serial. Without supervision it degrades fail-open: sheds
    /// its further events but keeps the races found so far and still
    /// answers report barriers.
    pub fn inject_worker_panic(&self, worker: usize) {
        let mut ingress = self.lock_ingress();
        let w = worker % self.workers;
        self.enqueue(&mut ingress, w, Msg::Poison);
    }

    /// Zero-copy offline ingestion: feeds an entire recorded trace
    /// through the pipeline without cloning a single event. The ingress
    /// scans the trace once, chunk by chunk (`batch` events per chunk),
    /// replays the chunk's synchronization events against its master
    /// clocks *once*, and ships each worker the trace *offsets* of its
    /// shard's actions plus the precomputed thread-clock updates (one
    /// `Arc`'d clock per sync event, shared by all workers). A worker
    /// installs each update in O(1) and detects only its own actions, so
    /// the pipeline's total work is one indexing-and-clock scan plus the
    /// detection the serial path would do anyway, minus serial's
    /// per-action clock clone: strictly less per-event work even on one
    /// CPU, and flat in the worker count (sync-clock maintenance no
    /// longer multiplies by N). Sequence numbers derive from the trace
    /// position, so the deterministic merge — and hence the report — is
    /// bit-for-bit what per-event dispatch produces; a final
    /// reconciliation message replaces each worker's replica with the
    /// master state, so the two paths compose freely within one stream.
    ///
    /// Falls back to per-event dispatch once any thread has been
    /// abandoned, because the ingress shed filter must then inspect
    /// every event individually.
    pub fn ingest_shared(&self, trace: &Arc<Trace>) {
        fn snap(sets: &mut Vec<ClockSet>, sync: &SyncClocks, off: u32, tid: ThreadId, dead: bool) {
            if let Some(clock) = sync.peek_clock(tid) {
                sets.push(ClockSet {
                    off,
                    tid,
                    clock: Arc::new(clock.clone()),
                    dead,
                });
            }
        }
        if trace.is_empty() {
            return;
        }
        if self.has_abandoned.load(Ordering::Relaxed) {
            for event in trace.events() {
                self.on_event(event);
            }
            return;
        }
        let events = trace.events();
        let mut ingress = self.lock_ingress();
        // Each event's sequence number is `base + 1 + trace offset`;
        // unpicked offsets (reads/writes) leave gaps, which the merge
        // tolerates, and online dispatch can resume after the stream.
        let base = ingress.seq;
        ingress.seq += events.len() as u64;
        let mut start = 0usize;
        while start < events.len() {
            let end = start.saturating_add(self.cfg.batch).min(events.len());
            let _span = self.trace.as_ref().map(|t| {
                let mut span = t.lane.span(t.p_ingress);
                span.set_aux((end - start) as u64);
                span
            });
            let mut picks: Vec<Vec<u32>> = vec![Vec::new(); self.workers];
            let mut sets: Vec<ClockSet> = Vec::new();
            let (mut syncs, mut actions) = (0u64, 0u64);
            for (i, event) in events[start..end].iter().enumerate() {
                let off = (start + i) as u32;
                match *event {
                    Event::Fork { parent, child } => {
                        syncs += 1;
                        ingress.sync.fork(parent, child);
                        snap(&mut sets, &ingress.sync, off, parent, false);
                        snap(&mut sets, &ingress.sync, off, child, false);
                    }
                    Event::Join { parent, child } => {
                        syncs += 1;
                        ingress.sync.join(parent, child);
                        snap(&mut sets, &ingress.sync, off, parent, false);
                        // The child's clock is frozen from here on; ship it
                        // so workers that never saw the child agree, and
                        // drop it from the GC live set.
                        snap(&mut sets, &ingress.sync, off, child, true);
                    }
                    Event::Acquire { tid, lock } => {
                        syncs += 1;
                        ingress.sync.acquire(tid, lock);
                        snap(&mut sets, &ingress.sync, off, tid, false);
                    }
                    Event::Release { tid, lock } => {
                        syncs += 1;
                        ingress.sync.release(tid, lock);
                        snap(&mut sets, &ingress.sync, off, tid, false);
                    }
                    Event::Action { ref action, .. } => {
                        actions += 1;
                        picks[self.route(action.obj())].push(off);
                    }
                    _ => {}
                }
            }
            self.events_in.fetch_add(syncs + actions, Ordering::Relaxed);
            self.sync_broadcasts.fetch_add(syncs, Ordering::Relaxed);
            let sets = Arc::new(sets);
            for (w, p) in picks.into_iter().enumerate() {
                if p.is_empty() && sets.is_empty() {
                    continue;
                }
                self.enqueue(
                    &mut ingress,
                    w,
                    Msg::Shared {
                        base,
                        trace: Arc::clone(trace),
                        picks: p,
                        sets: Arc::clone(&sets),
                    },
                );
                self.flush(&mut ingress, w);
            }
            start = end;
        }
        // Reconcile every worker's private replica with the master, so
        // subsequent per-event (online) dispatch starts from the right
        // clocks. One state clone per worker per ingestion — amortized
        // across the whole trace.
        let state = Arc::new(ingress.sync.clone());
        for w in 0..self.workers {
            self.enqueue(&mut ingress, w, Msg::SyncState(Arc::clone(&state)));
        }
    }

    /// Flushes all pending batches and gathers every worker's findings at
    /// a barrier.
    fn collect(&self) -> Vec<WorkerFindings> {
        let replies: Vec<Arc<Reply>> = (0..self.workers)
            .map(|_| Arc::new(Reply::default()))
            .collect();
        {
            let mut ingress = self.lock_ingress();
            for (w, reply) in replies.iter().enumerate() {
                ingress.pending[w].push(Msg::Collect(Arc::clone(reply)));
                self.flush(&mut ingress, w);
            }
        }
        replies.iter().map(|reply| reply.wait()).collect()
    }

    /// Total phase-1 conflict probes across all workers (the §5.4 work
    /// measure). A report barrier.
    pub fn num_probes(&self) -> u64 {
        self.collect().iter().map(|f| f.probes).sum()
    }

    /// Aggregated clock-representation statistics across all workers. A
    /// report barrier.
    pub fn clock_stats(&self) -> ClockStats {
        let mut stats = ClockStats::default();
        for findings in self.collect() {
            stats.merge(&findings.clock_stats);
        }
        stats
    }

    /// Access points retired by the epoch-GC watermark sweeps so far. A
    /// report barrier.
    pub fn gc_retired(&self) -> u64 {
        self.collect().iter().map(|f| f.gc_retired).sum()
    }

    /// Non-blocking snapshot of the pipeline counters (ingress totals,
    /// per-worker occupancy / queue depth / degradation).
    pub fn stats(&self) -> ParallelStats {
        ParallelStats {
            workers: self
                .shared
                .iter()
                .map(|s| WorkerStats {
                    events: s.events.load(Ordering::Relaxed),
                    batches: s.batches.load(Ordering::Relaxed),
                    max_queue_depth: s.max_queue_depth.load(Ordering::Relaxed),
                    parks: s.parks.load(Ordering::Relaxed),
                    panics: s.panics.load(Ordering::Relaxed),
                    events_shed: s.shed.load(Ordering::Relaxed),
                    degraded: s.degraded.load(Ordering::Relaxed),
                    respawns: s.respawns.load(Ordering::Relaxed),
                    healed_events: s.healed_events.load(Ordering::Relaxed),
                    heal_micros: s.heal_micros.load(Ordering::Relaxed),
                })
                .collect(),
            events_in: self.events_in.load(Ordering::Relaxed),
            sync_broadcasts: self.sync_broadcasts.load(Ordering::Relaxed),
            events_shed: self.events_shed(),
        }
    }

    /// Exports the `parallel.*` metrics into `registry` — see
    /// [`ParallelStats::feed`].
    pub fn feed(&self, registry: &Registry) {
        self.stats().feed(registry);
    }

    /// True iff any worker has degraded (caught a panic and is shedding).
    pub fn degraded(&self) -> bool {
        self.shared
            .iter()
            .any(|s| s.degraded.load(Ordering::Relaxed))
    }

    /// Checkpoint barrier: flushes a [`Msg::Snapshot`] to every worker
    /// while holding the ingress lock, so the returned ingress state
    /// (sequence number, master clocks, abandonment set) and the worker
    /// snapshots all correspond to exactly the same stream prefix.
    fn snapshot_barrier(&self) -> (u64, SyncClocks, HashSet<ThreadId>, Vec<WorkerSnapshot>) {
        let replies: Vec<Arc<SnapReply>> = (0..self.workers)
            .map(|_| Arc::new(SnapReply::default()))
            .collect();
        let (seq, sync, abandoned) = {
            let mut ingress = self.lock_ingress();
            for (w, reply) in replies.iter().enumerate() {
                ingress.pending[w].push(Msg::Snapshot(Arc::clone(reply)));
                self.flush(&mut ingress, w);
            }
            (ingress.seq, ingress.sync.clone(), ingress.abandoned.clone())
        };
        (
            seq,
            sync,
            abandoned,
            replies.iter().map(|r| r.wait()).collect(),
        )
    }
}

impl crate::Checkpoint for ParallelRd2 {
    fn checkpoint_kind(&self) -> &'static str {
        "rd2-parallel"
    }

    fn checkpoint(&self) -> String {
        use crate::checkpoint as ck;
        let (seq, sync, abandoned, snaps) = self.snapshot_barrier();
        let mut w = crace_vclock::CkptWriter::new(self.checkpoint_kind());
        w.rec(&format!(
            "meta {} {} {} {} {} {} {}",
            ck::mode_word(self.cfg.mode),
            self.cfg
                .provenance_window
                .map_or("-".to_string(), |p| p.to_string()),
            self.workers,
            seq,
            self.events_in.load(Ordering::Relaxed),
            self.sync_broadcasts.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed)
        ));
        ck::sync_write(&mut w, &sync);
        ck::abandoned_write(&mut w, abandoned.iter().copied());
        for (idx, snap) in snaps.iter().enumerate() {
            snap.ckpt_write(idx, &mut w);
        }
        w.finish()
    }

    fn restore(
        &self,
        text: &str,
        resolve: &crate::SpecResolver<'_>,
    ) -> Result<(), crace_vclock::CkptError> {
        use crate::checkpoint as ck;
        use crace_vclock::ckpt::CkptError;
        let mut r = crace_vclock::CkptReader::new(text, self.checkpoint_kind())?;
        let head = r
            .next_rec()
            .ok_or_else(|| CkptError::at(0, "checkpoint has no `meta` record"))?;
        if head.tag() != "meta" {
            return Err(CkptError::at(
                head.line,
                format!("expected `meta`, found `{}`", head.tag()),
            ));
        }
        let mode = ck::mode_parse(head.word(1)?, head.line)?;
        let provenance_window =
            match head.word(2)? {
                "-" => None,
                p => Some(p.parse::<usize>().map_err(|_| {
                    CkptError::at(head.line, format!("bad provenance window `{p}`"))
                })?),
            };
        let workers: usize = head.num(3)?;
        if mode != self.cfg.mode {
            return Err(ck::config_mismatch(
                head.line,
                "clock mode",
                mode,
                self.cfg.mode,
            ));
        }
        if provenance_window != self.cfg.provenance_window {
            return Err(ck::config_mismatch(
                head.line,
                "provenance window",
                provenance_window,
                self.cfg.provenance_window,
            ));
        }
        if workers != self.workers {
            return Err(ck::config_mismatch(
                head.line,
                "worker count",
                workers,
                self.workers,
            ));
        }
        let seq: u64 = head.num(4)?;
        let events_in: u64 = head.num(5)?;
        let sync_broadcasts: u64 = head.num(6)?;
        let shed: u64 = head.num(7)?;
        let sync = ck::sync_read(&mut r)?;
        let abandoned: HashSet<ThreadId> = ck::abandoned_read(&mut r)?.into_iter().collect();
        let mut snaps = Vec::with_capacity(self.workers);
        for idx in 0..self.workers {
            let rec = r.next_rec().ok_or_else(|| {
                CkptError::at(
                    0,
                    format!("checkpoint ends where `worker {idx}` was expected"),
                )
            })?;
            if rec.tag() != "worker" || rec.num::<usize>(1)? != idx {
                return Err(CkptError::at(
                    rec.line,
                    format!("expected `worker {idx}`, found `{}`", rec.tag()),
                ));
            }
            snaps.push(WorkerSnapshot::ckpt_read(&mut r, idx, resolve)?);
        }
        if let Some(rec) = r.peek() {
            return Err(CkptError::at(
                rec.line,
                format!("unexpected trailing record `{}`", rec.tag()),
            ));
        }
        // Install: discard whatever the pipeline held and load the
        // checkpointed state into ingress and workers.
        let replies: Vec<Arc<Reply>> = (0..self.workers)
            .map(|_| Arc::new(Reply::default()))
            .collect();
        {
            let mut ingress = self.lock_ingress();
            ingress.seq = seq;
            ingress.sync = sync;
            ingress.abandoned = abandoned.clone();
            for ((w, snap), reply) in snaps.drain(..).enumerate().zip(&replies) {
                ingress.pending[w].clear();
                ingress.pending[w].push(Msg::Install(Box::new(snap), Arc::clone(reply)));
                self.flush(&mut ingress, w);
            }
        }
        self.has_abandoned
            .store(!abandoned.is_empty(), Ordering::Relaxed);
        self.shed.store(shed, Ordering::Relaxed);
        self.events_in.store(events_in, Ordering::Relaxed);
        self.sync_broadcasts
            .store(sync_broadcasts, Ordering::Relaxed);
        for reply in &replies {
            reply.wait();
        }
        Ok(())
    }
}

impl Analysis for ParallelRd2 {
    fn name(&self) -> &str {
        "rd2-parallel"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.sync_event(
            &[parent, child],
            || Msg::Fork(parent, child),
            |sync| sync.fork(parent, child),
        );
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.sync_event(
            &[parent, child],
            || Msg::Join(parent, child),
            |sync| sync.join(parent, child),
        );
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.sync_event(
            &[tid],
            || Msg::Acquire(tid, lock),
            |sync| sync.acquire(tid, lock),
        );
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.sync_event(
            &[tid],
            || Msg::Release(tid, lock),
            |sync| sync.release(tid, lock),
        );
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        let mut ingress = self.lock_ingress();
        if self.sheds(&ingress, &[tid]) {
            return;
        }
        ingress.seq += 1;
        let seq = ingress.seq;
        self.events_in.fetch_add(1, Ordering::Relaxed);
        let w = self.route(action.obj());
        self.enqueue(
            &mut ingress,
            w,
            Msg::Action {
                seq,
                tid,
                action: action.clone(),
            },
        );
    }

    /// Finalizes a dead thread exactly as the serial detectors do: later
    /// events naming it are shed at the ingress, and every worker retires
    /// its clock slot in-stream (no happens-before edges introduced).
    fn abandon_thread(&self, tid: ThreadId) {
        let mut ingress = self.lock_ingress();
        ingress.abandoned.insert(tid);
        ingress.sync.retire(tid);
        self.has_abandoned.store(true, Ordering::Relaxed);
        for w in 0..self.workers {
            self.enqueue(&mut ingress, w, Msg::Abandon(tid));
        }
    }

    /// The deterministic merge: flushes the pipeline, gathers per-worker
    /// findings at a barrier, stably sorts the sampled races by the global
    /// ingress sequence number of their action, and rebuilds the report —
    /// bit-for-bit what the serial detector would have produced.
    fn report(&self) -> RaceReport {
        let _span = self.trace.as_ref().map(|t| t.lane.span(t.p_merge));
        let findings = self.collect();
        let mut detailed: Vec<(u64, RaceRecord)> = Vec::new();
        for f in &findings {
            detailed.extend(f.detailed.iter().cloned());
        }
        // Stable by construction: sequence numbers are unique per action,
        // and a single action's multiple hits live on one worker in
        // detection order.
        detailed.sort_by_key(|&(seq, _)| seq);
        let mut report = RaceReport::new();
        for (_, record) in detailed {
            report.record(record);
        }
        for f in &findings {
            report.merge(&f.overflow);
        }
        report
    }
}

impl Drop for ParallelRd2 {
    fn drop(&mut self) {
        {
            let mut ingress = self.lock_ingress();
            for w in 0..self.workers {
                self.flush(&mut ingress, w);
            }
        }
        for ring in &self.rings {
            ring.close();
        }
        for handle in self
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// A worker's private shadow state: its replica of the synchronization
/// clocks, the object states it owns, and its race findings.
struct WorkerState {
    mode: ClockMode,
    provenance_window: Option<usize>,
    gc_every: usize,
    sync: SyncClocks,
    /// Thread clocks installed by a shared stream's precomputed
    /// [`ClockSet`]s; supersedes `sync` until the end-of-ingestion
    /// [`Msg::SyncState`] reconciliation clears it.
    overlay: HashMap<ThreadId, Arc<VectorClock>>,
    registry: HashMap<ObjId, Arc<CompiledSpec>>,
    objects: HashMap<ObjId, ObjState>,
    detailed: Vec<(u64, RaceRecord)>,
    overflow: RaceReport,
    /// Threads that may still produce events (observed − joined −
    /// abandoned); the GC watermark is the meet of their clocks.
    live: HashSet<ThreadId>,
    since_gc: usize,
    gc_retired: u64,
    /// Counters folded out of object states dropped by the GC, so probe
    /// and clock statistics survive state reclamation.
    folded_probes: u64,
    folded_stats: ClockStats,
    /// Tracing handles for the GC sweep span; `None` when untraced.
    trace: Option<WorkerTrace>,
}

impl WorkerState {
    fn new(cfg: &ParallelConfig, trace: Option<WorkerTrace>) -> WorkerState {
        WorkerState {
            mode: cfg.mode,
            provenance_window: cfg.provenance_window,
            gc_every: cfg.gc_every,
            sync: SyncClocks::new(),
            overlay: HashMap::new(),
            registry: HashMap::new(),
            objects: HashMap::new(),
            detailed: Vec::new(),
            overflow: RaceReport::with_sample_capacity(0),
            live: HashSet::new(),
            since_gc: 0,
            gc_retired: 0,
            folded_probes: 0,
            folded_stats: ClockStats::default(),
            trace,
        }
    }

    fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.sync.fork(parent, child);
        if self.gc_every > 0 {
            self.live.insert(parent);
            self.live.insert(child);
        }
    }

    fn join(&mut self, parent: ThreadId, child: ThreadId) {
        self.sync.join(parent, child);
        if self.gc_every > 0 {
            self.live.insert(parent);
            // A joined thread emits no further events (well-formed
            // traces), so its frozen clock no longer holds the watermark
            // back.
            self.live.remove(&child);
        }
    }

    fn acquire(&mut self, tid: ThreadId, lock: LockId) {
        self.sync.acquire(tid, lock);
        if self.gc_every > 0 {
            self.live.insert(tid);
        }
    }

    fn release(&mut self, tid: ThreadId, lock: LockId) {
        self.sync.release(tid, lock);
        if self.gc_every > 0 {
            self.live.insert(tid);
        }
    }

    /// Installs one precomputed clock update from a shared stream: an
    /// `Arc` pointer swap instead of replaying the sync event's join.
    fn clock_set(&mut self, set: &ClockSet) {
        self.overlay.insert(set.tid, Arc::clone(&set.clock));
        if self.gc_every > 0 {
            if set.dead {
                self.live.remove(&set.tid);
            } else {
                self.live.insert(set.tid);
            }
        }
    }

    /// Applies one message; returns how many events of this worker's
    /// sub-stream it processed (for the occupancy counters). Takes the
    /// message by reference so the worker loop can journal processed
    /// batches for heal replay without cloning the hot path.
    fn process(&mut self, msg: &Msg) -> u64 {
        match msg {
            Msg::Fork(parent, child) => self.fork(*parent, *child),
            Msg::Join(parent, child) => self.join(*parent, *child),
            Msg::Acquire(tid, lock) => self.acquire(*tid, *lock),
            Msg::Release(tid, lock) => self.release(*tid, *lock),
            Msg::Action { seq, tid, action } => self.action(*seq, *tid, action),
            Msg::Shared {
                base,
                trace,
                picks,
                sets,
            } => {
                let events = trace.events();
                let mut next = 0usize;
                for &off in picks {
                    while next < sets.len() && sets[next].off < off {
                        self.clock_set(&sets[next]);
                        next += 1;
                    }
                    // The ingress only picks action offsets; anything else
                    // would be an indexing bug, so don't detect on it.
                    if let Event::Action { tid, action } = &events[off as usize] {
                        self.action(*base + 1 + u64::from(off), *tid, action);
                    }
                }
                // Updates past the last pick still matter: a later chunk's
                // actions read the overlay left by this one.
                for set in &sets[next..] {
                    self.clock_set(set);
                }
                return picks.len() as u64;
            }
            Msg::SyncState(state) => {
                self.sync = (**state).clone();
                self.overlay.clear();
            }
            Msg::Register(obj, spec) => {
                // Re-registration resets the object's state, as in the
                // serial detectors.
                self.objects.remove(obj);
                self.registry.insert(*obj, Arc::clone(spec));
            }
            Msg::Forget(obj) => {
                self.registry.remove(obj);
                self.objects.remove(obj);
            }
            Msg::Abandon(tid) => {
                self.sync.retire(*tid);
                self.overlay.remove(tid);
                self.live.remove(tid);
            }
            Msg::Poison => panic!("injected worker panic"),
            // Handled by the worker loop, never forwarded here.
            Msg::Collect(_) | Msg::Snapshot(_) | Msg::Install(..) => {
                unreachable!("barriers handled by the worker loop")
            }
        }
        1
    }

    /// Clones the data fields into a [`WorkerSnapshot`].
    fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            sync: self.sync.clone(),
            overlay: self.overlay.clone(),
            registry: self.registry.clone(),
            objects: self.objects.clone(),
            detailed: self.detailed.clone(),
            overflow: self.overflow.clone(),
            live: self.live.clone(),
            since_gc: self.since_gc,
            gc_retired: self.gc_retired,
            folded_probes: self.folded_probes,
            folded_stats: self.folded_stats,
        }
    }

    /// Replaces the data fields with `snap`, keeping configuration and
    /// tracing handles.
    fn install(&mut self, snap: WorkerSnapshot) {
        self.sync = snap.sync;
        self.overlay = snap.overlay;
        self.registry = snap.registry;
        self.objects = snap.objects;
        self.detailed = snap.detailed;
        self.overflow = snap.overflow;
        self.live = snap.live;
        self.since_gc = snap.since_gc;
        self.gc_retired = snap.gc_retired;
        self.folded_probes = snap.folded_probes;
        self.folded_stats = snap.folded_stats;
    }

    /// A fresh worker rebuilt from a supervision snapshot.
    fn from_snapshot(
        snap: WorkerSnapshot,
        cfg: &ParallelConfig,
        trace: Option<WorkerTrace>,
    ) -> WorkerState {
        let mut state = WorkerState::new(cfg, trace);
        state.install(snap);
        state
    }

    fn action(&mut self, seq: u64, tid: ThreadId, action: &Action) {
        let Some(spec) = self.registry.get(&action.obj()) else {
            return;
        };
        if self.gc_every > 0 {
            self.live.insert(tid);
        }
        let want_detail = self.provenance_window.is_some() && self.detailed.len() < SAMPLE_CAP;
        let (mode, window) = (self.mode, self.provenance_window);
        let state = self
            .objects
            .entry(action.obj())
            .or_insert_with(|| match window {
                Some(w) => ObjState::with_provenance(mode, w),
                None => ObjState::with_mode(mode),
            });
        let clock = match self.overlay.get(&tid) {
            Some(clock) => clock.as_ref(),
            None => self.sync.clock(tid),
        };
        let hits = state.on_action_detailed(spec, action, tid, clock, want_detail);
        if !hits.is_empty() {
            let kind = RaceKind::Commutativity { obj: action.obj() };
            for hit in hits {
                if self.detailed.len() < SAMPLE_CAP {
                    self.detailed.push((
                        seq,
                        RaceRecord {
                            kind: kind.clone(),
                            tid,
                            action: Some(action.clone()),
                            detail: format!(
                                "{} touched {} conflicting with active {}",
                                action,
                                spec.label(hit.touched),
                                spec.label(hit.conflicting)
                            ),
                            provenance: hit.provenance,
                        },
                    ));
                } else {
                    // Count-only: capacity 0 means the closure never runs.
                    self.overflow
                        .record_with(kind.clone(), || unreachable!("sample capacity is 0"));
                }
            }
        }
        self.maybe_gc();
    }

    /// The epoch-GC sweep: when due, computes the watermark (meet of all
    /// live thread clocks) and retires dominated access points. Whole
    /// object states emptied by the sweep are reclaimed (their counters
    /// folded), except in provenance mode where the event window must
    /// survive for later explanations.
    fn maybe_gc(&mut self) {
        if self.gc_every == 0 {
            return;
        }
        self.since_gc += 1;
        if self.since_gc < self.gc_every {
            return;
        }
        self.since_gc = 0;
        let _span = self.trace.as_ref().map(|t| t.lane.span(t.p_gc));
        let mut watermark: Option<VectorClock> = None;
        for &tid in &self.live {
            match self.sync.peek_clock(tid) {
                Some(clock) => match &mut watermark {
                    Some(wm) => wm.meet_in_place(clock),
                    None => watermark = Some(clock.clone()),
                },
                // A live thread without an initialized clock: skip the
                // sweep rather than retire against a wrong bound.
                None => return,
            }
        }
        // No live thread at all: be conservative and keep everything (a
        // fresh root thread could still appear in a hand-written trace).
        let Some(watermark) = watermark else { return };
        let keep_empty = self.provenance_window.is_some();
        let mut retired = 0u64;
        let mut folded_probes = 0u64;
        let mut folded_stats = ClockStats::default();
        self.objects.retain(|_, state| {
            retired += state.retire_quiesced(&watermark) as u64;
            if state.num_active() == 0 && !keep_empty {
                folded_probes += state.num_probes();
                folded_stats.merge(&state.clock_stats());
                false
            } else {
                true
            }
        });
        self.gc_retired += retired;
        self.folded_probes += folded_probes;
        self.folded_stats.merge(&folded_stats);
    }

    fn findings(&self) -> WorkerFindings {
        let mut clock_stats = self.folded_stats;
        let mut probes = self.folded_probes;
        for state in self.objects.values() {
            clock_stats.merge(&state.clock_stats());
            probes += state.num_probes();
        }
        WorkerFindings {
            detailed: self.detailed.clone(),
            overflow: self.overflow.clone(),
            clock_stats,
            probes,
            gc_retired: self.gc_retired,
        }
    }
}

/// The supervisor's view of one worker: the last known-good snapshot and
/// the journal of batches processed since. Each journal entry carries the
/// index of the first message to replay (messages before it are already
/// folded into the snapshot by a mid-batch install or heal).
struct Supervisor {
    snap: Option<Box<WorkerSnapshot>>,
    journal: Vec<(Vec<Msg>, usize)>,
    events_since_snap: u64,
}

impl Supervisor {
    /// Refreshes the snapshot to `state`'s current value and recycles the
    /// journal buffers back to the ring.
    fn refresh(&mut self, state: &WorkerState, ring: &Ring) {
        self.snap = Some(Box::new(state.snapshot()));
        for (batch, _) in self.journal.drain(..) {
            ring.recycle(batch);
        }
        self.events_since_snap = 0;
    }

    /// Rebuilds a worker from the snapshot, replaying the journal and the
    /// current batch up to (but excluding) the panicking message at
    /// `batch[at]`. Returns the healed state and the number of events
    /// replayed, or `None` when the replay itself panics (healing failed
    /// — the caller degrades).
    fn replay(
        &self,
        cfg: &ParallelConfig,
        trace: &Option<WorkerTrace>,
        batch: &[Msg],
        from: usize,
        at: usize,
    ) -> Option<(WorkerState, u64)> {
        let base = self.snap.as_ref()?;
        let mut fresh = WorkerState::from_snapshot((**base).clone(), cfg, trace.clone());
        let mut replayed = 0u64;
        let ok = catch_unwind(AssertUnwindSafe(|| {
            for (b, start) in &self.journal {
                for msg in &b[*start..] {
                    if msg.is_control() {
                        continue;
                    }
                    replayed += fresh.process(msg);
                }
            }
            for msg in &batch[from..at] {
                if msg.is_control() {
                    continue;
                }
                replayed += fresh.process(msg);
            }
        }));
        ok.ok().map(|()| (fresh, replayed))
    }
}

/// The worker loop: drain batches, process each message under a panic
/// shield, answer report/checkpoint barriers even when degraded, and heal
/// from the supervision snapshot when a panic hits pure detection work.
fn worker_main(ring: &Ring, shared: &WorkerShared, cfg: &ParallelConfig, w: usize) {
    let trace = cfg.tracer.as_ref().map(|t| WorkerTrace {
        lane: t.lane(&format!("worker{w}")),
        p_batch: t.phase("parallel.worker"),
        p_gc: t.phase("parallel.gc"),
        p_heal: t.phase("parallel.heal"),
    });
    let mut state = WorkerState::new(cfg, trace.clone());
    let supervise = cfg.snapshot_every > 0;
    let mut sup = Supervisor {
        snap: supervise.then(|| Box::new(state.snapshot())),
        journal: Vec::new(),
        events_since_snap: 0,
    };
    while let Some(batch) = ring.pop(shared) {
        shared.batches.fetch_add(1, Ordering::Relaxed);
        // The batch span's `aux` accumulates exactly what `events` gets:
        // the span-derived per-worker occupancy share is the counter-based
        // `parallel.*` one by construction.
        let mut span = trace.as_ref().map(|t| t.lane.span(t.p_batch));
        // First index of this batch not yet folded into the snapshot.
        let mut replay_from = 0usize;
        for idx in 0..batch.len() {
            match &batch[idx] {
                Msg::Collect(reply) => {
                    // Fail-open report path: a panic while snapshotting
                    // trips the quarantine and answers with what we have.
                    let findings = catch_unwind(AssertUnwindSafe(|| state.findings()))
                        .unwrap_or_else(|_| {
                            shared.panics.fetch_add(1, Ordering::Relaxed);
                            shared.degraded.store(true, Ordering::Relaxed);
                            WorkerFindings::default()
                        });
                    reply.fill(findings);
                    continue;
                }
                Msg::Snapshot(reply) => {
                    // Checkpoint barrier: even a degraded worker answers
                    // with what it has (fail-open, like Collect).
                    let snapshot = catch_unwind(AssertUnwindSafe(|| state.snapshot()))
                        .unwrap_or_else(|_| {
                            shared.panics.fetch_add(1, Ordering::Relaxed);
                            shared.degraded.store(true, Ordering::Relaxed);
                            WorkerSnapshot::empty()
                        });
                    reply.fill(snapshot);
                    continue;
                }
                Msg::Install(snapshot, reply) => {
                    // Restore barrier: replace the shadow state wholesale
                    // and clear any degradation — the state is rebuilt, so
                    // the quarantine reason is gone.
                    state.install((**snapshot).clone());
                    shared.degraded.store(false, Ordering::Relaxed);
                    if supervise {
                        sup.refresh(&state, ring);
                        replay_from = idx + 1;
                    }
                    reply.fill(WorkerFindings::default());
                    continue;
                }
                _ => {}
            }
            if shared.degraded.load(Ordering::Relaxed) {
                shared
                    .shed
                    .fetch_add(batch[idx].weight(), Ordering::Relaxed);
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| state.process(&batch[idx]))) {
                Ok(processed) => {
                    shared.events.fetch_add(processed, Ordering::Relaxed);
                    sup.events_since_snap += processed;
                    if let Some(span) = span.as_mut() {
                        span.add_aux(processed);
                    }
                }
                Err(_) => {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    let healed = batch[idx].heals_by_skipping() && sup.snap.is_some() && {
                        let started = std::time::Instant::now();
                        let _hspan = trace.as_ref().map(|t| t.lane.span(t.p_heal));
                        match sup.replay(cfg, &trace, &batch, replay_from, idx) {
                            Some((fresh, replayed)) => {
                                state = fresh;
                                // The poisoned message is skipped —
                                // shed, exactly one.
                                shared
                                    .shed
                                    .fetch_add(batch[idx].weight().max(1), Ordering::Relaxed);
                                shared.respawns.fetch_add(1, Ordering::Relaxed);
                                shared.healed_events.fetch_add(replayed, Ordering::Relaxed);
                                shared.heal_micros.fetch_add(
                                    started.elapsed().as_micros() as u64,
                                    Ordering::Relaxed,
                                );
                                // Re-baseline right away so the skipped
                                // message never re-enters a replay.
                                sup.refresh(&state, ring);
                                replay_from = idx + 1;
                                true
                            }
                            None => false,
                        }
                    };
                    if !healed {
                        // Healing impossible (sync-class message, no
                        // snapshot) or the replay panicked too: quarantine.
                        shared.degraded.store(true, Ordering::Relaxed);
                        sup.snap = None;
                        for (b, _) in sup.journal.drain(..) {
                            ring.recycle(b);
                        }
                    }
                }
            }
        }
        drop(span);
        if supervise && sup.snap.is_some() {
            sup.journal.push((batch, replay_from));
            if sup.events_since_snap >= cfg.snapshot_every as u64 {
                sup.refresh(&state, ring);
            }
        } else {
            ring.recycle(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use crate::Rd2;
    use crace_model::Value;
    use crace_spec::builtin;

    fn dict_pair() -> (crace_spec::Spec, Arc<CompiledSpec>) {
        let spec = builtin::dictionary();
        let compiled = Arc::new(translate(&spec).unwrap());
        (spec, compiled)
    }

    fn put(spec: &crace_spec::Spec, obj: u64, k: i64, v: i64, prev: Value) -> Action {
        Action::new(
            ObjId(obj),
            spec.method_id("put").unwrap(),
            vec![Value::Int(k), Value::Int(v)],
            prev,
        )
    }

    /// Runs `f` with the default panic hook silenced, so intentional
    /// worker panics don't spam test output.
    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    /// The cap mirrored in this module must match the report machinery's
    /// default, or the merged sample set would diverge from serial.
    #[test]
    fn sample_cap_matches_report_default() {
        let mut report = RaceReport::new();
        for i in 0..SAMPLE_CAP + 5 {
            assert_eq!(report.wants_detail(), i < SAMPLE_CAP, "at {i}");
            report.record(RaceRecord {
                kind: RaceKind::Commutativity { obj: ObjId(1) },
                tid: ThreadId(0),
                action: None,
                detail: String::new(),
                provenance: None,
            });
        }
        assert_eq!(report.samples().len(), SAMPLE_CAP);
    }

    #[test]
    fn detects_the_running_example_race_at_any_width() {
        let (spec, compiled) = dict_pair();
        for workers in [1, 2, 4] {
            let rd2 = ParallelRd2::new(workers);
            rd2.register(ObjId(1), Arc::clone(&compiled));
            rd2.on_fork(ThreadId(0), ThreadId(1));
            rd2.on_fork(ThreadId(0), ThreadId(2));
            rd2.on_action(ThreadId(2), &put(&spec, 1, 5, 1, Value::Nil));
            rd2.on_action(ThreadId(1), &put(&spec, 1, 5, 2, Value::Int(1)));
            let report = rd2.report();
            assert_eq!(report.total(), 1, "workers={workers}");
            assert_eq!(report.distinct(), 1, "workers={workers}");
        }
    }

    #[test]
    fn merged_report_equals_serial_rd2_across_objects() {
        let (spec, compiled) = dict_pair();
        let parallel = ParallelRd2::with_config(
            3,
            ParallelConfig {
                batch: 2, // force multi-batch delivery
                ..ParallelConfig::default()
            },
        );
        let serial = Rd2::new();
        for obj in 1..=8u64 {
            parallel.register(ObjId(obj), Arc::clone(&compiled));
            serial.register(ObjId(obj), Arc::clone(&compiled));
        }
        let drive = |a: &dyn Analysis| {
            a.on_fork(ThreadId(0), ThreadId(1));
            a.on_fork(ThreadId(0), ThreadId(2));
            for obj in 1..=8u64 {
                a.on_action(ThreadId(1), &put(&spec, obj, 1, 1, Value::Nil));
                a.on_action(ThreadId(2), &put(&spec, obj, 1, 2, Value::Int(1)));
            }
            a.on_join(ThreadId(0), ThreadId(1));
            a.on_action(ThreadId(0), &put(&spec, 3, 1, 3, Value::Int(2)));
        };
        drive(&parallel);
        drive(&serial);
        assert_eq!(parallel.report(), serial.report());
    }

    /// A recorded trace exercising every event kind the shared path
    /// handles: forks, racing puts across several objects, a
    /// lock-protected action, and a join.
    fn recorded_trace(spec: &crace_spec::Spec) -> Trace {
        let mut trace = Trace::new();
        for t in 1..=3 {
            trace.push(Event::Fork {
                parent: ThreadId(0),
                child: ThreadId(t),
            });
        }
        for obj in 1..=6u64 {
            trace.push(Event::Action {
                tid: ThreadId(1),
                action: put(spec, obj, 1, 1, Value::Nil),
            });
            trace.push(Event::Action {
                tid: ThreadId(2),
                action: put(spec, obj, 1, 2, Value::Int(1)),
            });
        }
        trace.push(Event::Acquire {
            tid: ThreadId(3),
            lock: LockId(1),
        });
        trace.push(Event::Action {
            tid: ThreadId(3),
            action: put(spec, 1, 9, 1, Value::Nil),
        });
        trace.push(Event::Release {
            tid: ThreadId(3),
            lock: LockId(1),
        });
        trace.push(Event::Join {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        trace
    }

    #[test]
    fn shared_ingestion_matches_per_event_dispatch_and_serial() {
        let (spec, compiled) = dict_pair();
        let trace = Arc::new(recorded_trace(&spec));
        let serial = Rd2::new();
        for obj in 1..=6u64 {
            serial.register(ObjId(obj), Arc::clone(&compiled));
        }
        let expected = crace_model::replay(&trace, &serial);
        for workers in [1usize, 3] {
            for batch in [1usize, 4, 512] {
                let rd2 = ParallelRd2::with_config(
                    workers,
                    ParallelConfig {
                        batch,
                        ..ParallelConfig::default()
                    },
                );
                for obj in 1..=6u64 {
                    rd2.register(ObjId(obj), Arc::clone(&compiled));
                }
                rd2.ingest_shared(&trace);
                assert_eq!(rd2.report(), expected, "workers={workers} batch={batch}");
                assert_eq!(rd2.stats().events_in, trace.len() as u64);
            }
        }
    }

    /// GC must stay report-preserving on the shared path too, where the
    /// watermark is computed from the (possibly stale) private replica
    /// while overlay clocks are fresher — stale clocks only make the
    /// watermark smaller, i.e. the sweep more conservative.
    #[test]
    fn shared_ingestion_with_gc_matches_gc_off() {
        let (spec, compiled) = dict_pair();
        let trace = Arc::new(recorded_trace(&spec));
        let run = |gc_every: usize| {
            let rd2 = ParallelRd2::with_config(
                2,
                ParallelConfig {
                    gc_every,
                    batch: 4,
                    ..ParallelConfig::default()
                },
            );
            for obj in 1..=6u64 {
                rd2.register(ObjId(obj), Arc::clone(&compiled));
            }
            rd2.ingest_shared(&trace);
            rd2.report()
        };
        assert_eq!(run(3), run(0));
    }

    #[test]
    fn shared_ingestion_falls_back_to_the_shed_filter_after_abandonment() {
        let (spec, compiled) = dict_pair();
        let rd2 = ParallelRd2::new(2);
        rd2.register(ObjId(1), Arc::clone(&compiled));
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_fork(ThreadId(0), ThreadId(2));
        rd2.abandon_thread(ThreadId(2));
        let mut trace = Trace::new();
        trace.push(Event::Action {
            tid: ThreadId(1),
            action: put(&spec, 1, 1, 1, Value::Nil),
        });
        trace.push(Event::Action {
            tid: ThreadId(2), // abandoned: must be shed, not detected
            action: put(&spec, 1, 1, 9, Value::Int(1)),
        });
        trace.push(Event::Action {
            tid: ThreadId(0),
            action: put(&spec, 1, 1, 2, Value::Int(1)),
        });
        rd2.ingest_shared(&Arc::new(trace));
        assert_eq!(rd2.events_shed(), 1);
        assert_eq!(rd2.report().total(), 1);
    }

    #[test]
    fn report_is_deterministic_across_collections() {
        let (spec, compiled) = dict_pair();
        let rd2 = ParallelRd2::new(4);
        for obj in 1..=16u64 {
            rd2.register(ObjId(obj), Arc::clone(&compiled));
        }
        rd2.on_fork(ThreadId(0), ThreadId(1));
        for obj in 1..=16u64 {
            rd2.on_action(ThreadId(0), &put(&spec, obj, 1, 1, Value::Nil));
            rd2.on_action(ThreadId(1), &put(&spec, obj, 1, 2, Value::Int(1)));
        }
        let first = rd2.report();
        assert_eq!(first.total(), 16);
        for _ in 0..5 {
            assert_eq!(rd2.report(), first);
        }
    }

    #[test]
    fn abandonment_sheds_at_the_ingress_like_serial() {
        let (spec, compiled) = dict_pair();
        let rd2 = ParallelRd2::new(2);
        rd2.register(ObjId(1), Arc::clone(&compiled));
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_fork(ThreadId(0), ThreadId(2));
        rd2.on_action(ThreadId(1), &put(&spec, 1, 1, 1, Value::Nil));
        rd2.abandon_thread(ThreadId(1));
        rd2.on_action(ThreadId(1), &put(&spec, 1, 1, 9, Value::Int(1)));
        rd2.on_join(ThreadId(0), ThreadId(1));
        assert_eq!(rd2.events_shed(), 2);
        rd2.on_action(ThreadId(2), &put(&spec, 1, 1, 2, Value::Int(1)));
        assert_eq!(rd2.report().total(), 1, "{:?}", rd2.report());
    }

    #[test]
    fn injected_worker_panic_heals_and_matches_serial() {
        quiet(|| {
            let (spec, compiled) = dict_pair();
            // Supervision on (the default): the worker rebuilds from its
            // snapshot, replays its journal, skips only the poison, and
            // the final report is bit-for-bit the serial one.
            let rd2 = ParallelRd2::new(1);
            let serial = Rd2::new();
            rd2.register(ObjId(1), Arc::clone(&compiled));
            serial.register(ObjId(1), Arc::clone(&compiled));
            let pre = |a: &dyn Analysis| {
                a.on_fork(ThreadId(0), ThreadId(1));
                a.on_action(ThreadId(0), &put(&spec, 1, 1, 1, Value::Nil));
                a.on_action(ThreadId(1), &put(&spec, 1, 1, 2, Value::Int(1)));
            };
            let post = |a: &dyn Analysis| {
                a.on_action(ThreadId(0), &put(&spec, 1, 2, 1, Value::Nil));
                a.on_action(ThreadId(1), &put(&spec, 1, 2, 2, Value::Int(1)));
            };
            pre(&rd2);
            rd2.inject_worker_panic(0);
            post(&rd2);
            pre(&serial);
            post(&serial);
            assert_eq!(rd2.report(), serial.report(), "healed run equals serial");
            assert!(!rd2.degraded(), "healed, not quarantined");
            let stats = rd2.stats();
            assert_eq!(stats.workers[0].panics, 1);
            assert_eq!(stats.workers[0].respawns, 1);
            assert_eq!(stats.workers[0].events_shed, 1, "only the poison is shed");
        });
    }

    #[test]
    fn repeated_panics_heal_across_snapshot_refreshes() {
        quiet(|| {
            let (spec, compiled) = dict_pair();
            // Tiny batches and a tiny snapshot interval: heals replay
            // partially from refreshed snapshots, repeatedly.
            let rd2 = ParallelRd2::with_config(
                2,
                ParallelConfig {
                    batch: 1,
                    snapshot_every: 2,
                    ..ParallelConfig::default()
                },
            );
            let serial = Rd2::new();
            for obj in 1..=4u64 {
                rd2.register(ObjId(obj), Arc::clone(&compiled));
                serial.register(ObjId(obj), Arc::clone(&compiled));
            }
            let drive = |a: &dyn Analysis, chaos: bool| {
                a.on_fork(ThreadId(0), ThreadId(1));
                for round in 0..3i64 {
                    for obj in 1..=4u64 {
                        a.on_action(ThreadId(0), &put(&spec, obj, round, 1, Value::Nil));
                        a.on_action(ThreadId(1), &put(&spec, obj, round, 2, Value::Int(1)));
                    }
                    if chaos {
                        rd2.inject_worker_panic(0);
                        rd2.inject_worker_panic(1);
                    }
                }
            };
            drive(&rd2, true);
            drive(&serial, false);
            assert_eq!(rd2.report(), serial.report());
            assert!(!rd2.degraded());
            let stats = rd2.stats();
            assert_eq!(stats.workers.iter().map(|w| w.respawns).sum::<u64>(), 6);
        });
    }

    #[test]
    fn panic_without_supervision_degrades_fail_open() {
        quiet(|| {
            let (spec, compiled) = dict_pair();
            // snapshot_every: 0 turns supervision off — the legacy
            // degrade-forever contract: the race before the poison
            // survives, events after it are shed, report still works.
            let rd2 = ParallelRd2::with_config(
                1,
                ParallelConfig {
                    snapshot_every: 0,
                    ..ParallelConfig::default()
                },
            );
            rd2.register(ObjId(1), Arc::clone(&compiled));
            rd2.on_fork(ThreadId(0), ThreadId(1));
            rd2.on_action(ThreadId(0), &put(&spec, 1, 1, 1, Value::Nil));
            rd2.on_action(ThreadId(1), &put(&spec, 1, 1, 2, Value::Int(1)));
            rd2.inject_worker_panic(0);
            rd2.on_action(ThreadId(0), &put(&spec, 1, 2, 1, Value::Nil));
            rd2.on_action(ThreadId(1), &put(&spec, 1, 2, 2, Value::Int(1)));
            let report = rd2.report();
            assert_eq!(report.total(), 1, "pre-panic race kept, no invented races");
            assert!(rd2.degraded());
            let stats = rd2.stats();
            assert_eq!(stats.workers[0].panics, 1);
            assert!(stats.workers[0].events_shed >= 2);
            assert_eq!(stats.workers[0].respawns, 0);
        });
    }

    #[test]
    fn checkpoint_restore_resumes_bit_for_bit() {
        use crate::Checkpoint;
        let (spec, compiled) = dict_pair();
        let resolver = crate::builtin_resolver();
        for workers in [1usize, 2, 4] {
            let cfg = ParallelConfig {
                batch: 2,
                provenance_window: Some(4),
                ..ParallelConfig::default()
            };
            let rd2 = ParallelRd2::with_config(workers, cfg.clone());
            for obj in 1..=6u64 {
                rd2.register(ObjId(obj), Arc::clone(&compiled));
            }
            rd2.on_fork(ThreadId(0), ThreadId(1));
            rd2.on_fork(ThreadId(0), ThreadId(2));
            for obj in 1..=6u64 {
                rd2.on_action(ThreadId(1), &put(&spec, obj, 1, 1, Value::Nil));
            }
            let blob = rd2.checkpoint();
            let restored = ParallelRd2::with_config(workers, cfg.clone());
            restored.restore(&blob, &resolver).unwrap();
            // The suffix after the checkpoint runs on both pipelines.
            for a in [&rd2, &restored] {
                for obj in 1..=6u64 {
                    a.on_action(ThreadId(2), &put(&spec, obj, 1, 2, Value::Int(1)));
                }
                a.on_join(ThreadId(0), ThreadId(1));
            }
            let (expected, resumed) = (rd2.report(), restored.report());
            assert_eq!(resumed, expected, "workers={workers}");
            assert_eq!(resumed.to_json(), expected.to_json(), "workers={workers}");
            assert_eq!(restored.stats().events_in, rd2.stats().events_in);
        }
    }

    #[test]
    fn checkpoint_restore_rejects_config_mismatch() {
        use crate::Checkpoint;
        let (_spec, compiled) = dict_pair();
        let resolver = crate::builtin_resolver();
        let rd2 = ParallelRd2::new(2);
        rd2.register(ObjId(1), Arc::clone(&compiled));
        let blob = rd2.checkpoint();
        // Different worker count: fail closed.
        let other = ParallelRd2::new(3);
        assert!(other.restore(&blob, &resolver).is_err());
        // Different provenance configuration: fail closed.
        let other = ParallelRd2::with_provenance(2, 8);
        assert!(other.restore(&blob, &resolver).is_err());
        // Same shape: restores.
        let same = ParallelRd2::new(2);
        same.restore(&blob, &resolver).unwrap();
        assert!(same.report().is_empty());
    }

    #[test]
    fn restore_heals_a_degraded_pipeline() {
        use crate::Checkpoint;
        quiet(|| {
            let (spec, compiled) = dict_pair();
            let resolver = crate::builtin_resolver();
            let cfg = ParallelConfig {
                snapshot_every: 0, // supervision off: poison quarantines
                ..ParallelConfig::default()
            };
            let rd2 = ParallelRd2::with_config(1, cfg.clone());
            rd2.register(ObjId(1), Arc::clone(&compiled));
            rd2.on_fork(ThreadId(0), ThreadId(1));
            let blob = rd2.checkpoint();
            rd2.inject_worker_panic(0);
            let _ = rd2.report(); // deliver the poison
            assert!(rd2.degraded());
            // Installing a checkpoint rebuilds the state and clears the
            // quarantine.
            rd2.restore(&blob, &resolver).unwrap();
            assert!(!rd2.degraded());
            rd2.on_action(ThreadId(0), &put(&spec, 1, 1, 1, Value::Nil));
            rd2.on_action(ThreadId(1), &put(&spec, 1, 1, 2, Value::Int(1)));
            assert_eq!(rd2.report().total(), 1);
        });
    }

    #[test]
    fn gc_on_and_off_report_identically_and_gc_retires() {
        let (spec, compiled) = dict_pair();
        let gc = ParallelRd2::with_config(
            2,
            ParallelConfig {
                gc_every: 4,
                ..ParallelConfig::default()
            },
        );
        let plain = ParallelRd2::new(2);
        for rd2 in [&gc, &plain] {
            rd2.register(ObjId(1), Arc::clone(&compiled));
            rd2.register(ObjId(2), Arc::clone(&compiled));
        }
        let drive = |a: &dyn Analysis| {
            // Fork/join generations touching generation-unique keys: once a
            // generation is joined back, its points are dominated by every
            // later clock and the next watermark sweep retires them. The
            // two children of each generation race on shared keys, so GC
            // must also preserve already-found races exactly.
            let root = ThreadId(0);
            for g in 0..6u32 {
                let (c1, c2) = (ThreadId(2 * g + 1), ThreadId(2 * g + 2));
                a.on_fork(root, c1);
                a.on_fork(root, c2);
                for i in 0..4i64 {
                    let key = 10 * i64::from(g) + i;
                    let obj = 1 + (i as u64 % 2);
                    a.on_action(c1, &put(&spec, obj, key, 1, Value::Nil));
                }
                for i in 0..4i64 {
                    let key = 10 * i64::from(g) + i;
                    let obj = 1 + (i as u64 % 2);
                    a.on_action(c2, &put(&spec, obj, key, 2, Value::Int(1)));
                }
                a.on_join(root, c1);
                a.on_join(root, c2);
            }
        };
        drive(&gc);
        drive(&plain);
        let (gc_report, plain_report) = (gc.report(), plain.report());
        assert_eq!(gc_report, plain_report);
        assert_eq!(
            gc_report.total(),
            24,
            "one race per shared key per generation"
        );
        assert!(gc.gc_retired() > 0, "watermark sweep never retired a point");
        assert_eq!(plain.gc_retired(), 0);
    }

    #[test]
    fn stats_and_feed_expose_worker_occupancy() {
        let (spec, compiled) = dict_pair();
        let rd2 = ParallelRd2::new(2);
        for obj in 1..=4u64 {
            rd2.register(ObjId(obj), Arc::clone(&compiled));
        }
        rd2.on_fork(ThreadId(0), ThreadId(1));
        for obj in 1..=4u64 {
            for i in 0..10i64 {
                rd2.on_action(ThreadId(1), &put(&spec, obj, i, i, Value::Int(7)));
            }
        }
        let _ = rd2.report(); // barrier: everything delivered
        let stats = rd2.stats();
        assert_eq!(stats.events_in, 41);
        assert_eq!(stats.sync_broadcasts, 1);
        let processed: u64 = stats.workers.iter().map(|w| w.events).sum();
        // Each worker processed its actions + registrations + the broadcast fork.
        assert_eq!(processed, 40 + 4 + 2);
        assert!(stats.workers.iter().all(|w| w.events > 0));

        let registry = Registry::new();
        rd2.feed(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("parallel.events_in"),
            Some(&crace_obs::MetricValue::Counter(41))
        );
        assert!(snap.get("parallel.w0.occupancy").is_some());
        assert!(snap.get("parallel.w1.queue_depth_max").is_some());
        // Feeding twice must not double-count.
        rd2.feed(&registry);
        assert_eq!(
            registry.snapshot().get("parallel.events_in"),
            Some(&crace_obs::MetricValue::Counter(41))
        );
    }

    #[test]
    fn forget_and_reregister_reset_state_in_stream() {
        let (spec, compiled) = dict_pair();
        let rd2 = ParallelRd2::new(2);
        rd2.register(ObjId(1), Arc::clone(&compiled));
        rd2.on_fork(ThreadId(0), ThreadId(1));
        rd2.on_action(ThreadId(0), &put(&spec, 1, 1, 1, Value::Nil));
        rd2.forget(ObjId(1));
        // Unregistered: ignored.
        rd2.on_action(ThreadId(1), &put(&spec, 1, 1, 2, Value::Int(1)));
        rd2.register(ObjId(1), Arc::clone(&compiled));
        // Fresh state: no active point to conflict with.
        rd2.on_action(ThreadId(1), &put(&spec, 1, 1, 2, Value::Int(1)));
        assert!(rd2.report().is_empty());
    }
}
