//! The ECL → access-point translation (§6.2) with the Appendix A.3
//! optimization pipeline.
//!
//! The translation first **symbolically enumerates** the unoptimized
//! representation: for every method `m`, the relevant normalized LB atoms
//! `B(Φ, m)` are collected and every β vector (a truth assignment to them)
//! is enumerated, materializing a `ds` point and one point per slot for
//! each `(m, β)`. For every method pair and every `(β₁, β₂)`, the
//! specification formula is β-substituted (Lemma 6.4) leaving an LS
//! residue; a `false` residue yields a `ds`–`ds` conflict (rule 1 of §6.2),
//! and each residual conjunct `xᵢ ≠ yⱼ` yields a value-carrying slot–slot
//! conflict (rule 2).
//!
//! The A.3 **optimization pipeline** ([`A3_PIPELINE`]) then shrinks the
//! representation, one [`OptPass`] at a time:
//!
//! 1. [`OptPass::Consolidate`] — merge same-method points (same role,
//!    different β) with identical conflict neighborhoods.
//! 2. [`OptPass::Drop`] — remove points that participate in no conflict
//!    (e.g. `o:noresize`, `get`'s `ds` point in Fig. 7).
//! 3. [`OptPass::Replace`] — merge points *across* methods with identical
//!    conflict neighborhoods, iterated to a fixpoint in the style of DFA
//!    minimization; this merges `get`'s key point into `o:r:k`.
//! 4. [`OptPass::Cleanup`] — final normalization: dense class numbering,
//!    sorted conflict lists and coalesced labels.
//!
//! Each pass is individually semantics-preserving (Definition 4.5 — the
//! representation conflict relation stays equivalent to `¬ϕ`), which
//! [`translate_with`] makes externally checkable by accepting any pass
//! subsequence; the spec linter audits exactly this differentially.
//!
//! The result guarantees Theorem 6.6: every class conflicts with a bounded
//! number of classes, so Algorithm 1 performs Θ(1) hash lookups per touched
//! point (§5.4).

use crate::points::{
    ClassId, CompiledSpec, MethodTable, PointKind, TouchTemplate, TranslationStats,
};
use crace_model::MethodId;
use crace_spec::{LsResidue, NormAtom, Side, Spec};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Maximum number of normalized LB atoms per method (β vectors are
/// enumerated exhaustively, so this bounds `2^n` blowup).
pub const MAX_ATOMS_PER_METHOD: usize = 16;

/// One optimization pass of the Appendix A.3 pipeline.
///
/// Every pass is semantics-preserving: the compiled conflict relation after
/// the pass is still equivalent to `¬ϕ` in the sense of Definition 4.5.
/// [`translate_with`] runs an arbitrary subsequence, which is how the spec
/// linter audits each pass differentially.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptPass {
    /// Merge same-method points of the same role (ds, or the same slot
    /// index) whose conflict neighborhoods are identical — the
    /// *consolidation* step. This collapses β vectors that a method's
    /// conflicts cannot distinguish.
    Consolidate,
    /// Remove points that participate in no conflict — the *dropping* step.
    /// Such points can never contribute to a race and need not be tracked
    /// at runtime.
    Drop,
    /// Merge points across methods whose conflict neighborhoods are
    /// identical, iterated to a fixpoint — the *replacement* step
    /// (generalized congruence merging in the style of DFA minimization).
    Replace,
    /// Final normalization: dense class renumbering in symbolic order,
    /// sorted deduplicated conflict lists, and coalesced human-readable
    /// labels. Performed during materialization; semantically a no-op.
    Cleanup,
}

impl fmt::Display for OptPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OptPass::Consolidate => "consolidate",
            OptPass::Drop => "drop",
            OptPass::Replace => "replace",
            OptPass::Cleanup => "cleanup",
        };
        f.write_str(name)
    }
}

/// The full Appendix A.3 optimization pipeline, in order.
pub const A3_PIPELINE: [OptPass; 4] = [
    OptPass::Consolidate,
    OptPass::Drop,
    OptPass::Replace,
    OptPass::Cleanup,
];

/// Errors produced by [`translate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A rule is outside the ECL fragment, so no bounded-degree
    /// access-point representation is derivable by this translation.
    NotEcl {
        /// The specification name.
        spec: String,
        /// First method of the offending pair.
        m1: String,
        /// Second method of the offending pair.
        m2: String,
    },
    /// A method's `B(Φ, m)` is too large to enumerate β vectors for.
    TooManyAtoms {
        /// The specification name.
        spec: String,
        /// The offending method.
        method: String,
        /// Number of atoms found.
        count: usize,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotEcl { spec, m1, m2 } => write!(
                f,
                "rule ({m1}, {m2}) of spec `{spec}` is outside ECL; \
                 use the direct detector for this specification"
            ),
            TranslateError::TooManyAtoms {
                spec,
                method,
                count,
            } => write!(
                f,
                "method `{method}` of spec `{spec}` has {count} LB atoms \
                 (limit {MAX_ATOMS_PER_METHOD})"
            ),
        }
    }
}

impl Error for TranslateError {}

/// Symbolic access points of the unoptimized translation (§6.2).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Raw {
    /// `o.m:β:ds`
    Ds { m: u32, beta: usize },
    /// `o.m:β:i:wᵢ` (the value is runtime data; the class is symbolic)
    Slot { m: u32, beta: usize, i: usize },
}

impl Raw {
    fn kind(&self) -> PointKind {
        match self {
            Raw::Ds { .. } => PointKind::Ds,
            Raw::Slot { .. } => PointKind::Slot,
        }
    }
}

/// Translates an ECL specification into its compiled access-point
/// representation.
///
/// # Errors
///
/// * [`TranslateError::NotEcl`] if any rule lies outside the ECL fragment
///   (§6.1). Such specifications can still be checked by the
///   [`crate::DirectDetector`], at Θ(|A|) cost per action.
/// * [`TranslateError::TooManyAtoms`] if a method accumulates more than 16
///   normalized LB atoms.
///
/// # Examples
///
/// ```
/// use crace_core::translate;
/// use crace_spec::builtin;
///
/// let compiled = translate(&builtin::dictionary())?;
/// // Fig. 7: o:w:k, o:r:k, o:size, o:resize.
/// assert_eq!(compiled.num_classes(), 4);
/// # Ok::<(), crace_core::TranslateError>(())
/// ```
pub fn translate(spec: &Spec) -> Result<CompiledSpec, TranslateError> {
    translate_with(spec, &A3_PIPELINE)
}

/// Translates with an explicit subsequence of the A.3 optimization
/// pipeline, for auditing and experimentation.
///
/// `translate_with(spec, &A3_PIPELINE)` is exactly [`translate`];
/// `translate_with(spec, &[])` materializes the raw unoptimized
/// representation of §6.2 (every `(m, β)` `ds` point and slot point, merged
/// with nothing and dropped never). Any subsequence in between runs just
/// those passes, each of which preserves the Definition 4.5 conflict
/// semantics — the spec linter exercises this to check the passes
/// differentially.
///
/// # Errors
///
/// Same conditions as [`translate`].
pub fn translate_with(spec: &Spec, passes: &[OptPass]) -> Result<CompiledSpec, TranslateError> {
    let num_methods = spec.num_methods();

    // B(Φ, m) per method, in fixed order.
    let mut atoms: Vec<Vec<NormAtom>> = Vec::with_capacity(num_methods);
    for m in 0..num_methods {
        let set = spec.lb_atoms(MethodId(m as u32));
        if set.len() > MAX_ATOMS_PER_METHOD {
            return Err(TranslateError::TooManyAtoms {
                spec: spec.name().to_string(),
                method: spec.sig(MethodId(m as u32)).name().to_string(),
                count: set.len(),
            });
        }
        atoms.push(set.into_iter().collect());
    }

    // Stage 1: enumerate symbolic conflicts.
    let mut adjacency: BTreeMap<Raw, BTreeSet<Raw>> = BTreeMap::new();
    let add_conflict = |a: Raw, b: Raw, adj: &mut BTreeMap<Raw, BTreeSet<Raw>>| {
        adj.entry(a.clone()).or_default().insert(b.clone());
        adj.entry(b).or_default().insert(a);
    };
    for m1 in 0..num_methods {
        for m2 in m1..num_methods {
            let phi = spec.formula(MethodId(m1 as u32), MethodId(m2 as u32));
            if !phi.fragment().is_ecl {
                return Err(TranslateError::NotEcl {
                    spec: spec.name().to_string(),
                    m1: spec.sig(MethodId(m1 as u32)).name().to_string(),
                    m2: spec.sig(MethodId(m2 as u32)).name().to_string(),
                });
            }
            // Sanity: atoms on each side must be registered for the method.
            debug_assert!({
                let mut s = BTreeSet::new();
                phi.lb_atoms(Side::First, &mut s);
                s.iter().all(|a| atoms[m1].contains(a))
            });
            let n1 = atoms[m1].len();
            let n2 = atoms[m2].len();
            for beta1 in 0..(1usize << n1) {
                for beta2 in 0..(1usize << n2) {
                    let a1 = &atoms[m1];
                    let a2 = &atoms[m2];
                    let b1 = move |p: &NormAtom| {
                        let k = a1.iter().position(|q| q == p).expect("atom registered");
                        beta1 & (1 << k) != 0
                    };
                    let b2 = move |p: &NormAtom| {
                        let k = a2.iter().position(|q| q == p).expect("atom registered");
                        beta2 & (1 << k) != 0
                    };
                    match phi.substitute(&b1, &b2) {
                        LsResidue::False => add_conflict(
                            Raw::Ds {
                                m: m1 as u32,
                                beta: beta1,
                            },
                            Raw::Ds {
                                m: m2 as u32,
                                beta: beta2,
                            },
                            &mut adjacency,
                        ),
                        LsResidue::Conjuncts(conjuncts) => {
                            for (i, j) in conjuncts {
                                add_conflict(
                                    Raw::Slot {
                                        m: m1 as u32,
                                        beta: beta1,
                                        i,
                                    },
                                    Raw::Slot {
                                        m: m2 as u32,
                                        beta: beta2,
                                        i: j,
                                    },
                                    &mut adjacency,
                                );
                            }
                        }
                        LsResidue::Mixed => {
                            // Unreachable after the fragment check, but keep
                            // a defensive error path.
                            return Err(TranslateError::NotEcl {
                                spec: spec.name().to_string(),
                                m1: spec.sig(MethodId(m1 as u32)).name().to_string(),
                                m2: spec.sig(MethodId(m2 as u32)).name().to_string(),
                            });
                        }
                    }
                }
            }
        }
    }

    // Materialize every symbolic point of the unoptimized representation:
    // a `ds` point and one point per slot for each `(m, β)`. The pipeline
    // decides what survives; with no passes this is the raw §6.2 output.
    let mut all: BTreeSet<Raw> = BTreeSet::new();
    for (m, method_atoms) in atoms.iter().enumerate().take(num_methods) {
        let n_atoms = method_atoms.len();
        let num_slots = spec.sig(MethodId(m as u32)).num_slots();
        for beta in 0..(1usize << n_atoms) {
            all.insert(Raw::Ds { m: m as u32, beta });
            for i in 0..num_slots {
                all.insert(Raw::Slot {
                    m: m as u32,
                    beta,
                    i,
                });
            }
        }
    }
    debug_assert!(adjacency.keys().all(|r| all.contains(r)));
    let raws: Vec<Raw> = all.into_iter().collect();
    let raw_id: BTreeMap<&Raw, usize> = raws.iter().enumerate().map(|(i, r)| (r, i)).collect();
    let n = raws.len();
    let neighbors: Vec<BTreeSet<usize>> = raws
        .iter()
        .map(|r| {
            adjacency
                .get(r)
                .map(|s| s.iter().map(|x| raw_id[x]).collect())
                .unwrap_or_default()
        })
        .collect();

    // Stage 2: the optimization pipeline over a representative map (class
    // merging) and a liveness map (class dropping).
    let mut rep: Vec<usize> = (0..n).collect();
    let mut alive: Vec<bool> = vec![true; n];
    for pass in passes {
        match pass {
            OptPass::Consolidate => merge_congruent(&raws, &neighbors, &mut rep, &alive, true),
            OptPass::Replace => merge_congruent(&raws, &neighbors, &mut rep, &alive, false),
            OptPass::Drop => {
                // A point with no conflicts can never race; merging never
                // grows a neighborhood, so the raw set is authoritative.
                for i in 0..n {
                    if neighbors[i].is_empty() {
                        alive[i] = false;
                    }
                }
            }
            // Normalization (dense numbering, sorted conflict lists,
            // coalesced labels) happens at materialization below.
            OptPass::Cleanup => {}
        }
    }

    // Stage 3: number surviving classes and rebuild adjacency.
    let live: Vec<usize> = (0..n).filter(|&i| rep[i] == i && alive[i]).collect();
    let final_id: BTreeMap<usize, ClassId> = live
        .iter()
        .enumerate()
        .map(|(k, &i)| (i, ClassId(k as u32)))
        .collect();
    let mut conflicts: Vec<Vec<ClassId>> = vec![Vec::new(); live.len()];
    for (&leader, &cid) in &final_id {
        let mut set: BTreeSet<ClassId> = BTreeSet::new();
        // All members of the class share the same canonical neighbor set.
        for i in 0..n {
            if rep[i] == leader {
                set.extend(neighbors[i].iter().map(|&x| final_id[&rep[x]]));
            }
        }
        conflicts[cid.index()] = set.into_iter().collect();
    }
    let kinds: Vec<PointKind> = live.iter().map(|&i| raws[i].kind()).collect();

    // Labels: the distinct (method, role) combinations merged in.
    let labels: Vec<String> = live
        .iter()
        .map(|&leader| {
            let mut parts: BTreeSet<String> = BTreeSet::new();
            for i in 0..n {
                if rep[i] == leader {
                    let (m, role) = match &raws[i] {
                        Raw::Ds { m, .. } => (*m, "ds".to_string()),
                        Raw::Slot { m, i, .. } => (*m, format!("w{i}")),
                    };
                    parts.insert(format!("{}.{role}", spec.sig(MethodId(m)).name()));
                }
            }
            parts.into_iter().collect::<Vec<_>>().join("|")
        })
        .collect();

    // Touch tables.
    let mut methods = Vec::with_capacity(num_methods);
    for (m, method_atoms) in atoms.iter().enumerate() {
        let n_atoms = method_atoms.len();
        let num_slots = spec.sig(MethodId(m as u32)).num_slots();
        let mut touch = Vec::with_capacity(1 << n_atoms);
        for beta in 0..(1usize << n_atoms) {
            let mut templates = Vec::new();
            let ds = Raw::Ds { m: m as u32, beta };
            let id = raw_id[&ds];
            if alive[id] {
                templates.push(TouchTemplate::Ds(final_id[&rep[id]]));
            }
            for i in 0..num_slots {
                let slot = Raw::Slot {
                    m: m as u32,
                    beta,
                    i,
                };
                let id = raw_id[&slot];
                if alive[id] {
                    templates.push(TouchTemplate::Slot(final_id[&rep[id]], i));
                }
            }
            touch.push(templates);
        }
        methods.push(MethodTable {
            atoms: method_atoms.clone(),
            touch,
        });
    }

    let max_conflict_degree = conflicts.iter().map(Vec::len).max().unwrap_or(0);
    Ok(CompiledSpec {
        spec: spec.clone(),
        methods,
        conflicts,
        kinds,
        labels,
        stats: TranslationStats {
            raw_classes: n,
            classes: live.len(),
            max_conflict_degree,
        },
    })
}

/// Congruence merging to a fixpoint: points with identical canonical
/// conflict neighborhoods (neighbors mapped through the current
/// representative map) are interchangeable and merge. With
/// `same_method_role`, only points of the same method and role (ds, or the
/// same slot index) merge — the *consolidation* pass; without it, any two
/// points of the same kind merge — the *replacement* pass.
///
/// Merge eligibility is monotone under coarsening (equal canonical
/// neighborhoods stay equal as the partition coarsens), so the fixpoint is
/// confluent: consolidation merges a subset of what replacement would, and
/// running it first never changes replacement's final partition.
fn merge_congruent(
    raws: &[Raw],
    neighbors: &[BTreeSet<usize>],
    rep: &mut Vec<usize>,
    alive: &[bool],
    same_method_role: bool,
) {
    let n = raws.len();
    loop {
        // Canonical neighbor sets under the current representative map.
        let canon: Vec<BTreeSet<usize>> = (0..n)
            .map(|i| neighbors[i].iter().map(|&x| rep[x]).collect())
            .collect();
        type Key<'a> = (bool, Option<(u32, usize)>, &'a BTreeSet<usize>);
        let mut groups: BTreeMap<Key<'_>, usize> = BTreeMap::new();
        let mut changed = false;
        let mut new_rep = rep.clone();
        for i in 0..n {
            if rep[i] != i || !alive[i] {
                continue; // already merged away, or dropped
            }
            let role = same_method_role.then(|| match &raws[i] {
                Raw::Ds { m, .. } => (*m, usize::MAX),
                Raw::Slot { m, i: slot, .. } => (*m, *slot),
            });
            let key = (raws[i].kind() == PointKind::Ds, role, &canon[i]);
            match groups.get(&key) {
                Some(&leader) => {
                    new_rep[i] = leader;
                    changed = true;
                }
                None => {
                    groups.insert(key, i);
                }
            }
        }
        // Path-compress: members of merged classes follow their class.
        for i in 0..n {
            let mut r = new_rep[i];
            while new_rep[r] != r {
                r = new_rep[r];
            }
            new_rep[i] = r;
        }
        *rep = new_rep;
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::AccessPoint;
    use crace_model::{Action, ObjId, Value};
    use crace_spec::{builtin, CmpOp, Formula, SpecBuilder, Term};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn act(spec: &Spec, method: &str, args: Vec<Value>, ret: Value) -> Action {
        Action::new(ObjId(0), spec.method_id(method).unwrap(), args, ret)
    }

    #[test]
    fn dictionary_compiles_to_fig7() {
        let spec = builtin::dictionary();
        let c = translate(&spec).unwrap();
        // Exactly the four classes of Fig. 7: o:w:k, o:r:k, o:size, o:resize.
        assert_eq!(c.num_classes(), 4, "{c}");
        let mut degrees: Vec<usize> = (0..4)
            .map(|i| c.conflicting(ClassId(i as u32)).len())
            .collect();
        degrees.sort_unstable();
        // w conflicts with {w, r}; r with {w}; size with {resize}; resize
        // with {size}.
        assert_eq!(degrees, vec![1, 1, 1, 2]);
        assert!(c.stats().raw_classes > 4); // optimization did real work
        assert_eq!(c.stats().max_conflict_degree, 2);
    }

    #[test]
    fn dictionary_touched_points_match_fig7b() {
        let spec = builtin::dictionary();
        let c = translate(&spec).unwrap();
        // Fresh insert: w:k and resize.
        let grow = act(&spec, "put", vec![Value::Int(5), Value::Int(1)], Value::Nil);
        let pts = c.touched(&grow);
        assert_eq!(pts.len(), 2);
        let kinds: Vec<_> = pts.iter().map(|p| c.kind(p.class)).collect();
        assert!(kinds.contains(&PointKind::Ds)); // resize
        assert!(kinds.contains(&PointKind::Slot)); // w:5
        assert!(pts.iter().any(|p| p.value == Some(Value::Int(5))));

        // Overwrite with non-nil (v != p, both non-nil): only w:k.
        let over = act(
            &spec,
            "put",
            vec![Value::Int(5), Value::Int(2)],
            Value::Int(1),
        );
        let pts = c.touched(&over);
        assert_eq!(pts.len(), 1);
        assert_eq!(c.kind(pts[0].class), PointKind::Slot);

        // Read-like put (v == p): only r:k.
        let noop = act(
            &spec,
            "put",
            vec![Value::Int(5), Value::Int(1)],
            Value::Int(1),
        );
        let noop_pts = c.touched(&noop);
        assert_eq!(noop_pts.len(), 1);
        // It must be a *different* class from w.
        assert_ne!(noop_pts[0].class, pts[0].class);

        // get touches the same r class as a read-like put (the A.3
        // "replacement" merged them).
        let get = act(&spec, "get", vec![Value::Int(5)], Value::Int(1));
        let get_pts = c.touched(&get);
        assert_eq!(get_pts.len(), 1);
        assert_eq!(get_pts[0].class, noop_pts[0].class);

        // size touches a single ds point.
        let size = act(&spec, "size", vec![], Value::Int(3));
        let size_pts = c.touched(&size);
        assert_eq!(
            size_pts,
            vec![AccessPoint {
                class: size_pts[0].class,
                value: None
            }]
        );
    }

    #[test]
    fn conflict_relation_matches_fig7c() {
        let spec = builtin::dictionary();
        let c = translate(&spec).unwrap();
        let w = c.touched(&act(
            &spec,
            "put",
            vec![Value::Int(5), Value::Int(2)],
            Value::Int(1),
        ))[0]
            .class;
        let r = c.touched(&act(&spec, "get", vec![Value::Int(5)], Value::Int(1)))[0].class;
        let size = c.touched(&act(&spec, "size", vec![], Value::Int(0)))[0].class;
        let grow = c.touched(&act(
            &spec,
            "put",
            vec![Value::Int(5), Value::Int(1)],
            Value::Nil,
        ));
        let resize = grow
            .iter()
            .find(|p| c.kind(p.class) == PointKind::Ds)
            .unwrap()
            .class;
        assert_eq!(c.conflicting(w), &[w, r]);
        assert_eq!(c.conflicting(r), &[w]);
        assert_eq!(c.conflicting(size), &[resize]);
        assert_eq!(c.conflicting(resize), &[size]);
    }

    #[test]
    fn all_builtins_translate_with_bounded_degree() {
        for spec in builtin::all() {
            let c = translate(&spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            // Theorem 6.6: bounded degree — a small constant per spec
            // (dictionary hits 2, dictionary_ext 5, queue 3).
            assert!(
                c.stats().max_conflict_degree <= 5,
                "{}: {:?}",
                spec.name(),
                c.stats()
            );
            assert!(c.num_classes() <= c.stats().raw_classes);
        }
    }

    #[test]
    fn every_pipeline_prefix_and_single_pass_preserves_semantics() {
        // Definition 4.5 equivalence must hold for the raw representation,
        // after each individual pass, and after the full pipeline.
        let variants: Vec<(&str, Vec<OptPass>)> = vec![
            ("raw", vec![]),
            ("consolidate", vec![OptPass::Consolidate]),
            ("drop", vec![OptPass::Drop]),
            ("replace", vec![OptPass::Replace]),
            ("cleanup", vec![OptPass::Cleanup]),
            ("full", A3_PIPELINE.to_vec()),
        ];
        for spec in builtin::all() {
            let actions = enumerate_actions(&spec);
            for (name, passes) in &variants {
                let c = translate_with(&spec, passes).unwrap();
                for a in &actions {
                    for b in &actions {
                        assert_eq!(
                            c.actions_conflict(a, b),
                            !spec.commute(a, b),
                            "spec {} pass {name}: a = {a}, b = {b}",
                            spec.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_pipeline_equals_translate() {
        for spec in builtin::all() {
            let via_with = translate_with(&spec, &A3_PIPELINE).unwrap();
            let via_translate = translate(&spec).unwrap();
            assert_eq!(via_with.num_classes(), via_translate.num_classes());
            assert_eq!(via_with.stats(), via_translate.stats());
        }
    }

    #[test]
    fn raw_translation_materializes_every_symbolic_point() {
        let spec = builtin::dictionary();
        let raw = translate_with(&spec, &[]).unwrap();
        // Nothing merged, nothing dropped: classes == raw points.
        assert_eq!(raw.num_classes(), raw.stats().raw_classes);
        // The optimized result is strictly smaller.
        let full = translate(&spec).unwrap();
        assert!(full.num_classes() < raw.num_classes());
        assert_eq!(full.stats().raw_classes, raw.stats().raw_classes);
    }

    #[test]
    fn max_conflict_checks_matches_fig7() {
        let spec = builtin::dictionary();
        let c = translate(&spec).unwrap();
        // put's worst β touches {o:w:k, o:resize}: |C(w)| + |C(resize)| = 3.
        assert_eq!(c.max_conflict_checks(spec.method_id("put").unwrap()), 3);
        // get touches only o:r:k, which conflicts with {o:w:k}.
        assert_eq!(c.max_conflict_checks(spec.method_id("get").unwrap()), 1);
        assert_eq!(c.max_conflict_checks(spec.method_id("size").unwrap()), 1);
    }

    #[test]
    fn non_ecl_spec_is_rejected() {
        let spec =
            crace_spec::parse("spec s { method m(a); commute m(x1), m(x2) when !(x1 != x2); }")
                .unwrap();
        let err = translate(&spec).unwrap_err();
        assert!(matches!(err, TranslateError::NotEcl { .. }));
        assert!(err.to_string().contains("outside ECL"));
    }

    #[test]
    fn too_many_atoms_is_rejected() {
        let mut b = SpecBuilder::new("wide");
        let m = b.method("m", 1);
        let mut phi = Formula::True;
        for k in 0..17 {
            let a1 = Formula::atom(
                crace_spec::Side::First,
                CmpOp::Eq,
                Term::Slot(0),
                Term::Const(Value::Int(k)),
            );
            let a2 = Formula::atom(
                crace_spec::Side::Second,
                CmpOp::Eq,
                Term::Slot(0),
                Term::Const(Value::Int(k)),
            );
            phi = phi.and(a1).and(a2);
        }
        b.rule(m.id, m.id, phi).unwrap();
        let spec = b.finish().unwrap();
        let err = translate(&spec).unwrap_err();
        assert!(matches!(
            err,
            TranslateError::TooManyAtoms { count: 17, .. }
        ));
    }

    #[test]
    fn queue_has_only_ds_points() {
        let c = translate(&builtin::queue()).unwrap();
        for i in 0..c.num_classes() {
            assert_eq!(c.kind(ClassId(i as u32)), PointKind::Ds);
        }
    }

    #[test]
    fn display_lists_classes_with_labels() {
        let c = translate(&builtin::dictionary()).unwrap();
        let s = c.to_string();
        assert!(s.contains("4 classes"), "{s}");
        assert!(s.contains("size.ds"), "{s}");
        // The merged read class mentions both get and put.
        assert!(s.contains("get.w0"), "{s}");
    }

    // ---- Definition 4.5 equivalence: representation ⇔ formula ----

    /// A dictionary action described by plain data.
    #[derive(Clone, Debug)]
    enum DictOp {
        Put(i64, Option<i64>, Option<i64>),
        Get(i64, Option<i64>),
        Size(i64),
    }

    /// Small domains (3 keys, 3 value shapes) so conflicting and commuting
    /// pairs are both frequent.
    fn random_dict_op(rng: &mut StdRng) -> DictOp {
        let val = |rng: &mut StdRng| {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(rng.gen_range(1i64..4))
            }
        };
        match rng.gen_range(0u32..3) {
            0 => {
                let k = rng.gen_range(0i64..3);
                let v = val(rng);
                let p = val(rng);
                DictOp::Put(k, v, p)
            }
            1 => {
                let k = rng.gen_range(0i64..3);
                let v = val(rng);
                DictOp::Get(k, v)
            }
            _ => DictOp::Size(rng.gen_range(0i64..5)),
        }
    }

    fn dict_action(spec: &Spec, op: &DictOp) -> Action {
        let v = |o: &Option<i64>| o.map(Value::Int).unwrap_or(Value::Nil);
        match op {
            DictOp::Put(k, x, p) => act(spec, "put", vec![Value::Int(*k), v(x)], v(p)),
            DictOp::Get(k, x) => act(spec, "get", vec![Value::Int(*k)], v(x)),
            DictOp::Size(r) => act(spec, "size", vec![], Value::Int(*r)),
        }
    }

    fn dict_compiled() -> &'static (Spec, CompiledSpec) {
        use std::sync::OnceLock;
        static CELL: OnceLock<(Spec, CompiledSpec)> = OnceLock::new();
        CELL.get_or_init(|| {
            let spec = builtin::dictionary();
            let compiled = translate(&spec).unwrap();
            (spec, compiled)
        })
    }

    #[test]
    fn dictionary_representation_equivalent_to_formula() {
        let (spec, c) = dict_compiled();
        let mut rng = StdRng::seed_from_u64(0xD1C7);
        for _ in 0..4_000 {
            let a = dict_action(spec, &random_dict_op(&mut rng));
            let b = dict_action(spec, &random_dict_op(&mut rng));
            assert_eq!(
                c.actions_conflict(&a, &b),
                !spec.commute(&a, &b),
                "a = {a}, b = {b}"
            );
            // The compiled conflict relation is symmetric.
            assert_eq!(c.actions_conflict(&a, &b), c.actions_conflict(&b, &a));
        }
    }

    /// Exhaustive Definition 4.5 check over a small concrete domain for
    /// every builtin spec: enumerate all actions with keys/values from a
    /// tiny universe and compare representation conflicts against the
    /// logical formula.
    #[test]
    fn all_builtins_representation_equivalent_exhaustive() {
        for spec in builtin::all() {
            let c = translate(&spec).unwrap();
            let actions = enumerate_actions(&spec);
            for a in &actions {
                for b in &actions {
                    assert_eq!(
                        c.actions_conflict(a, b),
                        !spec.commute(a, b),
                        "spec {}: a = {a}, b = {b}",
                        spec.name()
                    );
                }
            }
        }
    }

    /// All actions of a spec with slot values drawn from a 3-value universe
    /// (nil, 1, 2) — bounded but covering every β combination.
    fn enumerate_actions(spec: &Spec) -> Vec<Action> {
        let universe = [Value::Nil, Value::Int(1), Value::Bool(false)];
        let mut out = Vec::new();
        for m in 0..spec.num_methods() {
            let id = MethodId(m as u32);
            let slots = spec.sig(id).num_slots();
            let mut idx = vec![0usize; slots];
            loop {
                let vals: Vec<Value> = idx.iter().map(|&i| universe[i].clone()).collect();
                let (args, ret) = vals.split_at(slots - 1);
                out.push(Action::new(ObjId(0), id, args.to_vec(), ret[0].clone()));
                // Odometer increment.
                let mut k = 0;
                loop {
                    if k == slots {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < universe.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == slots {
                    break;
                }
            }
        }
        out
    }
}
