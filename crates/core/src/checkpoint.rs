//! Durable detector state: the [`Checkpoint`] trait and the shared
//! serializers detectors use to implement it.
//!
//! A detector is a deterministic fold over the event stream, so its
//! state at any record boundary is a value. `checkpoint()` writes that
//! value down in the versioned, CRC-framed format of
//! [`crace_vclock::ckpt`]; `restore()` reads it back into a
//! freshly-configured detector, after which
//! `restore(checkpoint(fold(prefix))) ≡ fold(prefix)` — the equivalence
//! `tests/checkpoint_equivalence.rs` proves differentially for every
//! detector in the workspace.
//!
//! Compiled specifications are deliberately **not** serialized: a
//! checkpoint records each registered object's *spec name*, and restore
//! resolves names through a caller-supplied [`SpecResolver`] (the daemon
//! resolves against its session spec; tests against the builtins). This
//! keeps checkpoints small and means a spec bugfix applies on restore
//! rather than being fossilized into old state.
//!
//! Failure is always closed: any damage — version skew, kind mismatch,
//! torn line, flipped byte, unresolvable spec — surfaces as a spanned
//! [`CkptError`] and the caller falls back to replaying the full
//! capture. A checkpoint never restores into a wrong report.

use crate::engine::ClockMode;
use crate::points::{AccessPoint, ClassId, CompiledSpec};
use crace_model::{
    Action, LocId, MethodId, ObjId, Provenance, RaceKind, RaceRecord, RaceReport, ThreadId, Value,
};
use crace_vclock::ckpt::{esc, CkptError, CkptReader, CkptRecord, CkptWriter};
use std::sync::Arc;

/// Resolves a registered object's spec name back to its compiled
/// specification during restore. Returning `None` fails the restore
/// closed (the checkpoint references a spec this process cannot check).
pub type SpecResolver<'a> = dyn Fn(&str) -> Option<Arc<CompiledSpec>> + 'a;

/// Durable detector state: serialize to the versioned CRC-framed
/// checkpoint format, and restore from it.
///
/// `restore` is called on a **freshly-constructed detector with the
/// same configuration** (clock mode, provenance window, worker count);
/// a checkpoint written under a different configuration is rejected —
/// silently continuing with different semantics could change verdicts.
pub trait Checkpoint {
    /// The detector-kind tag in the checkpoint header (e.g.
    /// `rd2-trace`). Restore refuses a checkpoint of any other kind.
    fn checkpoint_kind(&self) -> &'static str;

    /// Serializes the complete detector state.
    fn checkpoint(&self) -> String;

    /// Restores state from `text` into `self`, resolving each
    /// registered object's spec name through `resolve`.
    ///
    /// # Errors
    ///
    /// A spanned [`CkptError`] on any damage or mismatch; `self` must
    /// then be discarded (it may be partially overwritten).
    fn restore(&self, text: &str, resolve: &SpecResolver<'_>) -> Result<(), CkptError>;
}

/// A [`SpecResolver`] over the builtin specifications, for tests and
/// the CLI: translates the builtin of that name on demand.
pub fn builtin_resolver() -> impl Fn(&str) -> Option<Arc<CompiledSpec>> {
    |name: &str| {
        let spec = crace_spec::builtin::all()
            .into_iter()
            .find(|s| s.name() == name)?;
        crate::translate(&spec).ok().map(Arc::new)
    }
}

// ---------------------------------------------------------------------
// Word-level serializers shared by every detector impl.
// ---------------------------------------------------------------------

/// A [`Value`] as a single word: `n` (nil), `b0`/`b1`, `i<int>`,
/// `s<escaped>`, `r<id>`.
pub fn value_word(v: &Value) -> String {
    match v {
        Value::Nil => "n".to_string(),
        Value::Bool(b) => if *b { "b1" } else { "b0" }.to_string(),
        Value::Int(i) => format!("i{i}"),
        Value::Str(s) => format!("s{}", esc(s)),
        Value::Ref(r) => format!("r{r}"),
    }
}

/// Parses a [`value_word`] rendering.
///
/// # Errors
///
/// [`CkptError`] at `line` on malformation.
pub fn value_parse(word: &str, line: usize) -> Result<Value, CkptError> {
    let bad = || CkptError::at(line, format!("bad value token `{word}`"));
    match word.split_at_checked(1) {
        Some(("n", "")) => Ok(Value::Nil),
        Some(("b", "0")) => Ok(Value::Bool(false)),
        Some(("b", "1")) => Ok(Value::Bool(true)),
        Some(("i", rest)) => rest.parse().map(Value::Int).map_err(|_| bad()),
        Some(("s", rest)) => crace_vclock::ckpt::unesc(rest)
            .map(|s| Value::Str(s.into()))
            .map_err(|e| CkptError::at(line, e)),
        Some(("r", rest)) => rest.parse().map(Value::Ref).map_err(|_| bad()),
        _ => Err(bad()),
    }
}

/// An [`AccessPoint`] as a single word: `<class>:<value>` with `_` for
/// the value-free (ds) points.
pub fn point_word(pt: &AccessPoint) -> String {
    match &pt.value {
        Some(v) => format!("{}:{}", pt.class.0, value_word(v)),
        None => format!("{}:_", pt.class.0),
    }
}

/// Parses a [`point_word`] rendering.
///
/// # Errors
///
/// [`CkptError`] at `line` on malformation.
pub fn point_parse(word: &str, line: usize) -> Result<AccessPoint, CkptError> {
    let (class, value) = word
        .split_once(':')
        .ok_or_else(|| CkptError::at(line, format!("bad access point `{word}`")))?;
    let class: u32 = class
        .parse()
        .map_err(|_| CkptError::at(line, format!("bad access-point class `{class}`")))?;
    let value = match value {
        "_" => None,
        v => Some(value_parse(v, line)?),
    };
    Ok(AccessPoint {
        class: ClassId(class),
        value,
    })
}

/// Appends an [`Action`] to `words` as `<obj> <method> <argc> <args…>
/// <ret>`.
fn action_words(words: &mut Vec<String>, action: &Action) {
    words.push(action.obj().0.to_string());
    words.push(action.method().0.to_string());
    words.push(action.args().len().to_string());
    for arg in action.args() {
        words.push(value_word(arg));
    }
    words.push(value_word(action.ret()));
}

/// Parses an [`action_words`] rendering starting at `rec.words[at]`,
/// returning the action and the index just past it.
fn action_parse(rec: &CkptRecord<'_>, at: usize) -> Result<(Action, usize), CkptError> {
    let obj: u64 = rec.num(at)?;
    let method: u32 = rec.num(at + 1)?;
    let argc: usize = rec.num(at + 2)?;
    let mut args = Vec::with_capacity(argc);
    for i in 0..argc {
        args.push(value_parse(rec.word(at + 3 + i)?, rec.line)?);
    }
    let ret = value_parse(rec.word(at + 3 + argc)?, rec.line)?;
    Ok((
        Action::new(ObjId(obj), MethodId(method), args, ret),
        at + 4 + argc,
    ))
}

/// Appends a [`RaceRecord`] to `words`:
/// `<family> <site> <tid> <detail> (A <action…> | -) (P <prov…> | -)`.
pub(crate) fn record_words(words: &mut Vec<String>, rec: &RaceRecord) {
    let (family, site) = match &rec.kind {
        RaceKind::Commutativity { obj } => (0u8, obj.0),
        RaceKind::ReadWrite { loc } => (1, loc.0),
    };
    words.push(family.to_string());
    words.push(site.to_string());
    words.push(rec.tid.0.to_string());
    words.push(esc(&rec.detail));
    match &rec.action {
        Some(a) => {
            words.push("A".to_string());
            action_words(words, a);
        }
        None => words.push("-".to_string()),
    }
    match &rec.provenance {
        Some(p) => {
            words.push("P".to_string());
            words.push(esc(&p.current));
            words.push(
                p.prior
                    .as_deref()
                    .map_or("-".to_string(), |s| format!("+{}", esc(s))),
            );
            words.push(esc(&p.touched));
            words.push(esc(&p.conflicting));
            words.push(esc(&p.thread_clock));
            words.push(esc(&p.point_clock));
            words.push(p.recent.len().to_string());
            for r in &p.recent {
                words.push(esc(r));
            }
        }
        None => words.push("-".to_string()),
    }
}

/// Parses a [`record_words`] rendering starting at `rec.words[at]`,
/// returning the record and the index just past it.
pub(crate) fn record_parse(
    rec: &CkptRecord<'_>,
    at: usize,
) -> Result<(RaceRecord, usize), CkptError> {
    let family: u8 = rec.num(at)?;
    let site: u64 = rec.num(at + 1)?;
    let kind = match family {
        0 => RaceKind::Commutativity { obj: ObjId(site) },
        1 => RaceKind::ReadWrite { loc: LocId(site) },
        _ => {
            return Err(CkptError::at(
                rec.line,
                format!("unknown race family {family}"),
            ))
        }
    };
    let tid = ThreadId(rec.num(at + 2)?);
    let detail = rec.text(at + 3)?;
    let mut next = at + 4;
    let action = match rec.word(next)? {
        "A" => {
            let (a, after) = action_parse(rec, next + 1)?;
            next = after;
            Some(a)
        }
        "-" => {
            next += 1;
            None
        }
        other => {
            return Err(CkptError::at(
                rec.line,
                format!("bad action marker `{other}`"),
            ))
        }
    };
    let provenance = match rec.word(next)? {
        "P" => {
            let current = rec.text(next + 1)?;
            let prior = match rec.word(next + 2)? {
                "-" => None,
                tagged => Some(
                    tagged
                        .strip_prefix('+')
                        .ok_or_else(|| {
                            CkptError::at(rec.line, format!("bad prior marker `{tagged}`"))
                        })
                        .and_then(|w| {
                            crace_vclock::ckpt::unesc(w).map_err(|e| CkptError::at(rec.line, e))
                        })?,
                ),
            };
            let touched = rec.text(next + 3)?;
            let conflicting = rec.text(next + 4)?;
            let thread_clock = rec.text(next + 5)?;
            let point_clock = rec.text(next + 6)?;
            let nrecent: usize = rec.num(next + 7)?;
            let mut recent = Vec::with_capacity(nrecent);
            for i in 0..nrecent {
                recent.push(rec.text(next + 8 + i)?);
            }
            next += 8 + nrecent;
            Some(Box::new(Provenance {
                current,
                prior,
                touched,
                conflicting,
                thread_clock,
                point_clock,
                recent,
            }))
        }
        "-" => {
            next += 1;
            None
        }
        other => {
            return Err(CkptError::at(
                rec.line,
                format!("bad provenance marker `{other}`"),
            ))
        }
    };
    Ok((
        RaceRecord {
            kind,
            tid,
            action,
            detail,
            provenance,
        },
        next,
    ))
}

/// Writes a [`RaceReport`] as a `report` record (totals + capacity),
/// one `site` record per distinct site, and one `rsample` record per
/// retained sample. Tags can be prefixed (e.g. `w3.`) so several
/// reports coexist in one checkpoint.
pub fn report_write(w: &mut CkptWriter, prefix: &str, report: &RaceReport) {
    w.rec(&format!(
        "{prefix}report {} {} {}",
        report.total(),
        report.sample_capacity(),
        report.samples().len()
    ));
    let mut sites: Vec<_> = report.site_counts().collect();
    sites.sort();
    for ((family, site), count) in sites {
        w.rec(&format!("{prefix}site {family} {site} {count}"));
    }
    for sample in report.samples() {
        let mut words = vec![format!("{prefix}rsample")];
        record_words(&mut words, sample);
        w.rec(&words.join(" "));
    }
}

/// Reads back a report written by [`report_write`] with the same tag
/// prefix. The reader must be positioned on the `report` record.
///
/// # Errors
///
/// [`CkptError`] on malformation or when the record counts disagree
/// with the `report` header record.
pub fn report_read(r: &mut CkptReader<'_>, prefix: &str) -> Result<RaceReport, CkptError> {
    let head = r.next_rec().ok_or_else(|| {
        CkptError::at(
            0,
            format!("checkpoint ends where a `{prefix}report` record was expected"),
        )
    })?;
    if head.tag() != format!("{prefix}report") {
        return Err(CkptError::at(
            head.line,
            format!("expected `{prefix}report`, found `{}`", head.tag()),
        ));
    }
    let total: u64 = head.num(1)?;
    let capacity: usize = head.num(2)?;
    let nsamples: usize = head.num(3)?;
    let site_tag = format!("{prefix}site");
    let mut sites = Vec::new();
    while let Some(rec) = r.peek() {
        if rec.tag() != site_tag {
            break;
        }
        let family: u8 = rec.num(1)?;
        let site: u64 = rec.num(2)?;
        let count: u64 = rec.num(3)?;
        sites.push(((family, site), count));
        r.next_rec();
    }
    let sample_tag = format!("{prefix}rsample");
    let mut samples = Vec::with_capacity(nsamples);
    for _ in 0..nsamples {
        let rec = r.next_rec().ok_or_else(|| {
            CkptError::at(
                0,
                format!("checkpoint ends inside `{prefix}rsample` records"),
            )
        })?;
        if rec.tag() != sample_tag {
            return Err(CkptError::at(
                rec.line,
                format!("expected `{sample_tag}`, found `{}`", rec.tag()),
            ));
        }
        let (sample, _) = record_parse(rec, 1)?;
        samples.push(sample);
    }
    Ok(RaceReport::from_parts(total, sites, samples, capacity))
}

/// [`ClockMode`] as a word.
pub fn mode_word(mode: ClockMode) -> &'static str {
    match mode {
        ClockMode::Adaptive => "adaptive",
        ClockMode::FullVector => "full",
    }
}

/// Parses a [`mode_word`] rendering.
///
/// # Errors
///
/// [`CkptError`] at `line` on an unknown mode.
pub fn mode_parse(word: &str, line: usize) -> Result<ClockMode, CkptError> {
    match word {
        "adaptive" => Ok(ClockMode::Adaptive),
        "full" => Ok(ClockMode::FullVector),
        other => Err(CkptError::at(line, format!("unknown clock mode `{other}`"))),
    }
}

/// Builds the fail-closed error for a configuration mismatch between a
/// checkpoint and the detector it is being restored into.
pub(crate) fn config_mismatch(
    line: usize,
    what: &str,
    checkpoint: impl std::fmt::Debug,
    detector: impl std::fmt::Debug,
) -> CkptError {
    CkptError::at(
        line,
        format!(
            "checkpoint {what} ({checkpoint:?}) does not match this detector's ({detector:?}) — \
             restore into a detector with the same configuration"
        ),
    )
}

/// Writes the happens-before word of a provenance-free `vc` — thin
/// re-export so detector impls only import this module.
pub use crace_vclock::ckpt::{sync_read, sync_write};

/// Writes one registered object header: `object <id> <spec-name>`.
pub(crate) fn object_header(w: &mut CkptWriter, obj: ObjId, spec: &CompiledSpec) {
    w.rec(&format!("object {} {}", obj.0, esc(spec.spec().name())));
}

/// Parses an `object` record into its id and resolved spec.
///
/// # Errors
///
/// [`CkptError`] when malformed or when `resolve` does not know the
/// spec name.
pub(crate) fn object_parse(
    rec: &CkptRecord<'_>,
    resolve: &SpecResolver<'_>,
) -> Result<(ObjId, Arc<CompiledSpec>), CkptError> {
    let obj = ObjId(rec.num(1)?);
    let name = rec.text(2)?;
    let spec = resolve(&name).ok_or_else(|| {
        CkptError::at(
            rec.line,
            format!("checkpoint references unknown spec `{name}` — cannot restore"),
        )
    })?;
    Ok((obj, spec))
}

/// Serializes a sorted list of abandoned threads as one record:
/// `abandoned <n> [tids…]`.
pub(crate) fn abandoned_write(w: &mut CkptWriter, abandoned: impl IntoIterator<Item = ThreadId>) {
    let mut tids: Vec<u32> = abandoned.into_iter().map(|t| t.0).collect();
    tids.sort_unstable();
    let mut words = vec!["abandoned".to_string(), tids.len().to_string()];
    words.extend(tids.iter().map(u32::to_string));
    w.rec(&words.join(" "));
}

/// Parses an [`abandoned_write`] record (the reader must be positioned
/// on it).
///
/// # Errors
///
/// [`CkptError`] when the record is missing or malformed.
pub(crate) fn abandoned_read(r: &mut CkptReader<'_>) -> Result<Vec<ThreadId>, CkptError> {
    let rec = r
        .next_rec()
        .ok_or_else(|| CkptError::at(0, "checkpoint ends where `abandoned` was expected"))?;
    if rec.tag() != "abandoned" {
        return Err(CkptError::at(
            rec.line,
            format!("expected `abandoned`, found `{}`", rec.tag()),
        ));
    }
    let n: usize = rec.num(1)?;
    let mut tids = Vec::with_capacity(n);
    for i in 0..n {
        tids.push(ThreadId(rec.num(2 + i)?));
    }
    Ok(tids)
}

/// Re-exported so callers need only this module: [`vc_word`] /
/// [`vc_parse`] for raw clocks.
pub use crace_vclock::ckpt::{vc_parse as clock_parse, vc_word as clock_word};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_words_round_trip() {
        for v in [
            Value::Nil,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Str("a b\nc".into()),
            Value::Str("".into()),
            Value::Ref(7),
        ] {
            assert_eq!(value_parse(&value_word(&v), 1).unwrap(), v, "{v}");
        }
        assert!(value_parse("x9", 1).is_err());
        assert!(value_parse("", 1).is_err());
        assert!(value_parse("b7", 1).is_err());
    }

    #[test]
    fn point_words_round_trip() {
        for pt in [
            AccessPoint {
                class: ClassId(3),
                value: None,
            },
            AccessPoint {
                class: ClassId(0),
                value: Some(Value::Str("a.com".into())),
            },
        ] {
            assert_eq!(point_parse(&point_word(&pt), 1).unwrap(), pt);
        }
        assert!(point_parse("nocolon", 1).is_err());
    }

    #[test]
    fn reports_round_trip_with_action_and_provenance() {
        let mut report = RaceReport::with_sample_capacity(4);
        report.record(RaceRecord {
            kind: RaceKind::Commutativity { obj: ObjId(1) },
            tid: ThreadId(2),
            action: Some(Action::new(
                ObjId(1),
                MethodId(0),
                vec![Value::str("a.com"), Value::Int(2)],
                Value::Int(1),
            )),
            detail: "w:\"a.com\" vs w:\"a.com\"".to_string(),
            provenance: Some(Box::new(Provenance {
                current: "τ2: o1.put(\"a.com\", 2)/1".into(),
                prior: Some("τ1: o1.put(\"a.com\", 1)/nil".into()),
                touched: "put.w0:\"a.com\"".into(),
                conflicting: "put.w0:\"a.com\"".into(),
                thread_clock: "⟨0, 1⟩".into(),
                point_clock: "1@τ1".into(),
                recent: vec!["e1".into(), "e2 with space".into()],
            })),
        });
        report.record(RaceRecord {
            kind: RaceKind::ReadWrite { loc: LocId(16) },
            tid: ThreadId(0),
            action: None,
            detail: String::new(),
            provenance: None,
        });
        for _ in 0..10 {
            // Push the total past the sample capacity.
            report.record(RaceRecord {
                kind: RaceKind::Commutativity { obj: ObjId(9) },
                tid: ThreadId(1),
                action: None,
                detail: "overflow".into(),
                provenance: None,
            });
        }
        let mut w = CkptWriter::new("t");
        report_write(&mut w, "", &report);
        let blob = w.finish();
        let mut r = CkptReader::new(&blob, "t").unwrap();
        let restored = report_read(&mut r, "").unwrap();
        assert_eq!(restored, report);
        assert_eq!(restored.to_json(), report.to_json());
    }

    #[test]
    fn prefixed_reports_coexist() {
        let mut a = RaceReport::new();
        a.record(RaceRecord {
            kind: RaceKind::Commutativity { obj: ObjId(1) },
            tid: ThreadId(1),
            action: None,
            detail: String::new(),
            provenance: None,
        });
        let b = RaceReport::with_sample_capacity(0);
        let mut w = CkptWriter::new("t");
        report_write(&mut w, "w0.", &a);
        report_write(&mut w, "w1.", &b);
        let blob = w.finish();
        let mut r = CkptReader::new(&blob, "t").unwrap();
        assert_eq!(report_read(&mut r, "w0.").unwrap(), a);
        assert_eq!(report_read(&mut r, "w1.").unwrap(), b);
        // Reading with the wrong prefix fails closed.
        let mut r = CkptReader::new(&blob, "t").unwrap();
        assert!(report_read(&mut r, "w9.").is_err());
    }
}
