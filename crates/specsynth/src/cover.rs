//! The greedy prime-implicant cover at the heart of the synthesizer.
//!
//! Given labeled samples — observable slot vectors of a method pair, each
//! marked *commuting* (every bounded realization commutes) or
//! *non-commuting* — [`synthesize_pair`] searches for the weakest DNF
//! formula in the ECL fragment that admits every commuting sample it can
//! and no non-commuting sample:
//!
//! 1. **Candidate literals** are the ECL atoms over the pair's slots:
//!    the cross-action inequality `a_i != b_j` (the only cross atom ECL
//!    has; restricted to the diagonal for same-method pairs, where
//!    off-diagonal atoms are inherently asymmetric), per-side slot/slot
//!    equalities, and per-side slot/constant equalities over every value
//!    observed in the samples — each in both polarities.
//! 2. **Seeding**: each yet-uncovered commuting sample contributes the
//!    conjunction of *all* candidate literals it satisfies. Constants pin
//!    the sample exactly, so (after label aggregation) the full
//!    conjunction never admits a non-commuting sample — every commuting
//!    sample is coverable unless the cross-clause discipline below
//!    retired the atoms it needs.
//! 3. **Greedy literal dropping** weakens the clause to a prime implicant:
//!    literals are dropped most-specific-first (integer-constant pins,
//!    then slot/slot links, then the `nil`/boolean guards, cross atoms
//!    last) and a drop is kept only if the clause still rejects every
//!    non-commuting sample. Clause weakening is monotone, so one pass
//!    yields a prime clause: a literal whose removal admits a bad sample
//!    at its turn still admits it against any weaker final clause.
//! 4. **ECL discipline**: the fragment `X ::= S | B | X∧X | X∨B` allows
//!    only one cross-bearing disjunct, so once a clause containing a
//!    cross atom is emitted, cross atoms are retired from later seeds.
//!    The cross clause is ordered first and the disjunction left-folded,
//!    which keeps the result in ECL by construction.
//! 5. **Symmetrization**: for same-method pairs the clause set is closed
//!    under side-swapping (mirror clauses are added, or merged when the
//!    clause carries cross atoms), so the formula passes the linter's
//!    L003 truth-table check.
//! 6. **Pruning** removes clauses (mirror orbits, for same-method pairs)
//!    whose covered samples are covered by the rest.

use crace_model::Value;
use crace_spec::{CmpOp, Formula, Side, Term};
use std::collections::BTreeSet;

/// One aggregated training sample for a method pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// First method's arguments followed by its return value.
    pub slots1: Vec<Value>,
    /// Second method's arguments followed by its return value.
    pub slots2: Vec<Value>,
    /// `true` iff every realization of these slots commutes.
    pub commutes: bool,
}

/// Shape of the pair being synthesized.
#[derive(Clone, Copy, Debug)]
pub struct PairOptions {
    /// Slot count (arguments + return) of the first method.
    pub slots1: usize,
    /// Slot count of the second method.
    pub slots2: usize,
    /// Whether both actions are invocations of the same method, which
    /// demands a side-symmetric condition (L003).
    pub same_method: bool,
}

/// The synthesized condition for one pair plus its anatomy.
#[derive(Clone, Debug)]
pub struct PairSynthesis {
    /// The weakest consistent ECL formula found.
    pub formula: Formula,
    /// The DNF clauses, each a set of literal formulas (conjuncts); empty
    /// for the degenerate `true`/`false` results.
    pub clauses: Vec<Vec<Formula>>,
    /// Commuting samples the formula fails to admit (inexpressible under
    /// the single-cross-clause discipline); `0` for every builtin.
    pub uncovered: usize,
}

/// A candidate literal: one ECL atom with a polarity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Literal {
    /// `slots1[i] != slots2[j]` — the cross-action LS atom.
    Cross { i: usize, j: usize },
    /// `side.slots[i] == rhs` (or its negation), `rhs` a later slot of the
    /// same side or an observed constant.
    Lb {
        side: Side,
        i: usize,
        rhs: Term,
        neg: bool,
    },
}

impl Literal {
    fn eval(&self, s: &Sample) -> bool {
        match self {
            Literal::Cross { i, j } => s.slots1[*i] != s.slots2[*j],
            Literal::Lb { side, i, rhs, neg } => {
                let slots = match side {
                    Side::First => &s.slots1,
                    Side::Second => &s.slots2,
                };
                let rhs = match rhs {
                    Term::Slot(j) => &slots[*j],
                    Term::Const(v) => v,
                };
                (slots[*i] == *rhs) != *neg
            }
        }
    }

    fn to_formula(&self) -> Formula {
        match self {
            Literal::Cross { i, j } => Formula::NeqCross { i: *i, j: *j },
            Literal::Lb { side, i, rhs, neg } => {
                let op = if *neg { CmpOp::Ne } else { CmpOp::Eq };
                Formula::atom(*side, op, Term::Slot(*i), rhs.clone())
            }
        }
    }

    /// Drop priority: lower classes are dropped first, so the clause keeps
    /// its most general guards. Integer-constant pins are the most
    /// overfit-prone and go first; `nil`/boolean guards are exactly the
    /// Fig. 6 idiom (`p == nil`, `b == false`) and are kept longest among
    /// the LB atoms; cross atoms are the most general and dropped last.
    fn drop_class(&self) -> u8 {
        match self {
            Literal::Lb {
                rhs: Term::Const(Value::Int(_)),
                neg,
                ..
            } => u8::from(*neg),
            Literal::Lb {
                rhs: Term::Slot(_),
                neg,
                ..
            } => 2 + u8::from(*neg),
            Literal::Lb { neg, .. } => 4 + u8::from(!*neg),
            Literal::Cross { .. } => 6,
        }
    }

    fn swap_sides(&self) -> Literal {
        match self {
            Literal::Cross { i, j } => Literal::Cross { i: *j, j: *i },
            Literal::Lb { side, i, rhs, neg } => Literal::Lb {
                side: side.flip(),
                i: *i,
                rhs: rhs.clone(),
                neg: *neg,
            },
        }
    }

    fn is_cross(&self) -> bool {
        matches!(self, Literal::Cross { .. })
    }
}

/// All candidate literals for a pair, from its shape and the values its
/// samples realize.
fn candidates(samples: &[Sample], opts: &PairOptions) -> Vec<Literal> {
    let mut out = BTreeSet::new();
    for i in 0..opts.slots1 {
        for j in 0..opts.slots2 {
            if opts.same_method && i != j {
                // Off-diagonal cross atoms relate different slots of the
                // two interchangeable actions and are inherently
                // asymmetric; the diagonal ones are self-symmetric.
                continue;
            }
            out.insert(Literal::Cross { i, j });
        }
    }
    for (side, slots) in [(Side::First, opts.slots1), (Side::Second, opts.slots2)] {
        let observed: BTreeSet<Value> = samples
            .iter()
            .flat_map(|s| match side {
                Side::First => s.slots1.iter(),
                Side::Second => s.slots2.iter(),
            })
            .cloned()
            .collect();
        for i in 0..slots {
            for j in (i + 1)..slots {
                for neg in [false, true] {
                    out.insert(Literal::Lb {
                        side,
                        i,
                        rhs: Term::Slot(j),
                        neg,
                    });
                }
            }
            for v in &observed {
                for neg in [false, true] {
                    out.insert(Literal::Lb {
                        side,
                        i,
                        rhs: Term::Const(v.clone()),
                        neg,
                    });
                }
            }
        }
    }
    out.into_iter().collect()
}

fn admits_any(clause: &[Literal], samples: &[&Sample]) -> bool {
    samples.iter().any(|s| clause.iter().all(|l| l.eval(s)))
}

fn clause_formula(clause: &[Literal]) -> Formula {
    let mut lits = clause.to_vec();
    // Cross atoms first, then a stable order — matches the Fig. 6 idiom
    // (`k1 != k2 || …`) and keeps renders deterministic.
    lits.sort_by_key(|l| (u8::from(!l.is_cross()), l.clone()));
    lits.iter()
        .map(Literal::to_formula)
        .fold(Formula::True, Formula::and)
}

/// Runs the cover search. `samples` should already be aggregated by slot
/// vectors (the function re-aggregates defensively, non-commute winning).
pub fn synthesize_pair(samples: &[Sample], opts: &PairOptions) -> PairSynthesis {
    // Defensive aggregation: identical slots with conflicting labels
    // collapse to non-commuting.
    let mut agg: Vec<Sample> = Vec::new();
    for s in samples {
        if let Some(prev) = agg
            .iter_mut()
            .find(|p| p.slots1 == s.slots1 && p.slots2 == s.slots2)
        {
            prev.commutes &= s.commutes;
        } else {
            agg.push(s.clone());
        }
    }
    let good: Vec<&Sample> = agg.iter().filter(|s| s.commutes).collect();
    let bad: Vec<&Sample> = agg.iter().filter(|s| !s.commutes).collect();
    if bad.is_empty() {
        return PairSynthesis {
            formula: Formula::True,
            clauses: Vec::new(),
            uncovered: 0,
        };
    }
    if good.is_empty() {
        return PairSynthesis {
            formula: Formula::False,
            clauses: Vec::new(),
            uncovered: 0,
        };
    }

    let pool = candidates(&agg, opts);
    // The ECL fragment affords only one cross-bearing clause, so the
    // cross budget must go to the seeds that use it best: those whose
    // true cross atoms *by themselves* already exclude every
    // non-commuting sample (e.g. dictionary's distinct-key pairs, where
    // `k1 != k2` alone is consistent). Greedy dropping turns such a seed
    // into a maximally general pure-cross clause. Processing any other
    // seed first can spend the budget on a clause full of incidental
    // inequalities that is later pruned, leaving the distinct-key seeds
    // to a brittle constant encoding of `!=`.
    let cross_seeds_consistent = |s: &Sample| {
        let crosses: Vec<&Literal> = pool.iter().filter(|l| l.is_cross() && l.eval(s)).collect();
        !crosses.is_empty() && !bad.iter().any(|b| crosses.iter().all(|l| l.eval(b)))
    };
    let mut good = good;
    good.sort_by_key(|s| !cross_seeds_consistent(s));
    // Greedy drop, most-specific-first, over the literals of `pool` true
    // on `seed`. Weakening is monotone, so one pass yields a prime clause
    // (see the module docs). `None` when no consistent clause exists.
    let greedy = |seed: &Sample, use_cross: bool| -> Option<Vec<Literal>> {
        let mut clause: Vec<Literal> = pool
            .iter()
            .filter(|l| (use_cross || !l.is_cross()) && l.eval(seed))
            .cloned()
            .collect();
        if admits_any(&clause, &bad) {
            return None;
        }
        clause.sort_by_key(|l| (l.drop_class(), l.clone()));
        let mut k = 0;
        while k < clause.len() {
            let cand = clause.remove(k);
            if admits_any(&clause, &bad) {
                clause.insert(k, cand);
                k += 1;
            }
        }
        Some(clause)
    };
    // The clause(s) covering one seed: the greedy prime clause, plus the
    // discipline the assembled formula must obey — at most one
    // cross-bearing clause overall, and side-symmetry for same-method
    // pairs. `None` when the seed cannot be covered under `use_cross`.
    let clauses_for_seed = |seed: &Sample, use_cross: bool| -> Option<Vec<Vec<Literal>>> {
        let clause = greedy(seed, use_cross)?;
        if !opts.same_method {
            return Some(vec![clause]);
        }
        let set: BTreeSet<Literal> = clause.iter().cloned().collect();
        let swapped: BTreeSet<Literal> = set.iter().map(Literal::swap_sides).collect();
        if swapped == set {
            return Some(vec![clause]);
        }
        if clause.iter().any(Literal::is_cross) {
            // Merging with the mirror keeps a single cross clause; the
            // union must still cover the seed (its mirror literals may be
            // false there) — otherwise the caller retries without cross.
            let union: Vec<Literal> = set.union(&swapped).cloned().collect();
            if union.iter().all(|l| l.eval(seed)) && !admits_any(&union, &bad) {
                return Some(vec![union]);
            }
            return None;
        }
        // Samples are swap-closed with symmetric labels, so the mirror
        // clause is consistent whenever the clause is; keep both.
        let mirror: Vec<Literal> = swapped.into_iter().collect();
        if admits_any(&mirror, &bad) {
            return None;
        }
        Some(vec![clause, mirror])
    };
    let mut clauses: Vec<Vec<Literal>> = Vec::new();
    let mut cross_allowed = true;
    for seed in &good {
        if clauses.iter().any(|c| c.iter().all(|l| l.eval(seed))) {
            continue; // already covered
        }
        let new = clauses_for_seed(seed, cross_allowed).or_else(|| {
            // A cross-bearing clause that could not be symmetrized still
            // leaves the seed coverable by its constant pins alone.
            cross_allowed
                .then(|| clauses_for_seed(seed, false))
                .flatten()
        });
        let Some(new) = new else {
            continue; // inexpressible seed (counted as uncovered below)
        };
        if new.iter().flatten().any(|l| l.is_cross()) {
            cross_allowed = false;
        }
        clauses.extend(new);
    }

    // Prune clauses whose coverage the rest already provides. Mirror
    // orbits are pruned atomically for same-method pairs so the clause
    // set stays swap-closed.
    let covers = |clauses: &[Vec<Literal>], s: &Sample| -> bool {
        clauses.iter().any(|c| c.iter().all(|l| l.eval(s)))
    };
    let mut idx = 0;
    while idx < clauses.len() {
        let orbit: Vec<usize> = if opts.same_method {
            // The clause and its mirror live or die together, wherever
            // the mirror sits in the list — pruning one alone would leave
            // an asymmetric formula.
            let mirror: BTreeSet<Literal> = clauses[idx].iter().map(Literal::swap_sides).collect();
            (0..clauses.len())
                .filter(|&k| {
                    k == idx || clauses[k].iter().cloned().collect::<BTreeSet<_>>() == mirror
                })
                .collect()
        } else {
            vec![idx]
        };
        let rest: Vec<Vec<Literal>> = clauses
            .iter()
            .enumerate()
            .filter(|(k, _)| !orbit.contains(k))
            .map(|(_, c)| c.clone())
            .collect();
        let orbit_needed = good
            .iter()
            .any(|s| covers(&clauses, s) && !covers(&rest, s));
        if orbit_needed {
            idx += 1;
        } else {
            clauses = rest;
        }
    }

    // Assemble: the cross clause (at most one) first, left-folded — ECL by
    // construction.
    clauses.sort_by_key(|c| u8::from(!c.iter().any(Literal::is_cross)));
    let formula = clauses
        .iter()
        .map(|c| clause_formula(c))
        .fold(Formula::False, Formula::or);
    let uncovered = good.iter().filter(|s| !covers(&clauses, s)).count();
    PairSynthesis {
        formula,
        clauses: clauses
            .iter()
            .map(|c| c.iter().map(Literal::to_formula).collect())
            .collect(),
        uncovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(slots1: &[i64], slots2: &[i64], commutes: bool) -> Sample {
        Sample {
            slots1: slots1.iter().map(|&v| Value::Int(v)).collect(),
            slots2: slots2.iter().map(|&v| Value::Int(v)).collect(),
            commutes,
        }
    }

    #[test]
    fn all_commuting_is_true() {
        let s = [sample(&[1, 0], &[1, 0], true)];
        let out = synthesize_pair(
            &s,
            &PairOptions {
                slots1: 2,
                slots2: 2,
                same_method: false,
            },
        );
        assert_eq!(out.formula, Formula::True);
    }

    #[test]
    fn none_commuting_is_false() {
        let s = [sample(&[1, 0], &[1, 0], false)];
        let out = synthesize_pair(
            &s,
            &PairOptions {
                slots1: 2,
                slots2: 2,
                same_method: false,
            },
        );
        assert_eq!(out.formula, Formula::False);
    }

    #[test]
    fn cross_inequality_is_recovered() {
        // Commute exactly when the first slots differ.
        let mut samples = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                samples.push(sample(&[a, 9], &[b, 9], a != b));
            }
        }
        let out = synthesize_pair(
            &samples,
            &PairOptions {
                slots1: 2,
                slots2: 2,
                same_method: true,
            },
        );
        assert_eq!(out.formula, Formula::NeqCross { i: 0, j: 0 });
        assert_eq!(out.uncovered, 0);
    }

    #[test]
    fn formula_is_consistent_and_total_on_a_random_truthtable() {
        // A dense arbitrary labeling must still synthesize a formula that
        // admits every commuting sample and no non-commuting one (the
        // constant pins make every sample expressible).
        let mut samples = Vec::new();
        for a in 0..4i64 {
            for b in 0..4i64 {
                let commutes = (a * 7 + b * 3) % 5 < 2;
                samples.push(sample(&[a], &[b], commutes));
            }
        }
        let out = synthesize_pair(
            &samples,
            &PairOptions {
                slots1: 1,
                slots2: 1,
                same_method: false,
            },
        );
        assert_eq!(out.uncovered, 0);
        for s in &samples {
            assert_eq!(
                out.formula.eval(&s.slots1, &s.slots2),
                s.commutes,
                "{s:?} vs {}",
                out.formula
            );
        }
    }
}
