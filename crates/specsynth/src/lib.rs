//! # crace-specsynth — weakest-condition synthesis of commutativity specs
//!
//! The linter's bounded oracle (`crace_speclint::oracle`) can *check* a
//! handwritten commutativity condition against a type's executable
//! reference semantics. This crate runs the same machinery in reverse: it
//! **generates** the condition. For every method pair of a supported data
//! type it
//!
//! 1. labels every bounded action pair commute/non-commute by executing
//!    both orders against the reference state and aggregating by
//!    observable slot vectors (non-commute wins — a condition over
//!    arguments and return values cannot distinguish hidden states that
//!    realize the same slots),
//! 2. searches for the weakest DNF formula in the ECL fragment consistent
//!    with the labels (a greedy prime-implicant cover — the per-pair
//!    entry point is [`synthesize_pair`]), and
//! 3. assembles the per-pair conditions into a full [`Spec`], renders it
//!    to ECL source, and verifies the artifact end to end: the source
//!    must reparse to the same formula trees, compile through the full
//!    A.3 translation pipeline, and pass the entire lint gate.
//!
//! By construction the synthesized condition admits **every** slot vector
//! the oracle labels always-commuting and **none** it labels
//! non-commuting, so on the bounded domain it is the weakest sound
//! slot-expressible condition — the same yardstick pass L011 holds the
//! handwritten builtins to. `crace synth dictionary` reproduces the
//! paper's Fig. 6 dictionary spec; `crace synth register` and `queue`
//! show where the handwritten specs are sound but strictly stronger.
//!
//! ```
//! let synthesis = crace_specsynth::synthesize(
//!     "counter",
//!     &crace_specsynth::SynthConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(synthesis.lint_exit, 0);
//! assert!(synthesis.source.contains("commute"));
//! ```

mod cover;

pub use cover::{synthesize_pair, PairOptions, PairSynthesis, Sample};

use crace_core::{translate_with, A3_PIPELINE};
use crace_model::MethodId;
use crace_spec::{builtin, parse, Formula, MethodRef, Spec, SpecBuilder};
use crace_speclint::oracle::{self, OracleConfig};
use crace_speclint::{abstract_equiv, lint_with, LintOptions};
use std::fmt;

/// Knobs for a synthesis run.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Largest integer in the bounded value universe (`--universe N`).
    /// The default of 2 reproduces the domains the linter audits with.
    pub max_int: i64,
    /// Budget on realized executions per method pair (`--max-actions N`);
    /// exceeding it is an error, never a silent truncation.
    pub max_actions: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            max_int: OracleConfig::default().max_int,
            max_actions: oracle::DEFAULT_MAX_ACTIONS,
        }
    }
}

impl SynthConfig {
    fn oracle(&self) -> OracleConfig {
        OracleConfig {
            max_int: self.max_int,
            max_actions: self.max_actions,
        }
    }
}

/// Why a synthesis run failed.
#[derive(Clone, Debug)]
pub enum SynthError {
    /// The requested type has no executable reference semantics.
    UnknownType(String),
    /// The per-pair execution budget was exceeded; re-run with a larger
    /// `--max-actions` or a smaller `--universe`.
    Budget(oracle::BudgetExceeded),
    /// The synthesized artifact failed its own verification (reparse,
    /// translation, or lint) — a bug in the synthesizer, not the input.
    Verification {
        /// Which gate failed (`"parse"`, `"round-trip"`, `"translate"`,
        /// `"lint"`, `"build"`).
        stage: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnknownType(name) => write!(
                f,
                "no executable reference semantics for `{name}`; supported types: {}",
                supported().join(", ")
            ),
            SynthError::Budget(b) => write!(f, "{b}"),
            SynthError::Verification { stage, detail } => write!(
                f,
                "synthesized spec failed self-verification at the {stage} gate: {detail}"
            ),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<oracle::BudgetExceeded> for SynthError {
    fn from(b: oracle::BudgetExceeded) -> SynthError {
        SynthError::Budget(b)
    }
}

/// Comparison of a synthesized condition against the handwritten builtin.
#[derive(Clone, Debug)]
pub struct HandwrittenComparison {
    /// The builtin's condition for the pair.
    pub formula: Formula,
    /// Truth-table equivalence verdict (`None` when the table is too
    /// large to enumerate, which never happens for the builtins).
    pub equivalent: Option<bool>,
    /// Aggregated always-commuting samples the handwritten condition
    /// admits; when below [`PairReport::commuting`], the handwritten
    /// condition is strictly stronger (what L011 warns about).
    pub admitted: usize,
}

/// The synthesis outcome for one method pair.
#[derive(Clone, Debug)]
pub struct PairReport {
    /// First method name (pairs are reported with `method1 <= method2`).
    pub method1: String,
    /// Second method name.
    pub method2: String,
    /// The synthesized weakest condition.
    pub formula: Formula,
    /// The condition rendered as ECL source.
    pub condition: String,
    /// Aggregated labeled samples for the pair.
    pub samples: usize,
    /// How many of them always commute — all admitted by [`formula`]
    /// whenever [`uncovered`] is zero.
    ///
    /// [`formula`]: PairReport::formula
    /// [`uncovered`]: PairReport::uncovered
    pub commuting: usize,
    /// Always-commuting samples the formula fails to admit (inexpressible
    /// in the single-cross-clause ECL fragment; `0` for every builtin).
    pub uncovered: usize,
    /// How the handwritten builtin condition compares.
    pub handwritten: HandwrittenComparison,
}

/// A complete synthesized specification plus its verification evidence.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The data type (and spec) name.
    pub name: String,
    /// The synthesized spec, already round-tripped through the parser.
    pub spec: Spec,
    /// Rendered ECL source — parses back to [`spec`] and lints clean.
    ///
    /// [`spec`]: Synthesis::spec
    pub source: String,
    /// Per-pair synthesis reports, `method1 <= method2` order.
    pub pairs: Vec<PairReport>,
    /// Exit code of the full lint gate over [`source`] (0 = clean).
    ///
    /// [`source`]: Synthesis::source
    pub lint_exit: i32,
}

/// The data types with executable reference semantics, i.e. the valid
/// arguments to [`synthesize`].
pub fn supported() -> Vec<&'static str> {
    builtin::all()
        .iter()
        .filter(|s| oracle::kind_for(s.name()).is_some())
        .map(|s| match s.name() {
            "dictionary" => "dictionary",
            "dictionary_ext" => "dictionary_ext",
            "set" => "set",
            "counter" => "counter",
            "register" => "register",
            "queue" => "queue",
            other => unreachable!("unmodeled builtin {other}"),
        })
        .collect()
}

/// Synthesizes the weakest bounded-domain commutativity specification for
/// one data type and verifies the emitted artifact end to end.
pub fn synthesize(name: &str, config: &SynthConfig) -> Result<Synthesis, SynthError> {
    let handwritten = builtin::all()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| SynthError::UnknownType(name.to_string()))?;
    let kind = oracle::kind_for(name).ok_or_else(|| SynthError::UnknownType(name.to_string()))?;
    let ocfg = config.oracle();

    let mut builder = SpecBuilder::new(name);
    let mut ids: Vec<MethodRef> = Vec::new();
    for sig in handwritten.methods() {
        ids.push(builder.method(sig.name(), sig.num_args()));
    }

    let mut pairs = Vec::new();
    for i in 0..handwritten.num_methods() {
        for j in i..handwritten.num_methods() {
            let (m1, m2) = (MethodId(i as u32), MethodId(j as u32));
            let (sig1, sig2) = (handwritten.sig(m1), handwritten.sig(m2));
            let samples = oracle::labeled_samples(kind, sig1, sig2, &ocfg)?.ok_or_else(|| {
                SynthError::Verification {
                    stage: "build",
                    detail: format!(
                        "reference semantics for `{name}` does not model `{}`/`{}`",
                        sig1.name(),
                        sig2.name()
                    ),
                }
            })?;
            let samples: Vec<Sample> = samples
                .into_iter()
                .map(|s| Sample {
                    slots1: s.slots1,
                    slots2: s.slots2,
                    commutes: s.commutes,
                })
                .collect();
            let opts = PairOptions {
                slots1: sig1.num_args() + 1,
                slots2: sig2.num_args() + 1,
                same_method: i == j,
            };
            let synthesized = synthesize_pair(&samples, &opts);
            let commuting = samples.iter().filter(|s| s.commutes).count();
            let declared = handwritten.formula(m1, m2);
            let handwritten_admitted = samples
                .iter()
                .filter(|s| s.commutes && declared.eval(&s.slots1, &s.slots2))
                .count();
            pairs.push(PairReport {
                method1: sig1.name().to_string(),
                method2: sig2.name().to_string(),
                formula: synthesized.formula.clone(),
                condition: synthesized.formula.to_string(),
                samples: samples.len(),
                commuting,
                uncovered: synthesized.uncovered,
                handwritten: HandwrittenComparison {
                    equivalent: abstract_equiv(&declared, &synthesized.formula),
                    formula: declared,
                    admitted: handwritten_admitted,
                },
            });
            builder
                .rule(ids[i].id, ids[j].id, synthesized.formula)
                .map_err(|e| SynthError::Verification {
                    stage: "build",
                    detail: format!("pair (`{}`, `{}`): {e}", sig1.name(), sig2.name()),
                })?;
        }
    }
    let built = builder.finish().map_err(|e| SynthError::Verification {
        stage: "build",
        detail: e.to_string(),
    })?;

    let source = render_source(&built, config);
    let spec = verify(&built, &source)?;
    let report = lint_with(
        &source,
        &LintOptions {
            max_actions: config.max_actions,
        },
    )
    .map_err(|e| SynthError::Verification {
        stage: "lint",
        detail: e.render(&source),
    })?;
    let lint_exit = report.exit_code();
    if report.has_errors() {
        return Err(SynthError::Verification {
            stage: "lint",
            detail: report.render_pretty(&source),
        });
    }
    Ok(Synthesis {
        name: name.to_string(),
        spec,
        source,
        pairs,
        lint_exit,
    })
}

/// Synthesizes every supported type (the CLI's `crace synth all`).
pub fn synthesize_all(config: &SynthConfig) -> Result<Vec<Synthesis>, SynthError> {
    supported()
        .into_iter()
        .map(|name| synthesize(name, config))
        .collect()
}

fn render_source(spec: &Spec, config: &SynthConfig) -> String {
    let mut out = format!(
        "# Synthesized by `crace synth {}` (value universe 1..={}):\n\
         # the weakest bounded-domain ECL commutativity conditions consistent\n\
         # with the type's executable reference semantics.\n",
        spec.name(),
        config.max_int
    );
    out.push_str(&spec.to_source());
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// The emitted artifact must round-trip through the parser to identical
/// formula trees and compile through the full A.3 pipeline.
fn verify(built: &Spec, source: &str) -> Result<Spec, SynthError> {
    let reparsed = parse(source).map_err(|e| SynthError::Verification {
        stage: "parse",
        detail: e.render(source),
    })?;
    for i in 0..built.num_methods() {
        for j in 0..built.num_methods() {
            let (x, y) = (MethodId(i as u32), MethodId(j as u32));
            if reparsed.formula(x, y) != built.formula(x, y) {
                return Err(SynthError::Verification {
                    stage: "round-trip",
                    detail: format!(
                        "pair (`{}`, `{}`) reparsed to `{}`, built `{}`",
                        built.sig(x).name(),
                        built.sig(y).name(),
                        reparsed.formula(x, y),
                        built.formula(x, y)
                    ),
                });
            }
        }
    }
    translate_with(&reparsed, &A3_PIPELINE).map_err(|e| SynthError::Verification {
        stage: "translate",
        detail: e.to_string(),
    })?;
    Ok(reparsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_spec::{CmpOp, Side, Term};

    fn synth(name: &str) -> Synthesis {
        synthesize(name, &SynthConfig::default()).expect(name)
    }

    fn pair<'a>(s: &'a Synthesis, m1: &str, m2: &str) -> &'a PairReport {
        s.pairs
            .iter()
            .find(|p| p.method1 == m1 && p.method2 == m2)
            .unwrap_or_else(|| panic!("no pair ({m1}, {m2})"))
    }

    #[test]
    fn all_supported_types_synthesize_and_lint_clean() {
        for name in supported() {
            let s = synth(name);
            assert_eq!(s.lint_exit, 0, "{name}:\n{}", s.source);
            assert_eq!(
                s.pairs.iter().map(|p| p.uncovered).sum::<usize>(),
                0,
                "{name} left commuting samples uncovered"
            );
        }
    }

    #[test]
    fn dictionary_matches_fig6() {
        let s = synth("dictionary");
        for (m1, m2) in [("put", "put"), ("get", "put"), ("put", "size")] {
            // Pairs are stored method-id ordered; look up either way.
            let p = s
                .pairs
                .iter()
                .find(|p| {
                    (p.method1 == m1 && p.method2 == m2) || (p.method1 == m2 && p.method2 == m1)
                })
                .unwrap();
            assert_eq!(
                p.handwritten.equivalent,
                Some(true),
                "({}, {}): synthesized `{}` vs handwritten `{}`",
                p.method1,
                p.method2,
                p.condition,
                p.handwritten.formula
            );
        }
        // Reads always commute.
        assert_eq!(pair(&s, "get", "get").formula, Formula::True);
        assert_eq!(pair(&s, "get", "size").formula, Formula::True);
        assert_eq!(pair(&s, "size", "size").formula, Formula::True);
    }

    #[test]
    fn synthesized_conditions_dominate_handwritten_on_the_oracle() {
        // "Match or beat": for every pair the synthesized condition admits
        // every always-commuting sample (uncovered == 0 and commuting ==
        // admitted by construction), so it can only admit >= what the
        // handwritten condition admits. For the L011-clean builtins the
        // handwritten condition is already weakest on realized samples, so
        // the two must tie exactly there. (Full truth-table equivalence
        // can still differ on *unrealizable* slot vectors — e.g. dict_ext
        // `put(k,1) -> 1` next to `remove(k) -> nil` asserts the key both
        // present and absent — where weakest-on-samples is unconstrained.)
        for name in supported() {
            let s = synth(name);
            for p in &s.pairs {
                assert_eq!(p.uncovered, 0, "{name} ({}, {})", p.method1, p.method2);
                assert!(
                    p.handwritten.admitted <= p.commuting,
                    "{name} ({}, {})",
                    p.method1,
                    p.method2
                );
                if matches!(name, "dictionary" | "dictionary_ext" | "set" | "counter") {
                    assert_eq!(
                        p.handwritten.admitted, p.commuting,
                        "{name} ({}, {}): handwritten `{}` should be precise",
                        p.method1, p.method2, p.handwritten.formula
                    );
                }
            }
        }
    }

    #[test]
    fn queue_synthesis_beats_the_handwritten_spec() {
        let s = synth("queue");
        // deq/deq: both must return nil (empty queue) — the handwritten
        // spec says plain `false`.
        let p = pair(&s, "deq", "deq");
        assert_eq!(p.handwritten.equivalent, Some(false));
        assert!(p.handwritten.admitted < p.commuting);
        let nil_ret = |side| {
            Formula::atom(
                side,
                CmpOp::Eq,
                Term::Slot(0),
                Term::Const(crace_model::Value::Nil),
            )
        };
        assert_eq!(
            p.formula,
            nil_ret(Side::First).and(nil_ret(Side::Second)),
            "got `{}`",
            p.condition
        );
        // enq/deq: commute exactly when the deq returned a value that is
        // neither nil (a miss ordered before the enq would have caught the
        // enqueued value) nor the enqueued value itself (from an empty
        // queue the other order misses). The nil guard appears as the
        // cross atom `enq_ret != deq_ret` since enq always returns nil.
        let p = pair(&s, "enq", "deq");
        let one = [crace_model::Value::Int(1), crace_model::Value::Nil];
        let eval = |deq_ret: crace_model::Value| p.formula.eval(&one, &[deq_ret]);
        assert!(eval(crace_model::Value::Int(2)), "got `{}`", p.condition);
        assert!(!eval(crace_model::Value::Int(1)), "got `{}`", p.condition);
        assert!(!eval(crace_model::Value::Nil), "got `{}`", p.condition);
        assert_eq!(p.handwritten.equivalent, Some(false));
        assert!(p.handwritten.admitted < p.commuting);
        // deq/len: the length is only unchanged when the deq missed.
        let p = pair(&s, "deq", "len");
        assert_eq!(p.formula, nil_ret(Side::First), "got `{}`", p.condition);
        // enq/len never commutes — matches handwritten.
        assert_eq!(pair(&s, "enq", "len").formula, Formula::False);
        assert_eq!(pair(&s, "len", "len").formula, Formula::True);
    }

    #[test]
    fn register_synthesis_is_strictly_weaker_than_handwritten() {
        let s = synth("register");
        let p = pair(&s, "write", "write");
        assert_eq!(p.handwritten.equivalent, Some(false));
        assert!(p.handwritten.admitted < p.commuting, "{}", p.condition);
        assert!(p.uncovered == 0);
        // Reads commute.
        assert_eq!(pair(&s, "read", "read").formula, Formula::True);
    }

    #[test]
    fn unknown_type_is_a_clean_error() {
        let err = synthesize("heap", &SynthConfig::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("heap") && msg.contains("dictionary"), "{msg}");
    }

    #[test]
    fn budget_overflow_names_the_flag() {
        let err = synthesize(
            "dictionary",
            &SynthConfig {
                max_actions: 100,
                ..SynthConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthError::Budget(_)));
        assert!(err.to_string().contains("--max-actions"), "{err}");
    }

    #[test]
    fn larger_universe_still_verifies() {
        let s = synthesize(
            "counter",
            &SynthConfig {
                max_int: 4,
                max_actions: 1 << 16,
            },
        )
        .unwrap();
        assert!(!s.source.is_empty());
        assert_eq!(s.pairs.iter().map(|p| p.uncovered).sum::<usize>(), 0);
    }
}
