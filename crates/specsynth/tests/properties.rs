//! Soundness, maximality, and primeness of the cover search on *random*
//! reference semantics — not just the builtins the crate ships with.
//!
//! Each case builds a random deterministic state machine (a transition
//! table over a small state/argument domain), realizes every bounded
//! action pair in both orders, aggregates labels by observable slot
//! vectors exactly like the linter's oracle (non-commute wins), and runs
//! [`synthesize_pair`] on the result. The synthesized formula must:
//!
//! * **soundness** — admit no aggregated non-commuting sample,
//! * **maximality** — admit every aggregated always-commuting sample
//!   (with constant pins in the candidate pool every aggregated sample is
//!   expressible, so `uncovered` must be zero); together with soundness
//!   this makes it the weakest consistent condition on the sample space,
//! * **primeness** — for cross-method pairs, dropping any literal from
//!   any clause must admit some non-commuting sample (no clause carries
//!   dead weight),
//! * **symmetry** — for same-method pairs (trained on swap-closed
//!   samples), the formula must be invariant under swapping sides.

use crace_model::Value;
use crace_specsynth::{synthesize_pair, PairOptions, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random deterministic reference semantics: `table[state][method
/// encoding of args] -> (next state, return)`.
struct Machine {
    states: usize,
    /// Per method: number of arguments (0 or 1 here — enough to exercise
    /// both shapes) over the argument domain `0..vals`.
    args: [usize; 2],
    vals: i64,
    table: Vec<Vec<Vec<(usize, i64)>>>,
}

impl Machine {
    fn random(rng: &mut StdRng) -> Machine {
        let states = rng.gen_range(2..=4);
        let args = [rng.gen_range(0..=1), rng.gen_range(0..=1)];
        let vals = rng.gen_range(2..=3);
        let table = (0..2)
            .map(|m| {
                (0..states)
                    .map(|_| {
                        let arg_tuples = (vals as usize).pow(args[m] as u32);
                        (0..arg_tuples)
                            .map(|_| (rng.gen_range(0..states), rng.gen_range(0..vals)))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Machine {
            states,
            args,
            vals,
            table,
        }
    }

    fn arg_tuples(&self, method: usize) -> Vec<Vec<i64>> {
        if self.args[method] == 0 {
            vec![vec![]]
        } else {
            (0..self.vals).map(|v| vec![v]).collect()
        }
    }

    fn step(&self, state: usize, method: usize, args: &[i64]) -> (usize, i64) {
        let idx = args.first().map_or(0, |&v| v as usize);
        self.table[method][state][idx]
    }
}

fn slots(args: &[i64], ret: i64) -> Vec<Value> {
    args.iter()
        .map(|&v| Value::Int(v))
        .chain([Value::Int(ret)])
        .collect()
}

/// Realizes every bounded pair of invocations of `m1` then `m2` (both
/// orders) from every state and aggregates by observable slots.
fn labeled_samples(machine: &Machine, m1: usize, m2: usize) -> Vec<Sample> {
    let mut agg: Vec<Sample> = Vec::new();
    let mut record = |slots1: Vec<Value>, slots2: Vec<Value>, commutes: bool| {
        if let Some(prev) = agg
            .iter_mut()
            .find(|p| p.slots1 == slots1 && p.slots2 == slots2)
        {
            prev.commutes &= commutes;
        } else {
            agg.push(Sample {
                slots1,
                slots2,
                commutes,
            });
        }
    };
    for state in 0..machine.states {
        for a1 in machine.arg_tuples(m1) {
            for a2 in machine.arg_tuples(m2) {
                // Order A: m1 then m2.
                let (s_mid, r1) = machine.step(state, m1, &a1);
                let (s_end_a, r2) = machine.step(s_mid, m2, &a2);
                // Order B: m2 then m1.
                let (s_mid_b, r2b) = machine.step(state, m2, &a2);
                let (s_end_b, r1b) = machine.step(s_mid_b, m1, &a1);
                let commutes = r1 == r1b && r2 == r2b && s_end_a == s_end_b;
                record(slots(&a1, r1), slots(&a2, r2), commutes);
                record(slots(&a1, r1b), slots(&a2, r2b), commutes);
            }
        }
    }
    agg
}

#[test]
fn random_semantics_synthesize_sound_maximal_prime_conditions() {
    let mut nontrivial = 0u32;
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let machine = Machine::random(&mut rng);
        let samples = labeled_samples(&machine, 0, 1);
        let opts = PairOptions {
            slots1: machine.args[0] + 1,
            slots2: machine.args[1] + 1,
            same_method: false,
        };
        let out = synthesize_pair(&samples, &opts);
        let good: Vec<&Sample> = samples.iter().filter(|s| s.commutes).collect();
        let bad: Vec<&Sample> = samples.iter().filter(|s| !s.commutes).collect();
        if !good.is_empty() && !bad.is_empty() {
            nontrivial += 1;
        }
        // Soundness: no non-commuting sample is admitted.
        for s in &bad {
            assert!(
                !out.formula.eval(&s.slots1, &s.slots2),
                "seed {seed}: `{}` admits non-commuting {s:?}",
                out.formula
            );
        }
        // Maximality: every always-commuting sample is admitted — with
        // constant pins in the pool, nothing is inexpressible.
        assert_eq!(out.uncovered, 0, "seed {seed}: `{}`", out.formula);
        for s in &good {
            assert!(
                out.formula.eval(&s.slots1, &s.slots2),
                "seed {seed}: `{}` rejects always-commuting {s:?}",
                out.formula
            );
        }
        // Primeness: dropping any literal from any clause must admit some
        // non-commuting sample, otherwise the clause carries dead weight.
        for clause in &out.clauses {
            for dropped in 0..clause.len() {
                if clause.len() == 1 {
                    // A singleton weakens to `true`; it must be there
                    // because some bad sample exists at all.
                    assert!(!bad.is_empty(), "seed {seed}");
                    continue;
                }
                let admits_bad = bad.iter().any(|s| {
                    clause
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != dropped)
                        .all(|(_, lit)| lit.eval(&s.slots1, &s.slots2))
                });
                assert!(
                    admits_bad,
                    "seed {seed}: clause {clause:?} keeps a redundant literal"
                );
            }
        }
        // Determinism: the search is a pure function of its input.
        let again = synthesize_pair(&samples, &opts);
        assert_eq!(out.formula, again.formula, "seed {seed}");
    }
    // The generator must actually exercise the search, not just the
    // `true`/`false` short-circuits.
    assert!(nontrivial > 50, "only {nontrivial} nontrivial cases");
}

#[test]
fn same_method_synthesis_is_symmetric() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let machine = Machine::random(&mut rng);
        // Same method on both sides: the sample set is swap-closed with
        // symmetric labels by construction (both orders are recorded).
        let samples = labeled_samples(&machine, 0, 0);
        let opts = PairOptions {
            slots1: machine.args[0] + 1,
            slots2: machine.args[0] + 1,
            same_method: true,
        };
        let out = synthesize_pair(&samples, &opts);
        // Symmetry: swapping the two actions never changes the verdict.
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    out.formula.eval(&a.slots1, &b.slots2),
                    out.formula.eval(&b.slots2, &a.slots1),
                    "seed {seed}: `{}` is asymmetric",
                    out.formula
                );
            }
        }
        // Soundness and maximality hold here too.
        for s in &samples {
            assert_eq!(
                out.formula.eval(&s.slots1, &s.slots2),
                s.commutes,
                "seed {seed}: `{}` wrong on {s:?} (uncovered {})",
                out.formula,
                out.uncovered
            );
        }
        assert_eq!(out.uncovered, 0, "seed {seed}");
    }
}

#[test]
fn conflicting_labels_aggregate_to_non_commuting() {
    // The engine re-aggregates defensively: two identical slot vectors
    // with conflicting labels collapse to non-commuting, so the formula
    // must reject them.
    let s1 = Sample {
        slots1: vec![Value::Int(1), Value::Int(0)],
        slots2: vec![Value::Int(1), Value::Int(0)],
        commutes: true,
    };
    let s2 = Sample {
        commutes: false,
        ..s1.clone()
    };
    let out = synthesize_pair(
        &[s1.clone(), s2],
        &PairOptions {
            slots1: 2,
            slots2: 2,
            same_method: false,
        },
    );
    assert!(!out.formula.eval(&s1.slots1, &s1.slots2));
}
