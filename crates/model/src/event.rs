//! Trace events — the vocabulary of Table 1 of the paper plus low-level
//! shadow memory accesses.

use crate::{Action, LocId, LockId, ThreadId};
use std::fmt;

/// One entry of a program trace.
///
/// The first four variants are the synchronization events whose standard
/// vector-clock treatment is given in Table 1 of the paper; [`Event::Action`]
/// is the novel part handled by Algorithm 1. [`Event::Read`] and
/// [`Event::Write`] are low-level shadow accesses consumed by the FastTrack
/// baseline (they are invisible to the commutativity detector, exactly as
/// RoadRunner feeds different event streams to different back-ends).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `τ : fork(u)` — thread `parent` creates thread `child`.
    Fork {
        /// The forking thread.
        parent: ThreadId,
        /// The newly created thread.
        child: ThreadId,
    },
    /// `τ : join(u)` — thread `parent` waits until `child` terminates.
    Join {
        /// The waiting thread.
        parent: ThreadId,
        /// The thread being joined.
        child: ThreadId,
    },
    /// `τ : acq(l)` — thread `tid` acquires lock `lock`.
    Acquire {
        /// The acquiring thread.
        tid: ThreadId,
        /// The acquired lock.
        lock: LockId,
    },
    /// `τ : rel(l)` — thread `tid` releases lock `lock`.
    Release {
        /// The releasing thread.
        tid: ThreadId,
        /// The released lock.
        lock: LockId,
    },
    /// `τ : o.m(x⃗)/y⃗` — thread `tid` performs a method invocation.
    Action {
        /// The invoking thread.
        tid: ThreadId,
        /// The invocation, with concrete arguments and return value.
        action: Action,
    },
    /// Thread `tid` reads low-level location `loc`.
    Read {
        /// The reading thread.
        tid: ThreadId,
        /// The location read.
        loc: LocId,
    },
    /// Thread `tid` writes low-level location `loc`.
    Write {
        /// The writing thread.
        tid: ThreadId,
        /// The location written.
        loc: LocId,
    },
}

impl Event {
    /// The thread that performed this event (for forks, the parent).
    pub fn tid(&self) -> ThreadId {
        match self {
            Event::Fork { parent, .. } | Event::Join { parent, .. } => *parent,
            Event::Acquire { tid, .. }
            | Event::Release { tid, .. }
            | Event::Action { tid, .. }
            | Event::Read { tid, .. }
            | Event::Write { tid, .. } => *tid,
        }
    }

    /// Returns the action if this is an [`Event::Action`].
    pub fn action(&self) -> Option<&Action> {
        match self {
            Event::Action { action, .. } => Some(action),
            _ => None,
        }
    }

    /// Is this one of the four synchronization events of Table 1?
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Event::Fork { .. } | Event::Join { .. } | Event::Acquire { .. } | Event::Release { .. }
        )
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Fork { parent, child } => write!(f, "{parent}: fork({child})"),
            Event::Join { parent, child } => write!(f, "{parent}: join({child})"),
            Event::Acquire { tid, lock } => write!(f, "{tid}: acq({lock})"),
            Event::Release { tid, lock } => write!(f, "{tid}: rel({lock})"),
            Event::Action { tid, action } => write!(f, "{tid}: {action}"),
            Event::Read { tid, loc } => write!(f, "{tid}: read({loc})"),
            Event::Write { tid, loc } => write!(f, "{tid}: write({loc})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodId, ObjId, Value};

    #[test]
    fn tid_of_each_variant() {
        let t = ThreadId(3);
        assert_eq!(
            Event::Fork {
                parent: t,
                child: ThreadId(4)
            }
            .tid(),
            t
        );
        assert_eq!(
            Event::Join {
                parent: t,
                child: ThreadId(4)
            }
            .tid(),
            t
        );
        assert_eq!(
            Event::Acquire {
                tid: t,
                lock: LockId(0)
            }
            .tid(),
            t
        );
        assert_eq!(
            Event::Read {
                tid: t,
                loc: LocId(1)
            }
            .tid(),
            t
        );
    }

    #[test]
    fn sync_classification() {
        assert!(Event::Release {
            tid: ThreadId(0),
            lock: LockId(0)
        }
        .is_sync());
        assert!(!Event::Read {
            tid: ThreadId(0),
            loc: LocId(0)
        }
        .is_sync());
        let act = Event::Action {
            tid: ThreadId(0),
            action: Action::new(ObjId(0), MethodId(0), vec![], Value::Nil),
        };
        assert!(!act.is_sync());
        assert!(act.action().is_some());
    }

    #[test]
    fn display_matches_table_one_notation() {
        let e = Event::Acquire {
            tid: ThreadId(2),
            lock: LockId(5),
        };
        assert_eq!(e.to_string(), "τ2: acq(l5)");
    }
}
