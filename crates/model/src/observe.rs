//! The [`Observer`] — an [`Analysis`] that wraps any other analysis and
//! measures it.
//!
//! The observer is a *tee*: every event is forwarded to the wrapped
//! detector unchanged, while a [`crace_obs::Registry`] accumulates
//! per-kind event counts and (sampled) per-dispatch latency histograms.
//! Wrapping costs one relaxed atomic increment per event plus, on every
//! `sample_every`-th event, two monotonic clock reads — measured well
//! under 5% of a bare RD2 dispatch (see EXPERIMENTS.md).

use crate::{Action, Analysis, LocId, LockId, RaceReport, ThreadId};
use crace_obs::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of event kinds ([`Event`] variants) tracked separately.
const KINDS: usize = 7;

/// Metric-name suffix per event kind; the index is the `kind` each
/// `Analysis` callback passes to [`Observer::observe`].
const KIND_NAMES: [&str; KINDS] = [
    "fork", "join", "acquire", "release", "action", "read", "write",
];

/// Default sampling period for dispatch timing: time one event in 64.
/// Counting stays exact; only the latency histogram is sampled.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Wraps an [`Analysis`], forwarding every callback while recording
/// per-kind event counters (`<name>.events.<kind>`, exact) and sampled
/// dispatch-latency histograms (`<name>.event_ns.<kind>`, nanoseconds).
///
/// [`Observer::snapshot`] additionally folds the wrapped detector's
/// current [`RaceReport`] into the registry (`<name>.races.total`,
/// `<name>.races.distinct`, and a `<name>.races.site.<site>` counter per
/// racing object), so one snapshot carries the whole picture.
///
/// # Examples
///
/// ```
/// use crace_model::{Analysis, Event, NoopAnalysis, Observer, ThreadId};
///
/// let obs = Observer::new(NoopAnalysis::new());
/// obs.on_event(&Event::Fork { parent: ThreadId(0), child: ThreadId(1) });
/// let snap = obs.snapshot();
/// assert_eq!(
///     snap.get("uninstrumented.events.fork"),
///     Some(&crace_obs::MetricValue::Counter(1))
/// );
/// ```
pub struct Observer<A> {
    inner: A,
    registry: Arc<Registry>,
    /// `<name>.events.<kind>` counters, pre-resolved so the hot path does
    /// no registry lookups.
    events: [Arc<Counter>; KINDS],
    /// `<name>.event_ns.<kind>` histograms, likewise pre-resolved.
    latency: [Arc<Histogram>; KINDS],
    /// Global event sequence, used only to pick timing samples.
    seq: AtomicU64,
    sample_every: u64,
}

impl<A: Analysis> Observer<A> {
    /// Wraps `inner` with a fresh registry and default timing sampling.
    pub fn new(inner: A) -> Observer<A> {
        Observer::with_registry(inner, Arc::new(Registry::new()))
    }

    /// Wraps `inner`, recording into a shared `registry` (so one snapshot
    /// can span several observed detectors, or application metrics).
    pub fn with_registry(inner: A, registry: Arc<Registry>) -> Observer<A> {
        Observer::with_sampling(inner, registry, DEFAULT_SAMPLE_EVERY)
    }

    /// Wraps `inner` with a fresh registry and an explicit dispatch-latency
    /// sampling rate: time one event in `rate` (`1` times every dispatch,
    /// `0` disables timing). Event counting stays exact regardless. The
    /// default rate is [`DEFAULT_SAMPLE_EVERY`] (64), surfaced on the CLI
    /// as `crace replay --metrics --sample-rate <n>`.
    pub fn with_sample_rate(inner: A, rate: u64) -> Observer<A> {
        Observer::with_sampling(inner, Arc::new(Registry::new()), rate)
    }

    /// Full-control constructor: `sample_every` = 1 times every dispatch
    /// (highest fidelity, highest overhead); 0 disables timing entirely.
    pub fn with_sampling(inner: A, registry: Arc<Registry>, sample_every: u64) -> Observer<A> {
        let name = inner.name().to_string();
        let events = KIND_NAMES.map(|k| registry.counter(&format!("{name}.events.{k}")));
        let latency = KIND_NAMES.map(|k| registry.histogram(&format!("{name}.event_ns.{k}")));
        Observer {
            inner,
            registry,
            events,
            latency,
            seq: AtomicU64::new(0),
            sample_every,
        }
    }

    /// The wrapped analysis.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Consumes the observer, returning the wrapped analysis.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The registry this observer records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Folds the wrapped detector's race report into the registry and
    /// returns a point-in-time snapshot of everything recorded so far.
    pub fn snapshot(&self) -> crace_obs::Snapshot {
        let name = self.inner.name();
        let report = self.inner.report();
        self.registry
            .gauge(&format!("{name}.races.total"))
            .set(report.total() as f64);
        self.registry
            .gauge(&format!("{name}.races.distinct"))
            .set(report.distinct() as f64);
        for (site, count) in report.per_site() {
            let c = self.registry.counter(&format!("{name}.races.site.{site}"));
            let cur = c.get();
            if count > cur {
                c.add(count - cur);
            }
        }
        self.registry.snapshot()
    }

    /// Counts `kind`, runs `f`, and (on sampled events) records its wall
    /// time into the kind's latency histogram.
    #[inline]
    fn observe(&self, kind: usize, f: impl FnOnce()) {
        self.events[kind].inc();
        let timed = self.sample_every != 0
            && self
                .seq
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every);
        if timed {
            let start = Instant::now();
            f();
            self.latency[kind].record(start.elapsed().as_nanos() as u64);
        } else {
            f();
        }
    }
}

impl<A: Analysis> Analysis for Observer<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.observe(0, || self.inner.on_fork(parent, child));
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.observe(1, || self.inner.on_join(parent, child));
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.observe(2, || self.inner.on_acquire(tid, lock));
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.observe(3, || self.inner.on_release(tid, lock));
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        self.observe(4, || self.inner.on_action(tid, action));
    }

    fn on_read(&self, tid: ThreadId, loc: LocId) {
        self.observe(5, || self.inner.on_read(tid, loc));
    }

    fn on_write(&self, tid: ThreadId, loc: LocId) {
        self.observe(6, || self.inner.on_write(tid, loc));
    }

    fn abandon_thread(&self, tid: ThreadId) {
        // Control-plane notification, not a trace event: forward without
        // counting it against any event kind.
        self.inner.abandon_thread(tid);
    }

    fn report(&self) -> RaceReport {
        self.inner.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, MethodId, NoopAnalysis, ObjId, RaceKind, RaceRecord, Value};
    use crace_obs::MetricValue;
    use std::sync::Mutex;

    /// Reports one canned race per `report()` call count — enough to test
    /// snapshot folding.
    struct OneRace;

    impl Analysis for OneRace {
        fn name(&self) -> &str {
            "onerace"
        }
        fn on_fork(&self, _: ThreadId, _: ThreadId) {}
        fn on_join(&self, _: ThreadId, _: ThreadId) {}
        fn on_acquire(&self, _: ThreadId, _: LockId) {}
        fn on_release(&self, _: ThreadId, _: LockId) {}
        fn on_action(&self, _: ThreadId, _: &Action) {}
        fn report(&self) -> RaceReport {
            let mut r = RaceReport::new();
            r.record(RaceRecord {
                kind: RaceKind::Commutativity { obj: ObjId(9) },
                tid: ThreadId(1),
                action: None,
                detail: String::new(),
                provenance: None,
            });
            r
        }
    }

    fn action() -> Action {
        Action::new(ObjId(0), MethodId(0), vec![Value::Int(1)], Value::Nil)
    }

    #[test]
    fn counts_every_event_kind_exactly() {
        let obs = Observer::new(NoopAnalysis::new());
        for _ in 0..10 {
            obs.on_action(ThreadId(0), &action());
        }
        obs.on_fork(ThreadId(0), ThreadId(1));
        obs.on_read(ThreadId(1), LocId(4));
        let snap = obs.snapshot();
        assert_eq!(
            snap.get("uninstrumented.events.action"),
            Some(&MetricValue::Counter(10))
        );
        assert_eq!(
            snap.get("uninstrumented.events.fork"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            snap.get("uninstrumented.events.read"),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn sampled_timing_records_some_latencies() {
        let obs = Observer::with_sampling(NoopAnalysis::new(), Arc::new(Registry::new()), 1);
        for _ in 0..5 {
            obs.on_action(ThreadId(0), &action());
        }
        let snap = obs.snapshot();
        match snap.get("uninstrumented.event_ns.action") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 5),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn sampling_zero_disables_timing() {
        let obs = Observer::with_sampling(NoopAnalysis::new(), Arc::new(Registry::new()), 0);
        obs.on_action(ThreadId(0), &action());
        let snap = obs.snapshot();
        match snap.get("uninstrumented.event_ns.action") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 0),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_folds_race_report_in() {
        let obs = Observer::new(OneRace);
        let snap = obs.snapshot();
        assert_eq!(
            snap.get("onerace.races.total"),
            Some(&MetricValue::Gauge(1.0))
        );
        assert_eq!(
            snap.get("onerace.races.site.o9"),
            Some(&MetricValue::Counter(1))
        );
        // Snapshotting twice must not double-count sites.
        let snap = obs.snapshot();
        assert_eq!(
            snap.get("onerace.races.site.o9"),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn events_are_forwarded_in_order() {
        struct Log(Mutex<Vec<&'static str>>);
        impl Analysis for Log {
            fn name(&self) -> &str {
                "log"
            }
            fn on_fork(&self, _: ThreadId, _: ThreadId) {
                self.0.lock().unwrap().push("fork");
            }
            fn on_join(&self, _: ThreadId, _: ThreadId) {
                self.0.lock().unwrap().push("join");
            }
            fn on_acquire(&self, _: ThreadId, _: LockId) {
                self.0.lock().unwrap().push("acq");
            }
            fn on_release(&self, _: ThreadId, _: LockId) {
                self.0.lock().unwrap().push("rel");
            }
            fn on_action(&self, _: ThreadId, _: &Action) {
                self.0.lock().unwrap().push("action");
            }
            fn report(&self) -> RaceReport {
                RaceReport::new()
            }
        }
        let obs = Observer::new(Log(Mutex::new(Vec::new())));
        obs.on_event(&Event::Fork {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        obs.on_event(&Event::Action {
            tid: ThreadId(1),
            action: action(),
        });
        obs.on_event(&Event::Join {
            parent: ThreadId(0),
            child: ThreadId(1),
        });
        assert_eq!(
            *obs.inner().0.lock().unwrap(),
            vec!["fork", "action", "join"]
        );
    }
}
