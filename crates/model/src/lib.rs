//! Shared vocabulary for the `crace` commutativity race detection toolkit.
//!
//! This crate defines the types every other crate in the workspace speaks:
//!
//! * [`Value`] — the domain `U` of method arguments and return values,
//! * [`Action`] — a method invocation `o.m(u⃗)/v⃗` (§3.1 of the paper),
//! * [`Event`] — one entry of a program trace: a synchronization operation
//!   (fork/join/acquire/release), a high-level [`Action`], or a low-level
//!   shadow memory read/write (the vocabulary of Table 1),
//! * [`Trace`] — a recorded sequence of events that can be replayed into any
//!   detector,
//! * [`Analysis`] — the interface every dynamic analysis implements (the
//!   commutativity race detector, the FastTrack baseline, the naive direct
//!   detector, and the no-op used for uninstrumented baselines),
//! * [`RaceReport`] — what an analysis reports back (total and distinct race
//!   counts, as in Table 2, plus per-race details).
//!
//! # Examples
//!
//! ```
//! use crace_model::{Action, MethodId, ObjId, Value};
//!
//! // The overwriting put of the paper's running example: o.put("a.com", c2)/c1
//! let action = Action::new(
//!     ObjId(1),
//!     MethodId(0),
//!     vec![Value::str("a.com"), Value::Int(2)],
//!     Value::Int(1),
//! );
//! assert_eq!(action.arity(), 3); // two arguments + one return value
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod analysis;
mod event;
mod ids;
mod isolated;
mod observe;
mod recorder;
mod report;
mod trace;
mod value;

pub use action::{Action, MethodSig};
pub use analysis::{Analysis, NoopAnalysis};
pub use event::Event;
pub use ids::{LocId, LockId, MethodId, ObjId, ThreadId};
pub use isolated::Isolated;
pub use observe::{Observer, DEFAULT_SAMPLE_EVERY};
pub use recorder::Recorder;
pub use report::{Provenance, RaceKind, RaceRecord, RaceReport};
pub use trace::{replay, Trace};
pub use value::Value;
