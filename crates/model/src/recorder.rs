//! Recording analysis: capture a live execution as a [`Trace`].

use crate::{Action, Analysis, Event, LocId, LockId, RaceReport, ThreadId, Trace};
use std::sync::{Mutex, PoisonError};

/// An [`Analysis`] that records every event into a [`Trace`] instead of
/// analyzing it.
///
/// The recorded trace is a linearization of the execution consistent with
/// the order the instrumentation emitted events (per-thread program order
/// and lock-protected critical sections are preserved — see the runtime's
/// emission discipline). Recordings can be replayed offline into any
/// detector, written to the textual trace format, or fed to the atomicity
/// checker — the RoadRunner record-and-replay workflow.
///
/// # Examples
///
/// ```
/// use crace_model::{Analysis, Recorder, ThreadId};
///
/// let recorder = Recorder::new();
/// recorder.on_fork(ThreadId(0), ThreadId(1));
/// let trace = recorder.into_trace();
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    trace: Mutex<Trace>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Consumes the recorder and returns the recorded trace.
    ///
    /// Poison-recovering: a workload thread that panicked while an event
    /// was being appended never loses the trace collected so far. The
    /// recorder's invariant (the event vector is valid after every
    /// `push`) holds even mid-unwind, so recovering the poisoned lock is
    /// safe.
    pub fn into_trace(self) -> Trace {
        self.trace
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Clones the trace recorded so far. Poison-recovering, like
    /// [`Recorder::into_trace`].
    pub fn snapshot(&self) -> Trace {
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn push(&self, event: Event) {
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }
}

impl Analysis for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.push(Event::Fork { parent, child });
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.push(Event::Join { parent, child });
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.push(Event::Acquire { tid, lock });
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.push(Event::Release { tid, lock });
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        self.push(Event::Action {
            tid,
            action: action.clone(),
        });
    }

    fn on_read(&self, tid: ThreadId, loc: LocId) {
        self.push(Event::Read { tid, loc });
    }

    fn on_write(&self, tid: ThreadId, loc: LocId) {
        self.push(Event::Write { tid, loc });
    }

    fn report(&self) -> RaceReport {
        RaceReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{replay, MethodId, ObjId, Value};

    #[test]
    fn records_all_event_kinds_in_order() {
        let r = Recorder::new();
        r.on_fork(ThreadId(0), ThreadId(1));
        r.on_acquire(ThreadId(1), LockId(2));
        r.on_action(
            ThreadId(1),
            &Action::new(ObjId(3), MethodId(0), vec![Value::Int(1)], Value::Nil),
        );
        r.on_read(ThreadId(1), LocId(4));
        r.on_write(ThreadId(1), LocId(4));
        r.on_release(ThreadId(1), LockId(2));
        r.on_join(ThreadId(0), ThreadId(1));
        let trace = r.into_trace();
        assert_eq!(trace.len(), 7);
        assert!(matches!(trace.events()[0], Event::Fork { .. }));
        assert!(matches!(trace.events()[6], Event::Join { .. }));
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = Recorder::new();
        r.on_fork(ThreadId(0), ThreadId(1));
        assert_eq!(r.snapshot().len(), 1);
        r.on_join(ThreadId(0), ThreadId(1));
        assert_eq!(r.snapshot().len(), 2);
        assert!(r.report().is_empty());
    }

    /// A thread that panics while holding the recorder lock poisons it;
    /// the recorder must still yield the full trace collected so far,
    /// both as a live snapshot and when consumed.
    #[test]
    fn poisoned_lock_still_yields_full_snapshot() {
        use std::sync::Arc;

        let r = Arc::new(Recorder::new());
        r.on_fork(ThreadId(0), ThreadId(1));
        r.on_write(ThreadId(1), LocId(7));

        let poisoner = Arc::clone(&r);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.trace.lock().unwrap();
            panic!("injected panic while holding the recorder lock");
        })
        .join();
        assert!(result.is_err(), "poisoner thread must panic");

        // Lock is now poisoned; recording and snapshotting must both
        // keep working without losing anything.
        r.on_join(ThreadId(0), ThreadId(1));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(matches!(snap.events()[2], Event::Join { .. }));

        let r = Arc::try_unwrap(r).expect("sole owner");
        assert_eq!(r.into_trace().len(), 3);
    }

    #[test]
    fn recorded_trace_replays_into_itself() {
        let r = Recorder::new();
        r.on_fork(ThreadId(0), ThreadId(1));
        r.on_write(ThreadId(1), LocId(9));
        let trace = r.into_trace();
        let copy = Recorder::new();
        replay(&trace, &copy);
        assert_eq!(copy.into_trace(), trace);
    }
}
