//! Recording analysis: capture a live execution as a [`Trace`].

use crate::{Action, Analysis, Event, LocId, LockId, RaceReport, ThreadId, Trace};
use std::sync::Mutex;

/// An [`Analysis`] that records every event into a [`Trace`] instead of
/// analyzing it.
///
/// The recorded trace is a linearization of the execution consistent with
/// the order the instrumentation emitted events (per-thread program order
/// and lock-protected critical sections are preserved — see the runtime's
/// emission discipline). Recordings can be replayed offline into any
/// detector, written to the textual trace format, or fed to the atomicity
/// checker — the RoadRunner record-and-replay workflow.
///
/// # Examples
///
/// ```
/// use crace_model::{Analysis, Recorder, ThreadId};
///
/// let recorder = Recorder::new();
/// recorder.on_fork(ThreadId(0), ThreadId(1));
/// let trace = recorder.into_trace();
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    trace: Mutex<Trace>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Consumes the recorder and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace.into_inner().expect("recorder lock poisoned")
    }

    /// Clones the trace recorded so far.
    pub fn snapshot(&self) -> Trace {
        self.trace.lock().expect("recorder lock poisoned").clone()
    }

    fn push(&self, event: Event) {
        self.trace
            .lock()
            .expect("recorder lock poisoned")
            .push(event);
    }
}

impl Analysis for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.push(Event::Fork { parent, child });
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.push(Event::Join { parent, child });
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.push(Event::Acquire { tid, lock });
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.push(Event::Release { tid, lock });
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        self.push(Event::Action {
            tid,
            action: action.clone(),
        });
    }

    fn on_read(&self, tid: ThreadId, loc: LocId) {
        self.push(Event::Read { tid, loc });
    }

    fn on_write(&self, tid: ThreadId, loc: LocId) {
        self.push(Event::Write { tid, loc });
    }

    fn report(&self) -> RaceReport {
        RaceReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{replay, MethodId, ObjId, Value};

    #[test]
    fn records_all_event_kinds_in_order() {
        let r = Recorder::new();
        r.on_fork(ThreadId(0), ThreadId(1));
        r.on_acquire(ThreadId(1), LockId(2));
        r.on_action(
            ThreadId(1),
            &Action::new(ObjId(3), MethodId(0), vec![Value::Int(1)], Value::Nil),
        );
        r.on_read(ThreadId(1), LocId(4));
        r.on_write(ThreadId(1), LocId(4));
        r.on_release(ThreadId(1), LockId(2));
        r.on_join(ThreadId(0), ThreadId(1));
        let trace = r.into_trace();
        assert_eq!(trace.len(), 7);
        assert!(matches!(trace.events()[0], Event::Fork { .. }));
        assert!(matches!(trace.events()[6], Event::Join { .. }));
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = Recorder::new();
        r.on_fork(ThreadId(0), ThreadId(1));
        assert_eq!(r.snapshot().len(), 1);
        r.on_join(ThreadId(0), ThreadId(1));
        assert_eq!(r.snapshot().len(), 2);
        assert!(r.report().is_empty());
    }

    #[test]
    fn recorded_trace_replays_into_itself() {
        let r = Recorder::new();
        r.on_fork(ThreadId(0), ThreadId(1));
        r.on_write(ThreadId(1), LocId(9));
        let trace = r.into_trace();
        let copy = Recorder::new();
        replay(&trace, &copy);
        assert_eq!(copy.into_trace(), trace);
    }
}
