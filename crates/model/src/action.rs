//! Actions: method invocations `o.m(u⃗)/v⃗` (§3.1 of the paper).

use crate::{MethodId, ObjId, Value};
use std::fmt;

/// A method invocation on a shared object, together with its concrete
/// arguments and return value.
///
/// An action `o.m(u⃗)/v` is the unit the commutativity race detector reasons
/// about; the paper calls them *actions* and treats each as an atomic
/// transition on the abstract object state (the object is assumed
/// linearizable).
///
/// The paper allows a tuple of return values; every specification in the
/// evaluation uses exactly one, so we fix a single return slot (`nil` when a
/// method returns nothing).
///
/// # Examples
///
/// ```
/// use crace_model::{Action, MethodId, ObjId, Value};
///
/// // o.put(5, 7)/nil — a successful insertion into an empty slot.
/// let a = Action::new(ObjId(0), MethodId(0), vec![Value::Int(5), Value::Int(7)], Value::Nil);
/// assert_eq!(a.args().len(), 2);
/// assert_eq!(a.ret(), &Value::Nil);
/// // w⃗ = u⃗v⃗ — the numbered slots the ECL translation indexes (§6.2).
/// assert_eq!(a.slots().count(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Action {
    obj: ObjId,
    method: MethodId,
    args: Vec<Value>,
    ret: Value,
}

impl Action {
    /// Creates an action for method `method` of object `obj` with concrete
    /// arguments `args` and return value `ret`.
    pub fn new(obj: ObjId, method: MethodId, args: Vec<Value>, ret: Value) -> Action {
        Action {
            obj,
            method,
            args,
            ret,
        }
    }

    /// The object the method was invoked on.
    #[inline]
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// The invoked method.
    #[inline]
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// The concrete arguments `u⃗`.
    #[inline]
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The concrete return value `v`.
    #[inline]
    pub fn ret(&self) -> &Value {
        &self.ret
    }

    /// The combined slot vector `w⃗ = u⃗v⃗`: all arguments followed by the
    /// return value. Slot indices are what the ECL→access-point translation
    /// numbers `1..n` (we use `0..n`).
    pub fn slots(&self) -> impl Iterator<Item = &Value> {
        self.args.iter().chain(std::iter::once(&self.ret))
    }

    /// The slot at index `i` of `w⃗`, if in range.
    pub fn slot(&self, i: usize) -> Option<&Value> {
        if i < self.args.len() {
            self.args.get(i)
        } else if i == self.args.len() {
            Some(&self.ret)
        } else {
            None
        }
    }

    /// Number of slots (arguments plus the return value).
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len() + 1
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}(", self.obj, self.method)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")/{}", self.ret)
    }
}

/// The signature of a method as declared by a specification: its name and
/// the number of declared arguments (the return value is implicit).
///
/// # Examples
///
/// ```
/// use crace_model::MethodSig;
/// let sig = MethodSig::new("put", 2);
/// assert_eq!(sig.name(), "put");
/// assert_eq!(sig.num_args(), 2);
/// assert_eq!(sig.num_slots(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MethodSig {
    name: String,
    num_args: usize,
}

impl MethodSig {
    /// Creates a signature for a method called `name` taking `num_args`
    /// arguments.
    pub fn new(name: impl Into<String>, num_args: usize) -> MethodSig {
        MethodSig {
            name: name.into(),
            num_args,
        }
    }

    /// The method name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of declared arguments.
    #[inline]
    pub fn num_args(&self) -> usize {
        self.num_args
    }

    /// The number of slots: arguments plus the single return value.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_args + 1
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.num_args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put_action() -> Action {
        Action::new(
            ObjId(1),
            MethodId(0),
            vec![Value::str("a.com"), Value::Int(2)],
            Value::Int(1),
        )
    }

    #[test]
    fn slots_concatenate_args_and_ret() {
        let a = put_action();
        let slots: Vec<_> = a.slots().cloned().collect();
        assert_eq!(
            slots,
            vec![Value::str("a.com"), Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn slot_indexing_covers_args_then_ret() {
        let a = put_action();
        assert_eq!(a.slot(0), Some(&Value::str("a.com")));
        assert_eq!(a.slot(1), Some(&Value::Int(2)));
        assert_eq!(a.slot(2), Some(&Value::Int(1)));
        assert_eq!(a.slot(3), None);
    }

    #[test]
    fn nullary_method_has_single_slot() {
        let a = Action::new(ObjId(1), MethodId(2), vec![], Value::Int(1));
        assert_eq!(a.arity(), 1);
        assert_eq!(a.slot(0), Some(&Value::Int(1)));
        assert_eq!(a.slot(1), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        let a = put_action();
        assert_eq!(a.to_string(), "o1.m0(\"a.com\", 2)/1");
    }

    #[test]
    fn method_sig_slot_count() {
        assert_eq!(MethodSig::new("size", 0).num_slots(), 1);
        assert_eq!(MethodSig::new("put", 2).to_string(), "put/2");
    }
}
