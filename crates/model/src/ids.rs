//! Newtype identifiers for threads, objects, locks, methods and memory
//! locations.
//!
//! Keeping these distinct at the type level prevents the classic slip of
//! passing a lock identifier where an object identifier is expected — every
//! analysis indexes several side tables by several of these at once.

use std::fmt;

/// Identifier of a thread (`τ ∈ Tid` in the paper).
///
/// Thread identifiers are small dense integers so that vector clocks can be
/// stored as flat vectors indexed by thread. The main thread is
/// [`ThreadId::MAIN`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The identifier of the initial (main) thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns the identifier as a `usize` index (for vector-clock slots).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Identifier of a shared object (`o ∈ Obj`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjId(pub u64);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of a lock (`l ∈ Lock`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(pub u64);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifier of a low-level shadow memory location.
///
/// Monitored objects issue [`Event::Read`](crate::Event::Read) and
/// [`Event::Write`](crate::Event::Write) events on these, which is what the
/// FastTrack baseline analyses — mirroring how RoadRunner instruments field
/// and array accesses inside `ConcurrentHashMap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocId(pub u64);

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

/// Index of a method within its object's specification.
///
/// Method identifiers are only meaningful relative to a specification: the
/// spec's method table assigns `MethodId(0)` to its first declared method and
/// so on. Monitored objects are constructed against a compiled specification
/// and use the same numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MethodId(pub u32);

impl MethodId {
    /// Returns the identifier as a `usize` index into method tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thread_id_main_is_zero() {
        assert_eq!(ThreadId::MAIN, ThreadId(0));
        assert_eq!(ThreadId::MAIN.index(), 0);
    }

    #[test]
    fn display_forms_are_distinct() {
        assert_eq!(ThreadId(3).to_string(), "τ3");
        assert_eq!(ObjId(7).to_string(), "o7");
        assert_eq!(LockId(2).to_string(), "l2");
        assert_eq!(LocId(255).to_string(), "@0xff");
        assert_eq!(MethodId(1).to_string(), "m1");
    }

    #[test]
    fn ids_are_usable_as_hash_keys() {
        let mut set = HashSet::new();
        set.insert(ObjId(1));
        set.insert(ObjId(2));
        set.insert(ObjId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ids_order_by_inner_value() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(LocId(9) < LocId(10));
    }
}
