//! The [`Isolated`] wrapper — panic isolation and graceful degradation
//! for any [`Analysis`].
//!
//! A buggy detector must never take the monitored application down with
//! it. `Isolated<A>` wraps every dispatch in [`std::panic::catch_unwind`]
//! and declares a simple degradation contract:
//!
//! * **fail open** — a panic inside the analysis is caught; the
//!   application thread that delivered the event keeps running;
//! * **quarantine** — after the first panic the analysis is considered
//!   compromised: subsequent events are shed (counted, not delivered),
//!   because its shadow state may be half-updated;
//! * **visible degradation** — the number of panics, the number of shed
//!   events, and the quarantine flag are exported as metrics
//!   (`<name>.analysis_panics`, `<name>.events_shed`,
//!   `<name>.degraded_mode`) via [`Isolated::feed`], never hidden.
//!
//! The soundness statement for the surrounding pipeline (see DESIGN.md,
//! "Failure model & degradation contract"): races reported over the
//! *delivered prefix* of the event stream are bit-for-bit identical to a
//! fault-free run over that same prefix. `Isolated` contributes to that
//! statement by making the boundary of the delivered prefix explicit —
//! everything before the first panic was delivered, everything after is
//! shed and counted.

use crate::{Action, Analysis, LocId, LockId, RaceReport, ThreadId};
use crace_obs::Registry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Wraps an [`Analysis`] so that a panic inside any callback is caught,
/// counted, and followed by quarantine instead of unwinding into (and
/// killing) the application thread that delivered the event.
///
/// # Examples
///
/// ```
/// use crace_model::{Analysis, Isolated, NoopAnalysis, ThreadId};
///
/// let iso = Isolated::new(NoopAnalysis::new());
/// iso.on_fork(ThreadId(0), ThreadId(1));
/// assert!(!iso.quarantined());
/// assert_eq!(iso.analysis_panics(), 0);
/// ```
pub struct Isolated<A> {
    inner: A,
    /// Set on the first caught panic; once set, events are shed.
    quarantined: AtomicBool,
    /// Total panics caught (report-path panics included).
    analysis_panics: AtomicU64,
    /// Events not delivered because the analysis was quarantined.
    events_shed: AtomicU64,
    /// Message of the most recent caught panic, for diagnostics.
    last_panic: Mutex<Option<String>>,
    /// When set, quarantine transitions and shed progress are recorded
    /// onto a tracer lane (see [`Isolated::with_tracer`]).
    trace: Option<ShieldTrace>,
}

/// Pre-resolved tracing handles of the shield: an instant event per
/// caught panic (the quarantine transition) and a running shed counter
/// sampled every [`SHED_SAMPLE`] shed events.
struct ShieldTrace {
    lane: std::sync::Arc<crace_obs::Lane>,
    p_panic: crace_obs::PhaseId,
    p_shed: crace_obs::PhaseId,
}

/// Sampling stride of the shed-counter trace events: dense enough to see
/// degradation progress on a timeline, sparse enough to stay off the
/// per-event cost profile.
const SHED_SAMPLE: u64 = 64;

impl<A: Analysis> Isolated<A> {
    /// Wraps `inner` in a fresh, un-quarantined shield.
    pub fn new(inner: A) -> Isolated<A> {
        Isolated {
            inner,
            quarantined: AtomicBool::new(false),
            analysis_panics: AtomicU64::new(0),
            events_shed: AtomicU64::new(0),
            last_panic: Mutex::new(None),
            trace: None,
        }
    }

    /// Wraps `inner` in a shield that records its degradation timeline
    /// onto `tracer`'s `shield` lane: one `shield.panic` instant per
    /// caught panic and a `shield.shed` counter sample every
    /// 64 shed events (plus the first).
    pub fn with_tracer(inner: A, tracer: &crace_obs::Tracer) -> Isolated<A> {
        let mut isolated = Isolated::new(inner);
        isolated.trace = Some(ShieldTrace {
            lane: tracer.lane("shield"),
            p_panic: tracer.phase("shield.panic"),
            p_shed: tracer.phase("shield.shed"),
        });
        isolated
    }

    /// The wrapped analysis. Its shadow state is suspect once
    /// [`Isolated::quarantined`] returns true.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Consumes the shield, returning the wrapped analysis.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// True once a panic has been caught; all later events are shed.
    pub fn quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Number of panics caught so far.
    pub fn analysis_panics(&self) -> u64 {
        self.analysis_panics.load(Ordering::Relaxed)
    }

    /// Number of events shed (not delivered) due to quarantine.
    pub fn events_shed(&self) -> u64 {
        self.events_shed.load(Ordering::Relaxed)
    }

    /// Message of the most recent caught panic, if any.
    pub fn last_panic(&self) -> Option<String> {
        self.last_panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Exports the degradation counters into `registry`:
    /// `<name>.analysis_panics` and `<name>.events_shed` counters plus a
    /// `<name>.degraded_mode` gauge (1.0 when quarantined, else 0.0).
    pub fn feed(&self, registry: &Registry) {
        let name = self.inner.name();
        let panics = registry.counter(&format!("{name}.analysis_panics"));
        let cur = panics.get();
        let now = self.analysis_panics();
        if now > cur {
            panics.add(now - cur);
        }
        let shed = registry.counter(&format!("{name}.events_shed"));
        let cur = shed.get();
        let now = self.events_shed();
        if now > cur {
            shed.add(now - cur);
        }
        registry
            .gauge(&format!("{name}.degraded_mode"))
            .set(if self.quarantined() { 1.0 } else { 0.0 });
    }

    /// Records a caught panic: counts it, captures its message, and
    /// trips the quarantine.
    fn trip(&self, payload: Box<dyn std::any::Any + Send>) {
        self.analysis_panics.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.lane.instant(t.p_panic);
        }
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        *self
            .last_panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(msg);
        self.quarantined.store(true, Ordering::Release);
    }

    /// Delivers one dispatch through the shield: shed if quarantined,
    /// otherwise run under `catch_unwind` and quarantine on panic.
    ///
    /// `AssertUnwindSafe` is justified by the quarantine itself: the only
    /// state that might be left inconsistent by the unwind belongs to
    /// `self.inner`, and after a panic that state is never read again
    /// except through the equally shielded `report()` path.
    fn shield(&self, f: impl FnOnce()) {
        if self.quarantined() {
            let shed = self.events_shed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(t) = &self.trace {
                if shed % SHED_SAMPLE == 1 {
                    t.lane.counter(t.p_shed, shed);
                }
            }
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
            self.trip(payload);
        }
    }
}

impl<A: Analysis> Analysis for Isolated<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        self.shield(|| self.inner.on_fork(parent, child));
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        self.shield(|| self.inner.on_join(parent, child));
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        self.shield(|| self.inner.on_acquire(tid, lock));
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        self.shield(|| self.inner.on_release(tid, lock));
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        self.shield(|| self.inner.on_action(tid, action));
    }

    fn on_read(&self, tid: ThreadId, loc: LocId) {
        self.shield(|| self.inner.on_read(tid, loc));
    }

    fn on_write(&self, tid: ThreadId, loc: LocId) {
        self.shield(|| self.inner.on_write(tid, loc));
    }

    fn abandon_thread(&self, tid: ThreadId) {
        self.shield(|| self.inner.abandon_thread(tid));
    }

    /// Fail-open report: races found before the quarantine are returned
    /// if the inner report path still works; a panicking report path
    /// yields an empty report rather than an unwinding one.
    fn report(&self) -> RaceReport {
        match catch_unwind(AssertUnwindSafe(|| self.inner.report())) {
            Ok(report) => report,
            Err(payload) => {
                self.trip(payload);
                RaceReport::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodId, NoopAnalysis, ObjId, RaceKind, RaceRecord, Value};
    use crace_obs::MetricValue;
    use std::sync::atomic::AtomicU64 as Count;

    /// Panics on the `n`-th action (1-based); counts deliveries.
    struct Grenade {
        fuse: u64,
        delivered: Count,
    }

    impl Grenade {
        fn armed(fuse: u64) -> Grenade {
            Grenade {
                fuse,
                delivered: Count::new(0),
            }
        }
    }

    impl Analysis for Grenade {
        fn name(&self) -> &str {
            "grenade"
        }
        fn on_fork(&self, _: ThreadId, _: ThreadId) {}
        fn on_join(&self, _: ThreadId, _: ThreadId) {}
        fn on_acquire(&self, _: ThreadId, _: LockId) {}
        fn on_release(&self, _: ThreadId, _: LockId) {}
        fn on_action(&self, _: ThreadId, _: &Action) {
            let n = self.delivered.fetch_add(1, Ordering::Relaxed) + 1;
            if n == self.fuse {
                panic!("boom at delivery {n}");
            }
        }
        fn report(&self) -> RaceReport {
            let mut r = RaceReport::new();
            r.record(RaceRecord {
                kind: RaceKind::Commutativity { obj: ObjId(1) },
                tid: ThreadId(0),
                action: None,
                detail: String::new(),
                provenance: None,
            });
            r
        }
    }

    fn action() -> Action {
        Action::new(ObjId(0), MethodId(0), vec![Value::Int(1)], Value::Nil)
    }

    /// Runs `f` with the default panic hook silenced, so intentional
    /// panics don't spam test output.
    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panic_is_caught_and_quarantines() {
        quiet(|| {
            let iso = Isolated::new(Grenade::armed(3));
            for _ in 0..5 {
                iso.on_action(ThreadId(0), &action());
            }
            assert!(iso.quarantined());
            assert_eq!(iso.analysis_panics(), 1);
            // Events 4 and 5 were shed, not delivered.
            assert_eq!(iso.events_shed(), 2);
            assert_eq!(iso.inner().delivered.load(Ordering::Relaxed), 3);
            assert_eq!(iso.last_panic().as_deref(), Some("boom at delivery 3"));
        });
    }

    #[test]
    fn fail_open_report_survives_quarantine() {
        quiet(|| {
            let iso = Isolated::new(Grenade::armed(1));
            iso.on_action(ThreadId(0), &action());
            assert!(iso.quarantined());
            // Report path still works: races found so far are returned.
            assert_eq!(iso.report().total(), 1);
        });
    }

    #[test]
    fn report_path_panic_yields_empty_report() {
        struct BadReport;
        impl Analysis for BadReport {
            fn name(&self) -> &str {
                "badreport"
            }
            fn on_fork(&self, _: ThreadId, _: ThreadId) {}
            fn on_join(&self, _: ThreadId, _: ThreadId) {}
            fn on_acquire(&self, _: ThreadId, _: LockId) {}
            fn on_release(&self, _: ThreadId, _: LockId) {}
            fn on_action(&self, _: ThreadId, _: &Action) {}
            fn report(&self) -> RaceReport {
                panic!("report path broken");
            }
        }
        quiet(|| {
            let iso = Isolated::new(BadReport);
            assert!(iso.report().is_empty());
            assert!(iso.quarantined());
            assert_eq!(iso.analysis_panics(), 1);
        });
    }

    #[test]
    fn healthy_analysis_is_transparent() {
        let iso = Isolated::new(NoopAnalysis::new());
        iso.on_fork(ThreadId(0), ThreadId(1));
        iso.on_acquire(ThreadId(1), LockId(0));
        iso.on_action(ThreadId(1), &action());
        iso.on_release(ThreadId(1), LockId(0));
        iso.on_join(ThreadId(0), ThreadId(1));
        iso.abandon_thread(ThreadId(1));
        assert!(!iso.quarantined());
        assert_eq!(iso.analysis_panics(), 0);
        assert_eq!(iso.events_shed(), 0);
        assert!(iso.report().is_empty());
        assert!(iso.last_panic().is_none());
    }

    #[test]
    fn feed_exports_degradation_metrics() {
        quiet(|| {
            let iso = Isolated::new(Grenade::armed(1));
            let registry = Registry::new();
            iso.feed(&registry);
            assert_eq!(
                registry.snapshot().get("grenade.degraded_mode"),
                Some(&MetricValue::Gauge(0.0))
            );

            iso.on_action(ThreadId(0), &action());
            iso.on_action(ThreadId(0), &action());
            iso.feed(&registry);
            // Feeding twice must not double-count.
            iso.feed(&registry);
            let snap = registry.snapshot();
            assert_eq!(
                snap.get("grenade.analysis_panics"),
                Some(&MetricValue::Counter(1))
            );
            assert_eq!(
                snap.get("grenade.events_shed"),
                Some(&MetricValue::Counter(1))
            );
            assert_eq!(
                snap.get("grenade.degraded_mode"),
                Some(&MetricValue::Gauge(1.0))
            );
        });
    }
}
