//! The value domain `U` of method arguments and return values.

use std::fmt;
use std::sync::Arc;

/// A concrete argument or return value of a method invocation.
///
/// The paper leaves the domain `U` abstract; we provide the closed set of
/// value shapes the evaluation workloads need: the special no-value `nil`
/// (what an absent dictionary entry maps to, Fig. 5), booleans, integers,
/// interned strings and opaque object references (e.g. the connection
/// objects of the Fig. 1 example).
///
/// `Value` is cheap to clone — strings are reference counted — and is
/// totally ordered so it can key ordered containers. Equality between
/// variants of different shapes is `false`, never a panic, matching the
/// untyped evaluation of specification formulas.
///
/// # Examples
///
/// ```
/// use crace_model::Value;
///
/// let v = Value::str("a.com");
/// assert_eq!(v, Value::str("a.com"));
/// assert_ne!(v, Value::Nil);
/// assert!(!Value::Nil.is_truthy_key());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The special no-value `nil`.
    #[default]
    Nil,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// An interned string.
    Str(Arc<str>),
    /// An opaque reference to a program object (identity semantics).
    Ref(u64),
}

impl Value {
    /// Convenience constructor for string values.
    ///
    /// # Examples
    ///
    /// ```
    /// use crace_model::Value;
    /// assert_eq!(Value::str("k").to_string(), "\"k\"");
    /// ```
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns `true` iff the value is [`Value::Nil`].
    #[inline]
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Returns `true` iff the value is non-`nil` — i.e. it denotes a present
    /// dictionary entry. (`|{k | d(k) ≠ nil}|` is the dictionary size in
    /// Fig. 5.)
    #[inline]
    pub fn is_truthy_key(&self) -> bool {
        !self.is_nil()
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(r) => write!(f, "ref#{r}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl<T> From<Option<T>> for Value
where
    T: Into<Value>,
{
    /// Maps `None` to `nil`, mirroring how absent entries are modelled.
    fn from(opt: Option<T>) -> Value {
        match opt {
            None => Value::Nil,
            Some(v) => v.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn nil_is_default_and_self_equal() {
        assert_eq!(Value::default(), Value::Nil);
        assert!(Value::Nil.is_nil());
        assert!(!Value::Int(0).is_nil());
    }

    #[test]
    fn cross_variant_equality_is_false() {
        assert_ne!(Value::Int(0), Value::Bool(false));
        assert_ne!(Value::Str(Arc::from("0")), Value::Int(0));
        assert_ne!(Value::Ref(1), Value::Int(1));
    }

    #[test]
    fn string_interning_compares_by_content() {
        let a = Value::str(String::from("a.") + "com");
        let b = Value::str("a.com");
        assert_eq!(a, b);
    }

    #[test]
    fn option_conversion_maps_none_to_nil() {
        assert_eq!(Value::from(None::<i64>), Value::Nil);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn values_are_totally_ordered() {
        let mut set = BTreeSet::new();
        set.insert(Value::Nil);
        set.insert(Value::Int(2));
        set.insert(Value::Int(1));
        set.insert(Value::str("x"));
        let sorted: Vec<_> = set.into_iter().collect();
        assert_eq!(sorted[0], Value::Nil);
        assert_eq!(sorted[1], Value::Int(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Ref(9).to_string(), "ref#9");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Nil.as_int(), None);
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Int(1).as_str(), None);
    }
}
