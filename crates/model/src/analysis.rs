//! The [`Analysis`] trait — the interface between programs (or recorded
//! traces) and dynamic detectors.

use crate::{Action, Event, LocId, LockId, RaceReport, ThreadId};

/// A dynamic analysis consuming a stream of program events.
///
/// This plays the role RoadRunner's tool interface plays in the paper's
/// implementation: the instrumented runtime calls one method per event, and
/// the analysis maintains whatever shadow state it needs (vector clocks,
/// access points, FastTrack epochs, …). Methods take `&self` so that one
/// analysis instance can be shared by many real threads; implementations use
/// interior mutability with their own locking discipline.
///
/// The default implementations of [`Analysis::on_read`] / [`Analysis::on_write`]
/// ignore low-level accesses, which is correct for detectors that only look
/// at the library interface (the commutativity detectors). The FastTrack
/// baseline overrides them and ignores [`Analysis::on_action`] instead.
pub trait Analysis: Send + Sync {
    /// Human-readable name for reports and benchmark tables.
    fn name(&self) -> &str;

    /// `parent` forked `child`.
    fn on_fork(&self, parent: ThreadId, child: ThreadId);

    /// `parent` joined `child` (which has terminated).
    fn on_join(&self, parent: ThreadId, child: ThreadId);

    /// `tid` acquired `lock`.
    fn on_acquire(&self, tid: ThreadId, lock: LockId);

    /// `tid` released `lock`.
    fn on_release(&self, tid: ThreadId, lock: LockId);

    /// `tid` performed the method invocation `action`.
    fn on_action(&self, tid: ThreadId, action: &Action);

    /// `tid` read low-level location `loc`. Ignored by default.
    fn on_read(&self, tid: ThreadId, loc: LocId) {
        let _ = (tid, loc);
    }

    /// `tid` wrote low-level location `loc`. Ignored by default.
    fn on_write(&self, tid: ThreadId, loc: LocId) {
        let _ = (tid, loc);
    }

    /// `tid` is dead (it panicked or was killed) and will emit no further
    /// events; any stray event from it after this call may be discarded.
    ///
    /// This is a *control-plane* notification, not a trace event: it
    /// creates **no happens-before edges** (that would hide real races
    /// with the dead thread's delivered actions) and never changes what
    /// was already reported. Detectors use it to finalize the dead
    /// thread's clock — retire its storage and refuse late events —
    /// instead of leaving it dangling. The default implementation
    /// ignores the notification, which is correct for any analysis that
    /// tolerates a thread simply falling silent.
    fn abandon_thread(&self, tid: ThreadId) {
        let _ = tid;
    }

    /// Snapshot of the races reported so far.
    fn report(&self) -> RaceReport;

    /// Dispatches one recorded event to the appropriate callback.
    fn on_event(&self, event: &Event) {
        match event {
            Event::Fork { parent, child } => self.on_fork(*parent, *child),
            Event::Join { parent, child } => self.on_join(*parent, *child),
            Event::Acquire { tid, lock } => self.on_acquire(*tid, *lock),
            Event::Release { tid, lock } => self.on_release(*tid, *lock),
            Event::Action { tid, action } => self.on_action(*tid, action),
            Event::Read { tid, loc } => self.on_read(*tid, *loc),
            Event::Write { tid, loc } => self.on_write(*tid, *loc),
        }
    }
}

/// A boxed analysis is an analysis: every callback delegates to the
/// pointee. This makes `Box<dyn Analysis>` usable wherever a concrete
/// detector is expected — the chaos harness and the CLI pick a detector at
/// runtime (serial or parallel, by `--workers`) and drive it uniformly.
impl<A: Analysis + ?Sized> Analysis for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_fork(&self, parent: ThreadId, child: ThreadId) {
        (**self).on_fork(parent, child);
    }

    fn on_join(&self, parent: ThreadId, child: ThreadId) {
        (**self).on_join(parent, child);
    }

    fn on_acquire(&self, tid: ThreadId, lock: LockId) {
        (**self).on_acquire(tid, lock);
    }

    fn on_release(&self, tid: ThreadId, lock: LockId) {
        (**self).on_release(tid, lock);
    }

    fn on_action(&self, tid: ThreadId, action: &Action) {
        (**self).on_action(tid, action);
    }

    fn on_read(&self, tid: ThreadId, loc: LocId) {
        (**self).on_read(tid, loc);
    }

    fn on_write(&self, tid: ThreadId, loc: LocId) {
        (**self).on_write(tid, loc);
    }

    fn abandon_thread(&self, tid: ThreadId) {
        (**self).abandon_thread(tid);
    }

    fn report(&self) -> RaceReport {
        (**self).report()
    }
}

/// The do-nothing analysis, used for uninstrumented baseline measurements.
///
/// # Examples
///
/// ```
/// use crace_model::{Analysis, NoopAnalysis, ThreadId};
///
/// let noop = NoopAnalysis::default();
/// noop.on_fork(ThreadId(0), ThreadId(1));
/// assert!(noop.report().is_empty());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopAnalysis;

impl NoopAnalysis {
    /// Creates a no-op analysis.
    pub fn new() -> NoopAnalysis {
        NoopAnalysis
    }
}

impl Analysis for NoopAnalysis {
    fn name(&self) -> &str {
        "uninstrumented"
    }

    fn on_fork(&self, _parent: ThreadId, _child: ThreadId) {}
    fn on_join(&self, _parent: ThreadId, _child: ThreadId) {}
    fn on_acquire(&self, _tid: ThreadId, _lock: LockId) {}
    fn on_release(&self, _tid: ThreadId, _lock: LockId) {}
    fn on_action(&self, _tid: ThreadId, _action: &Action) {}

    fn report(&self) -> RaceReport {
        RaceReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodId, ObjId, Value};
    use std::sync::Mutex;

    /// A probe analysis recording which callbacks fired, to test `on_event`
    /// dispatch.
    #[derive(Default)]
    struct Probe {
        log: Mutex<Vec<&'static str>>,
    }

    impl Analysis for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn on_fork(&self, _: ThreadId, _: ThreadId) {
            self.log.lock().unwrap().push("fork");
        }
        fn on_join(&self, _: ThreadId, _: ThreadId) {
            self.log.lock().unwrap().push("join");
        }
        fn on_acquire(&self, _: ThreadId, _: LockId) {
            self.log.lock().unwrap().push("acq");
        }
        fn on_release(&self, _: ThreadId, _: LockId) {
            self.log.lock().unwrap().push("rel");
        }
        fn on_action(&self, _: ThreadId, _: &Action) {
            self.log.lock().unwrap().push("action");
        }
        fn on_read(&self, _: ThreadId, _: LocId) {
            self.log.lock().unwrap().push("read");
        }
        fn on_write(&self, _: ThreadId, _: LocId) {
            self.log.lock().unwrap().push("write");
        }
        fn report(&self) -> RaceReport {
            RaceReport::new()
        }
    }

    #[test]
    fn on_event_dispatches_every_variant() {
        let probe = Probe::default();
        let t = ThreadId(0);
        let events = vec![
            Event::Fork {
                parent: t,
                child: ThreadId(1),
            },
            Event::Acquire {
                tid: t,
                lock: LockId(0),
            },
            Event::Action {
                tid: t,
                action: Action::new(ObjId(0), MethodId(0), vec![], Value::Nil),
            },
            Event::Read {
                tid: t,
                loc: LocId(0),
            },
            Event::Write {
                tid: t,
                loc: LocId(0),
            },
            Event::Release {
                tid: t,
                lock: LockId(0),
            },
            Event::Join {
                parent: t,
                child: ThreadId(1),
            },
        ];
        for e in &events {
            probe.on_event(e);
        }
        assert_eq!(
            *probe.log.lock().unwrap(),
            vec!["fork", "acq", "action", "read", "write", "rel", "join"]
        );
    }

    #[test]
    fn noop_reports_nothing_and_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoopAnalysis>();
        let noop = NoopAnalysis::new();
        noop.on_action(
            ThreadId(0),
            &Action::new(ObjId(0), MethodId(0), vec![], Value::Nil),
        );
        assert!(noop.report().is_empty());
        assert_eq!(noop.name(), "uninstrumented");
    }
}
