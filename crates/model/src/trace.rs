//! Recorded traces and offline replay.

use crate::{Analysis, Event, ThreadId};
use std::fmt;

/// A recorded program trace: the sequence `π = e₁ e₂ … eₙ` of events in the
/// order they were observed (a linearization consistent with real time).
///
/// Traces decouple workload execution from analysis: the same recorded trace
/// can be replayed into the commutativity detector, the FastTrack baseline
/// and the naive direct detector, which is how the per-event benchmarks and
/// the precision tests compare detectors on identical inputs.
///
/// # Examples
///
/// ```
/// use crace_model::{Event, ThreadId, Trace};
///
/// let mut trace = Trace::new();
/// trace.push(Event::Fork { parent: ThreadId(0), child: ThreadId(1) });
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.num_threads(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
    max_tid: u32,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.note_tid(event.tid());
        if let Event::Fork { child, .. } | Event::Join { child, .. } = event {
            self.note_tid(child);
        }
        self.events.push(event);
    }

    fn note_tid(&mut self, tid: ThreadId) {
        if tid.0 > self.max_tid {
            self.max_tid = tid.0;
        }
    }

    /// The recorded events in observation order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` iff the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// An upper bound on the number of threads mentioned in the trace
    /// (largest thread id + 1; the main thread is id 0).
    pub fn num_threads(&self) -> usize {
        self.max_tid as usize + 1
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }
}

impl Extend<Event> for Trace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Trace {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

impl IntoIterator for Trace {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:>4}  {e}")?;
        }
        Ok(())
    }
}

/// Replays a recorded trace into an analysis and returns its race report.
///
/// # Examples
///
/// ```
/// use crace_model::{replay, Event, NoopAnalysis, ThreadId, Trace};
///
/// let trace: Trace = vec![Event::Fork { parent: ThreadId(0), child: ThreadId(1) }]
///     .into_iter()
///     .collect();
/// let report = replay(&trace, &NoopAnalysis::new());
/// assert!(report.is_empty());
/// ```
pub fn replay<A: Analysis + ?Sized>(trace: &Trace, analysis: &A) -> crate::RaceReport {
    for event in trace {
        analysis.on_event(event);
    }
    analysis.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, LockId, MethodId, NoopAnalysis, ObjId, Value};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Fork {
                parent: ThreadId(0),
                child: ThreadId(2),
            },
            Event::Acquire {
                tid: ThreadId(2),
                lock: LockId(1),
            },
            Event::Action {
                tid: ThreadId(2),
                action: Action::new(ObjId(1), MethodId(0), vec![Value::Int(5)], Value::Nil),
            },
            Event::Release {
                tid: ThreadId(2),
                lock: LockId(1),
            },
            Event::Join {
                parent: ThreadId(0),
                child: ThreadId(2),
            },
        ]
    }

    #[test]
    fn num_threads_tracks_forked_children() {
        let trace: Trace = sample_events().into_iter().collect();
        assert_eq!(trace.num_threads(), 3); // ids 0..=2
    }

    #[test]
    fn collect_and_iterate_round_trip() {
        let events = sample_events();
        let trace: Trace = events.clone().into_iter().collect();
        assert_eq!(trace.len(), events.len());
        let back: Vec<Event> = trace.clone().into_iter().collect();
        assert_eq!(back, events);
        assert_eq!(trace.iter().count(), events.len());
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.num_threads(), 1); // the main thread always exists
    }

    #[test]
    fn replay_visits_every_event() {
        let trace: Trace = sample_events().into_iter().collect();
        // NoopAnalysis never reports; we mainly check replay doesn't panic
        // and returns an empty report.
        let report = replay(&trace, &NoopAnalysis::new());
        assert!(report.is_empty());
    }

    #[test]
    fn display_numbers_events() {
        let trace: Trace = sample_events().into_iter().collect();
        let s = trace.to_string();
        assert!(s.contains("0  τ0: fork(τ2)"));
        assert!(s.lines().count() == 5);
    }
}
