//! Race reports — what an analysis hands back, in the shape of Table 2.

use crate::{Action, LocId, ObjId, ThreadId};
use crace_obs::json::escape;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// The kind of conflict a race was detected on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// A commutativity race on a shared object (RD2 / direct detector).
    Commutativity {
        /// The object whose invocations did not commute.
        obj: ObjId,
    },
    /// A low-level read-write or write-write data race (FastTrack).
    ReadWrite {
        /// The racing memory location.
        loc: LocId,
    },
}

impl RaceKind {
    /// A stable key identifying the *site* of the race (the object or the
    /// location) — Table 2 counts distinct sites in parentheses.
    fn site(&self) -> (u8, u64) {
        match self {
            RaceKind::Commutativity { obj } => (0, obj.0),
            RaceKind::ReadWrite { loc } => (1, loc.0),
        }
    }

    /// The short label of a site key (`o3` for objects, `@0x10` for
    /// locations) — the keys of the per-site breakdowns.
    fn site_label(site: (u8, u64)) -> String {
        match site {
            (0, id) => ObjId(id).to_string(),
            (_, id) => LocId(id).to_string(),
        }
    }

    /// The race family as a lowercase word, for machine-readable output.
    fn word(&self) -> &'static str {
        match self {
            RaceKind::Commutativity { .. } => "commutativity",
            RaceKind::ReadWrite { .. } => "read-write",
        }
    }
}

/// Where a sampled race came from: the colliding access points, the
/// descriptors of the two racing actions, both clocks at detection time,
/// and the trailing window of events on the racing object.
///
/// Everything is pre-rendered to strings by the reporting detector, so the
/// model layer needs no dependency on clock or access-point types and
/// reports stay cheap to clone. Detectors only build provenance when it is
/// enabled on their constructor *and* the report will retain the sample
/// (see [`RaceReport::wants_detail`]); hot paths are untouched otherwise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// The reporting event, e.g. `τ1: o1.put("a.com", 2)/1`.
    pub current: String,
    /// The most recent earlier event that touched the conflicting access
    /// point, when the detector tracks it.
    pub prior: Option<String>,
    /// The access point the current action touched, e.g. `w:"a.com"`.
    pub touched: String,
    /// The active access point it collided with.
    pub conflicting: String,
    /// The reporting thread's vector clock at detection time.
    pub thread_clock: String,
    /// The conflicting point's clock at detection time (an epoch `c@t` or
    /// a full vector, whichever representation the detector held).
    pub point_clock: String,
    /// The last events observed on the racing object before detection,
    /// oldest first (bounded by the detector's configured window).
    pub recent: Vec<String>,
}

impl Provenance {
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"current\": \"{}\", ", escape(&self.current));
        match &self.prior {
            Some(p) => {
                let _ = write!(out, "\"prior\": \"{}\", ", escape(p));
            }
            None => out.push_str("\"prior\": null, "),
        }
        let _ = write!(out, "\"touched\": \"{}\", ", escape(&self.touched));
        let _ = write!(out, "\"conflicting\": \"{}\", ", escape(&self.conflicting));
        let _ = write!(
            out,
            "\"thread_clock\": \"{}\", ",
            escape(&self.thread_clock)
        );
        let _ = write!(out, "\"point_clock\": \"{}\", ", escape(&self.point_clock));
        out.push_str("\"recent\": [");
        for (i, e) in self.recent.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(e));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Provenance {
    /// The multi-line rendering `crace replay --explain` prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "    current:     {}", self.current)?;
        if let Some(prior) = &self.prior {
            writeln!(f, "    prior:       {prior}")?;
        }
        writeln!(
            f,
            "    collision:   {} vs active {}",
            self.touched, self.conflicting
        )?;
        writeln!(f, "    clocks:      thread {}", self.thread_clock)?;
        writeln!(f, "                 point  {}", self.point_clock)?;
        if !self.recent.is_empty() {
            writeln!(f, "    last {} event(s) on the object:", self.recent.len())?;
            for e in &self.recent {
                writeln!(f, "      {e}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::Commutativity { obj } => write!(f, "commutativity race on {obj}"),
            RaceKind::ReadWrite { loc } => write!(f, "read-write race on {loc}"),
        }
    }
}

/// One detected race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceRecord {
    /// What kind of race, and on what site.
    pub kind: RaceKind,
    /// The thread executing the second (reporting) event.
    pub tid: ThreadId,
    /// The reporting action, for commutativity races.
    pub action: Option<Action>,
    /// Human-readable detail (e.g. the conflicting access points).
    pub detail: String,
    /// Full provenance, when the detector was configured to collect it.
    pub provenance: Option<Box<Provenance>>,
}

impl fmt::Display for RaceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}", self.kind, self.tid)?;
        if let Some(a) = &self.action {
            write!(f, " at {a}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Aggregated race statistics for one run, in the shape Table 2 reports:
/// a total count and the number of distinct sites (variables for FastTrack,
/// objects for RD2), plus a bounded sample of concrete records.
///
/// # Examples
///
/// ```
/// use crace_model::{RaceKind, RaceRecord, RaceReport, ObjId, ThreadId};
///
/// let mut report = RaceReport::new();
/// for _ in 0..3 {
///     report.record(RaceRecord {
///         kind: RaceKind::Commutativity { obj: ObjId(1) },
///         tid: ThreadId(2),
///         action: None,
///         detail: String::new(),
///         provenance: None,
///     });
/// }
/// assert_eq!(report.total(), 3);
/// assert_eq!(report.distinct(), 1);
/// assert_eq!(report.to_string(), "3 (1)");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RaceReport {
    total: u64,
    /// Races per site — the keys give `distinct()`, the values the
    /// per-object / per-location breakdown the metrics snapshots expose.
    sites: BTreeMap<(u8, u64), u64>,
    samples: Vec<RaceRecord>,
    max_samples: usize,
}

/// Default cap on retained concrete race records.
const DEFAULT_MAX_SAMPLES: usize = 64;

impl RaceReport {
    /// Creates an empty report retaining up to a default number of samples.
    pub fn new() -> RaceReport {
        RaceReport {
            max_samples: DEFAULT_MAX_SAMPLES,
            ..RaceReport::default()
        }
    }

    /// Creates an empty report retaining up to `max_samples` concrete
    /// records (counts are always exact regardless of the cap).
    pub fn with_sample_capacity(max_samples: usize) -> RaceReport {
        RaceReport {
            max_samples,
            ..RaceReport::default()
        }
    }

    /// Records one detected race.
    pub fn record(&mut self, record: RaceRecord) {
        self.total += 1;
        *self.sites.entry(record.kind.site()).or_insert(0) += 1;
        if self.samples.len() < self.max_samples {
            self.samples.push(record);
        }
    }

    /// Will the next [`RaceReport::record`] retain its record as a sample?
    ///
    /// Producers use this to skip building the (expensive) human-readable
    /// parts of a record that would only be counted: a workload can race
    /// hundreds of thousands of times, and reporting must not dominate the
    /// measured overhead.
    pub fn wants_detail(&self) -> bool {
        self.samples.len() < self.max_samples
    }

    /// Records a race cheaply: `make_record` is only invoked if the record
    /// will be retained as a sample; otherwise only the counters move.
    pub fn record_with(&mut self, kind: RaceKind, make_record: impl FnOnce() -> RaceRecord) {
        self.total += 1;
        *self.sites.entry(kind.site()).or_insert(0) += 1;
        if self.samples.len() < self.max_samples {
            self.samples.push(make_record());
        }
    }

    /// Total number of races reported (left column of each Table 2 pair).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct racy sites — variables for a read-write detector,
    /// objects for a commutativity detector (the parenthesised column).
    #[inline]
    pub fn distinct(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` iff no race was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The retained sample records (at most the configured capacity).
    pub fn samples(&self) -> &[RaceRecord] {
        &self.samples
    }

    /// Races per distinct site, as `(label, count)` pairs in label-sorted
    /// order — `o3` for objects, `@0x10` for memory locations. This is the
    /// races-per-object breakdown the observability layer exports.
    pub fn per_site(&self) -> Vec<(String, u64)> {
        self.sites
            .iter()
            .map(|(&site, &count)| (RaceKind::site_label(site), count))
            .collect()
    }

    /// Merges another report into this one (used when per-thread or
    /// per-shard reports are aggregated).
    pub fn merge(&mut self, other: &RaceReport) {
        self.total += other.total;
        for (&site, &count) in &other.sites {
            *self.sites.entry(site).or_insert(0) += count;
        }
        for s in &other.samples {
            if self.samples.len() >= self.max_samples {
                break;
            }
            self.samples.push(s.clone());
        }
    }

    /// The raw per-site counters keyed by the stable `(family, id)` site
    /// key, for checkpoint serialization. `family` is 0 for objects
    /// (commutativity races) and 1 for memory locations.
    pub fn site_counts(&self) -> impl Iterator<Item = ((u8, u64), u64)> + '_ {
        self.sites.iter().map(|(&site, &count)| (site, count))
    }

    /// The configured sample-retention cap.
    pub fn sample_capacity(&self) -> usize {
        self.max_samples
    }

    /// Rebuilds a report from its raw parts — the exact inverse of
    /// [`RaceReport::total`] / [`RaceReport::site_counts`] /
    /// [`RaceReport::samples`] / [`RaceReport::sample_capacity`], used by
    /// checkpoint restore. The caller is trusted to pass counters
    /// consistent with the samples (a checkpoint written by this build
    /// always is; the CRC framing rejects damaged ones).
    pub fn from_parts(
        total: u64,
        sites: impl IntoIterator<Item = ((u8, u64), u64)>,
        samples: Vec<RaceRecord>,
        max_samples: usize,
    ) -> RaceReport {
        RaceReport {
            total,
            sites: sites.into_iter().collect(),
            samples,
            max_samples,
        }
    }

    /// The report as a JSON document (hand-written; the workspace builds
    /// with no registry access, so no serde):
    ///
    /// ```json
    /// {
    ///   "total": 2, "distinct": 1,
    ///   "sites": {"o1": 2},
    ///   "samples": [{"kind": "commutativity", "site": "o1", "tid": 1,
    ///                "action": "…", "detail": "…", "provenance": null}]
    /// }
    /// ```
    ///
    /// The output is a single self-contained object, safe to pipe into any
    /// JSON consumer — `crace replay --json` prints exactly this.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"total\": {},", self.total);
        let _ = writeln!(out, "  \"distinct\": {},", self.sites.len());
        out.push_str("  \"sites\": {");
        for (i, (&site, &count)) in self.sites.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {count}", escape(&RaceKind::site_label(site)));
        }
        out.push_str("},\n  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "{{\"kind\": \"{}\", \"site\": \"{}\", \"tid\": {}, ",
                s.kind.word(),
                escape(&RaceKind::site_label(s.kind.site())),
                s.tid.0
            );
            match &s.action {
                Some(a) => {
                    let _ = write!(out, "\"action\": \"{}\", ", escape(&a.to_string()));
                }
                None => out.push_str("\"action\": null, "),
            }
            let _ = write!(out, "\"detail\": \"{}\", ", escape(&s.detail));
            match &s.provenance {
                Some(p) => {
                    let _ = write!(out, "\"provenance\": {}", p.to_json());
                }
                None => out.push_str("\"provenance\": null"),
            }
            out.push('}');
        }
        if !self.samples.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl fmt::Display for RaceReport {
    /// Formats as `total (distinct)`, the notation of Table 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.total, self.sites.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commut(obj: u64) -> RaceRecord {
        RaceRecord {
            kind: RaceKind::Commutativity { obj: ObjId(obj) },
            tid: ThreadId(1),
            action: None,
            detail: String::new(),
            provenance: None,
        }
    }

    fn rw(loc: u64) -> RaceRecord {
        RaceRecord {
            kind: RaceKind::ReadWrite { loc: LocId(loc) },
            tid: ThreadId(1),
            action: None,
            detail: String::new(),
            provenance: None,
        }
    }

    #[test]
    fn empty_report() {
        let r = RaceReport::new();
        assert!(r.is_empty());
        assert_eq!(r.to_string(), "0 (0)");
    }

    #[test]
    fn distinct_counts_sites_not_records() {
        let mut r = RaceReport::new();
        r.record(commut(1));
        r.record(commut(1));
        r.record(commut(2));
        assert_eq!(r.total(), 3);
        assert_eq!(r.distinct(), 2);
    }

    #[test]
    fn object_and_location_sites_do_not_collide() {
        let mut r = RaceReport::new();
        r.record(commut(7));
        r.record(rw(7));
        assert_eq!(r.distinct(), 2);
    }

    #[test]
    fn sample_capacity_bounds_samples_not_counts() {
        let mut r = RaceReport::with_sample_capacity(2);
        for i in 0..10 {
            r.record(commut(i));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.distinct(), 10);
        assert_eq!(r.samples().len(), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RaceReport::new();
        a.record(commut(1));
        let mut b = RaceReport::new();
        b.record(commut(1));
        b.record(commut(2));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.distinct(), 2);
    }

    #[test]
    fn record_display_mentions_site() {
        let rec = commut(3);
        assert!(rec.to_string().contains("o3"));
    }

    #[test]
    fn per_site_breaks_down_counts() {
        let mut r = RaceReport::new();
        r.record(commut(1));
        r.record(commut(1));
        r.record(commut(2));
        assert_eq!(
            r.per_site(),
            vec![("o1".to_string(), 2), ("o2".to_string(), 1)]
        );
    }

    #[test]
    fn json_is_valid_and_carries_provenance() {
        let mut r = RaceReport::new();
        let mut rec = commut(1);
        rec.detail = "w:\"a\" vs r:\"a\"".to_string();
        rec.provenance = Some(Box::new(Provenance {
            current: "τ1: o1.put(\"a\", 2)/1".into(),
            prior: Some("τ2: o1.get(\"a\")/0".into()),
            touched: "w:\"a\"".into(),
            conflicting: "r:\"a\"".into(),
            thread_clock: "[3, 1]".into(),
            point_clock: "2@τ2".into(),
            recent: vec!["τ2: o1.get(\"a\")/0".into()],
        }));
        r.record(rec);
        r.record(rw(16));
        let json = r.to_json();
        crace_obs::json::validate(&json).expect("valid json");
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"o1\": 1"));
        assert!(json.contains("\"point_clock\": \"2@τ2\""));
        assert!(json.contains("\"provenance\": null"));
    }

    #[test]
    fn empty_report_json_is_valid() {
        let json = RaceReport::new().to_json();
        crace_obs::json::validate(&json).expect("valid json");
        assert!(json.contains("\"samples\": []"));
    }

    #[test]
    fn provenance_display_lists_collision_and_window() {
        let p = Provenance {
            current: "cur".into(),
            prior: None,
            touched: "w:k".into(),
            conflicting: "r:k".into(),
            thread_clock: "[1]".into(),
            point_clock: "1@τ1".into(),
            recent: vec!["e1".into(), "e2".into()],
        };
        let text = p.to_string();
        assert!(text.contains("collision:   w:k vs active r:k"));
        assert!(text.contains("last 2 event(s)"));
    }
}
