//! Race reports — what an analysis hands back, in the shape of Table 2.

use crate::{Action, LocId, ObjId, ThreadId};
use std::collections::BTreeSet;
use std::fmt;

/// The kind of conflict a race was detected on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// A commutativity race on a shared object (RD2 / direct detector).
    Commutativity {
        /// The object whose invocations did not commute.
        obj: ObjId,
    },
    /// A low-level read-write or write-write data race (FastTrack).
    ReadWrite {
        /// The racing memory location.
        loc: LocId,
    },
}

impl RaceKind {
    /// A stable key identifying the *site* of the race (the object or the
    /// location) — Table 2 counts distinct sites in parentheses.
    fn site(&self) -> (u8, u64) {
        match self {
            RaceKind::Commutativity { obj } => (0, obj.0),
            RaceKind::ReadWrite { loc } => (1, loc.0),
        }
    }
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::Commutativity { obj } => write!(f, "commutativity race on {obj}"),
            RaceKind::ReadWrite { loc } => write!(f, "read-write race on {loc}"),
        }
    }
}

/// One detected race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceRecord {
    /// What kind of race, and on what site.
    pub kind: RaceKind,
    /// The thread executing the second (reporting) event.
    pub tid: ThreadId,
    /// The reporting action, for commutativity races.
    pub action: Option<Action>,
    /// Human-readable detail (e.g. the conflicting access points).
    pub detail: String,
}

impl fmt::Display for RaceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}", self.kind, self.tid)?;
        if let Some(a) = &self.action {
            write!(f, " at {a}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Aggregated race statistics for one run, in the shape Table 2 reports:
/// a total count and the number of distinct sites (variables for FastTrack,
/// objects for RD2), plus a bounded sample of concrete records.
///
/// # Examples
///
/// ```
/// use crace_model::{RaceKind, RaceRecord, RaceReport, ObjId, ThreadId};
///
/// let mut report = RaceReport::new();
/// for _ in 0..3 {
///     report.record(RaceRecord {
///         kind: RaceKind::Commutativity { obj: ObjId(1) },
///         tid: ThreadId(2),
///         action: None,
///         detail: String::new(),
///     });
/// }
/// assert_eq!(report.total(), 3);
/// assert_eq!(report.distinct(), 1);
/// assert_eq!(report.to_string(), "3 (1)");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RaceReport {
    total: u64,
    sites: BTreeSet<(u8, u64)>,
    samples: Vec<RaceRecord>,
    max_samples: usize,
}

/// Default cap on retained concrete race records.
const DEFAULT_MAX_SAMPLES: usize = 64;

impl RaceReport {
    /// Creates an empty report retaining up to a default number of samples.
    pub fn new() -> RaceReport {
        RaceReport {
            max_samples: DEFAULT_MAX_SAMPLES,
            ..RaceReport::default()
        }
    }

    /// Creates an empty report retaining up to `max_samples` concrete
    /// records (counts are always exact regardless of the cap).
    pub fn with_sample_capacity(max_samples: usize) -> RaceReport {
        RaceReport {
            max_samples,
            ..RaceReport::default()
        }
    }

    /// Records one detected race.
    pub fn record(&mut self, record: RaceRecord) {
        self.total += 1;
        self.sites.insert(record.kind.site());
        if self.samples.len() < self.max_samples {
            self.samples.push(record);
        }
    }

    /// Will the next [`RaceReport::record`] retain its record as a sample?
    ///
    /// Producers use this to skip building the (expensive) human-readable
    /// parts of a record that would only be counted: a workload can race
    /// hundreds of thousands of times, and reporting must not dominate the
    /// measured overhead.
    pub fn wants_detail(&self) -> bool {
        self.samples.len() < self.max_samples
    }

    /// Records a race cheaply: `make_record` is only invoked if the record
    /// will be retained as a sample; otherwise only the counters move.
    pub fn record_with(&mut self, kind: RaceKind, make_record: impl FnOnce() -> RaceRecord) {
        self.total += 1;
        self.sites.insert(kind.site());
        if self.samples.len() < self.max_samples {
            self.samples.push(make_record());
        }
    }

    /// Total number of races reported (left column of each Table 2 pair).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct racy sites — variables for a read-write detector,
    /// objects for a commutativity detector (the parenthesised column).
    #[inline]
    pub fn distinct(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` iff no race was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The retained sample records (at most the configured capacity).
    pub fn samples(&self) -> &[RaceRecord] {
        &self.samples
    }

    /// Merges another report into this one (used when per-thread or
    /// per-shard reports are aggregated).
    pub fn merge(&mut self, other: &RaceReport) {
        self.total += other.total;
        self.sites.extend(other.sites.iter().copied());
        for s in &other.samples {
            if self.samples.len() >= self.max_samples {
                break;
            }
            self.samples.push(s.clone());
        }
    }
}

impl fmt::Display for RaceReport {
    /// Formats as `total (distinct)`, the notation of Table 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.total, self.sites.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commut(obj: u64) -> RaceRecord {
        RaceRecord {
            kind: RaceKind::Commutativity { obj: ObjId(obj) },
            tid: ThreadId(1),
            action: None,
            detail: String::new(),
        }
    }

    fn rw(loc: u64) -> RaceRecord {
        RaceRecord {
            kind: RaceKind::ReadWrite { loc: LocId(loc) },
            tid: ThreadId(1),
            action: None,
            detail: String::new(),
        }
    }

    #[test]
    fn empty_report() {
        let r = RaceReport::new();
        assert!(r.is_empty());
        assert_eq!(r.to_string(), "0 (0)");
    }

    #[test]
    fn distinct_counts_sites_not_records() {
        let mut r = RaceReport::new();
        r.record(commut(1));
        r.record(commut(1));
        r.record(commut(2));
        assert_eq!(r.total(), 3);
        assert_eq!(r.distinct(), 2);
    }

    #[test]
    fn object_and_location_sites_do_not_collide() {
        let mut r = RaceReport::new();
        r.record(commut(7));
        r.record(rw(7));
        assert_eq!(r.distinct(), 2);
    }

    #[test]
    fn sample_capacity_bounds_samples_not_counts() {
        let mut r = RaceReport::with_sample_capacity(2);
        for i in 0..10 {
            r.record(commut(i));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.distinct(), 10);
        assert_eq!(r.samples().len(), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RaceReport::new();
        a.record(commut(1));
        let mut b = RaceReport::new();
        b.record(commut(1));
        b.record(commut(2));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.distinct(), 2);
    }

    #[test]
    fn record_display_mentions_site() {
        let rec = commut(3);
        assert!(rec.to_string().contains("o3"));
    }
}
