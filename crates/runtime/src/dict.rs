//! The monitored concurrent dictionary — the `ConcurrentHashMap` analogue.

use crate::runtime::{Inner, Runtime, ThreadCtx};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{builtin, Spec};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

const SHARDS: usize = 16;

struct DictMethods {
    spec: Spec,
    put: MethodId,
    get: MethodId,
    size: MethodId,
    remove: MethodId,
    contains_key: MethodId,
}

fn dict_methods() -> &'static DictMethods {
    static CELL: OnceLock<DictMethods> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::dictionary_ext();
        DictMethods {
            put: spec.method_id("put").expect("builtin"),
            get: spec.method_id("get").expect("builtin"),
            size: spec.method_id("size").expect("builtin"),
            remove: spec.method_id("remove").expect("builtin"),
            contains_key: spec.method_id("contains_key").expect("builtin"),
            spec,
        }
    })
}

/// A sharded, lock-striped concurrent dictionary with the abstract
/// semantics of Fig. 5, monitored at the method level.
///
/// Every operation is executed under the key's shard lock and emits its
/// [`Action`] event (arguments + return value) *while the lock is held*, so
/// the analysis observes same-shard operations in their true linearization
/// order — the analogue of RoadRunner's `ConcurrentHashMap` handlers.
///
/// Following the abstract state of §3.1, an absent key maps to `nil`:
/// `put(k, nil)` removes the entry and `get` of an absent key returns
/// `nil`. Internal synchronization is *not* reported to the analysis
/// (RoadRunner excludes JDK internals), which is precisely why low-level
/// race detectors cannot see misuse of a correctly-synchronized map.
///
/// The dictionary's commutativity specification is
/// [`builtin::dictionary_ext`] (Fig. 6 plus `remove`/`contains_key`).
pub struct MonitoredDict {
    obj: ObjId,
    shards: Vec<Mutex<HashMap<Value, Value>>>,
    size: AtomicI64,
    inner: Arc<Inner>,
}

impl MonitoredDict {
    /// Creates an empty dictionary and registers it with the runtime's
    /// analysis under the extended dictionary specification.
    pub fn new(rt: &Runtime) -> Arc<MonitoredDict> {
        let obj = rt.fresh_obj();
        rt.analysis().on_new_object(obj, &dict_methods().spec);
        Arc::new(MonitoredDict {
            obj,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            size: AtomicI64::new(0),
            inner: Arc::clone(&rt.inner),
        })
    }

    /// The dictionary's object identifier in the event stream.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// This dictionary's commutativity specification.
    pub fn spec() -> &'static Spec {
        &dict_methods().spec
    }

    fn shard(&self, key: &Value) -> &Mutex<HashMap<Value, Value>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn emit(&self, ctx: &ThreadCtx, method: MethodId, args: Vec<Value>, ret: Value) {
        self.inner
            .emit_action(ctx.tid(), &Action::new(self.obj, method, args, ret));
    }

    /// Associates `key` with `value`, returning the previous value (`nil`
    /// if absent). `put(k, nil)` removes the entry, matching the abstract
    /// dictionary of Fig. 5.
    pub fn put(&self, ctx: &ThreadCtx, key: Value, value: Value) -> Value {
        let mut shard = self.shard(&key).lock();
        let prev = if value.is_nil() {
            shard.remove(&key).unwrap_or(Value::Nil)
        } else {
            shard
                .insert(key.clone(), value.clone())
                .unwrap_or(Value::Nil)
        };
        match (prev.is_nil(), value.is_nil()) {
            (true, false) => {
                self.size.fetch_add(1, Ordering::Relaxed);
            }
            (false, true) => {
                self.size.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.emit(ctx, dict_methods().put, vec![key, value], prev.clone());
        prev
    }

    /// The value associated with `key` (`nil` if absent).
    pub fn get(&self, ctx: &ThreadCtx, key: Value) -> Value {
        let shard = self.shard(&key).lock();
        let value = shard.get(&key).cloned().unwrap_or(Value::Nil);
        self.emit(ctx, dict_methods().get, vec![key], value.clone());
        value
    }

    /// Removes `key`, returning the previous value (`nil` if absent).
    pub fn remove(&self, ctx: &ThreadCtx, key: Value) -> Value {
        let mut shard = self.shard(&key).lock();
        let prev = shard.remove(&key).unwrap_or(Value::Nil);
        if !prev.is_nil() {
            self.size.fetch_sub(1, Ordering::Relaxed);
        }
        self.emit(ctx, dict_methods().remove, vec![key], prev.clone());
        prev
    }

    /// Is `key` present (mapped to a non-`nil` value)?
    pub fn contains_key(&self, ctx: &ThreadCtx, key: Value) -> bool {
        let shard = self.shard(&key).lock();
        let present = shard.contains_key(&key);
        self.emit(
            ctx,
            dict_methods().contains_key,
            vec![key],
            Value::Bool(present),
        );
        present
    }

    /// Number of present keys.
    pub fn size(&self, ctx: &ThreadCtx) -> i64 {
        let n = self.size.load(Ordering::Relaxed);
        self.emit(ctx, dict_methods().size, vec![], Value::Int(n));
        n
    }

    /// Unmonitored length, for assertions in tests and reports (emits no
    /// event).
    pub fn len_untracked(&self) -> i64 {
        self.size.load(Ordering::Relaxed)
    }

    /// Unmonitored lookup, for assertions (emits no event).
    pub fn get_untracked(&self, key: &Value) -> Value {
        self.shard(key)
            .lock()
            .get(key)
            .cloned()
            .unwrap_or(Value::Nil)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis};

    fn noop_rt() -> (Runtime, ThreadCtx) {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let ctx = rt.main_ctx();
        (rt, ctx)
    }

    #[test]
    fn put_get_remove_semantics() {
        let (rt, ctx) = noop_rt();
        let d = MonitoredDict::new(&rt);
        assert_eq!(d.put(&ctx, Value::Int(1), Value::str("a")), Value::Nil);
        assert_eq!(d.get(&ctx, Value::Int(1)), Value::str("a"));
        assert_eq!(d.put(&ctx, Value::Int(1), Value::str("b")), Value::str("a"));
        assert_eq!(d.size(&ctx), 1);
        assert_eq!(d.remove(&ctx, Value::Int(1)), Value::str("b"));
        assert_eq!(d.remove(&ctx, Value::Int(1)), Value::Nil);
        assert_eq!(d.get(&ctx, Value::Int(1)), Value::Nil);
        assert_eq!(d.size(&ctx), 0);
    }

    #[test]
    fn put_nil_removes() {
        let (rt, ctx) = noop_rt();
        let d = MonitoredDict::new(&rt);
        d.put(&ctx, Value::Int(1), Value::Int(5));
        assert_eq!(d.put(&ctx, Value::Int(1), Value::Nil), Value::Int(5));
        assert!(!d.contains_key(&ctx, Value::Int(1)));
        assert_eq!(d.size(&ctx), 0);
        // put(k, nil) on an absent key is a no-op.
        assert_eq!(d.put(&ctx, Value::Int(2), Value::Nil), Value::Nil);
        assert_eq!(d.size(&ctx), 0);
    }

    #[test]
    fn size_counts_distinct_present_keys() {
        let (rt, ctx) = noop_rt();
        let d = MonitoredDict::new(&rt);
        for i in 0..10 {
            d.put(&ctx, Value::Int(i), Value::Int(i));
        }
        for i in 0..10 {
            d.put(&ctx, Value::Int(i), Value::Int(i + 1)); // overwrites
        }
        assert_eq!(d.size(&ctx), 10);
        assert_eq!(d.len_untracked(), 10);
    }

    #[test]
    fn rd2_sees_duplicate_key_race() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let d = MonitoredDict::new(&rt);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let d = d.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                d.put(ctx, Value::str("a.com"), Value::Int(7));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        let report = rd2.report();
        assert!(report.total() >= 1, "{report:?}");
        assert_eq!(report.distinct(), 1);
    }

    #[test]
    fn rd2_quiet_for_distinct_keys() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let d = MonitoredDict::new(&rt);
        let mut handles = Vec::new();
        for i in 0..4i64 {
            let d = d.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                for j in 0..50 {
                    d.put(ctx, Value::Int(i * 1000 + j), Value::Int(j));
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
    }

    #[test]
    fn rd2_sees_size_vs_insert_race() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let d = MonitoredDict::new(&rt);
        let d2 = d.clone();
        let h = rt.spawn(&main, move |ctx| {
            d2.put(ctx, Value::Int(1), Value::Int(1)); // resizes
        });
        d.size(&main); // concurrent with the insert
        h.join(&main).unwrap();
        // Either order of real execution yields a commutativity race.
        assert!(rd2.report().total() >= 1, "{:?}", rd2.report());
    }

    #[test]
    fn fasttrack_is_blind_to_dictionary_misuse() {
        // The same duplicate-key program under FastTrack: the dictionary is
        // internally synchronized and emits no low-level events, so the
        // low-level detector sees nothing — the paper's core motivation.
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let d = MonitoredDict::new(&rt);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let d = d.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                d.put(ctx, Value::str("a.com"), Value::Int(7));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(ft.report().is_empty());
    }

    #[test]
    fn concurrent_stress_is_consistent() {
        let (rt, main) = noop_rt();
        let d = MonitoredDict::new(&rt);
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let d = d.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                for i in 0..200 {
                    d.put(ctx, Value::Int(t * 1000 + i), Value::Int(i));
                }
                for i in 0..100 {
                    d.remove(ctx, Value::Int(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert_eq!(d.len_untracked(), 4 * 100);
    }
}
