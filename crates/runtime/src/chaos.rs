//! The chaos driver: differential fault-injection trials over simulated
//! programs.
//!
//! Each trial runs the same `(program, seed)` twice — once fault-free,
//! once under a seeded [`FaultPlan`] — and checks the degradation
//! contract (DESIGN.md) *by construction*:
//!
//! 1. **Delivered-prefix integrity.** Every event delivered before the
//!    first fault fired must be bit-for-bit the event the fault-free run
//!    delivered at the same slot.
//! 2. **Prefix-report equality.** A detector fed the faulty run's
//!    delivered prefix must produce the same race report (same JSON, so
//!    same races, same provenance) as one fed the fault-free trace
//!    truncated at that point. Faults may *hide* races that happen after
//!    the first casualty; they must never invent or distort one.
//! 3. **Replayability.** Re-running the same `(program, seed, plan)`
//!    must reproduce the trace, the [`ChaosOutcome`](crate::sim::ChaosOutcome)
//!    and the degradation
//!    counters exactly, and replaying the recorded schedule through
//!    [`crate::explore::replay_with_faults`] must agree with both.
//!
//! The detector runs inside [`Isolated`], so a detector bug tripped by a
//! torn prefix quarantines the analysis instead of killing the driver —
//! that too is recorded as a violation (a healthy detector must not
//! panic on any delivered prefix).

use crate::fault::FaultPlan;
use crate::sim::{sim_dict_obj, simulate, simulate_with_faults, SimProgram};
use crace_core::{ParallelRd2, TraceDetector};
use crace_model::{replay, Analysis, Isolated, RaceReport, ThreadId, Trace};
use crace_obs::Registry;
use crace_spec::builtin;

/// Bounds and seeds for [`run_chaos`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base seed; trial `i` uses `seed + i` for both the schedule and the
    /// fault plan, so a whole campaign is reproducible from one number.
    pub seed: u64,
    /// Number of trials to run.
    pub trials: u64,
    /// Faults drawn per trial's plan.
    pub faults: usize,
    /// Detector workers: `0` runs the serial trace detector, `n > 0` the
    /// sharded parallel pipeline — the contract checks are detector-
    /// agnostic, so a campaign doubles as a differential test of the two.
    pub workers: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            trials: 20,
            faults: 2,
            workers: 0,
        }
    }
}

/// Aggregated result of a chaos campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Trials executed.
    pub trials: u64,
    /// Trials in which at least one fault fired.
    pub trials_faulted: u64,
    /// Total faults fired across all trials.
    pub faults_fired: u64,
    /// Threads killed by injected panics, across all trials.
    pub threads_killed: u64,
    /// Threads abandoned blocked on poisoned locks, across all trials.
    pub threads_abandoned: u64,
    /// Locks left poisoned at exit, across all trials.
    pub locks_poisoned: u64,
    /// Analysis dispatches shed (dropped), across all trials.
    pub events_shed: u64,
    /// Analysis dispatches delayed, across all trials.
    pub events_delayed: u64,
    /// Races the detector reported on the delivered traces (faults can
    /// only hide races, so this is a lower bound on the fault-free count).
    pub races: u64,
    /// Degradation-contract violations, each a human-readable description
    /// pinpointing the trial and the invariant that failed. Non-empty
    /// means a detector or runtime bug, not an application race.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// True iff every trial upheld the degradation contract.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Mirrors the campaign counters into `registry` under `chaos.*`
    /// (idempotent, same convention as the other `feed` methods).
    pub fn feed(&self, registry: &Registry) {
        for (name, value) in [
            ("chaos.trials", self.trials),
            ("chaos.trials_faulted", self.trials_faulted),
            ("chaos.faults_fired", self.faults_fired),
            ("chaos.threads_killed", self.threads_killed),
            ("chaos.threads_abandoned", self.threads_abandoned),
            ("chaos.locks_poisoned", self.locks_poisoned),
            ("chaos.events_shed", self.events_shed),
            ("chaos.events_delayed", self.events_delayed),
            ("chaos.races", self.races),
            ("chaos.violations", self.violations.len() as u64),
        ] {
            let counter = registry.counter(name);
            let cur = counter.get();
            if value > cur {
                counter.add(value - cur);
            }
        }
    }
}

/// A detector — serial [`TraceDetector`] or the sharded [`ParallelRd2`]
/// pipeline, by `workers` — with the program's dictionary specifications
/// registered, wrapped in [`Isolated`] so a panicking analysis degrades
/// instead of killing the campaign.
fn armed_detector(program: &SimProgram, workers: usize) -> Isolated<Box<dyn Analysis>> {
    let dict = builtin::dictionary();
    let detector: Box<dyn Analysis> = if workers > 0 {
        let detector = ParallelRd2::new(workers);
        for d in 0..program.num_dicts {
            detector
                .register_spec(sim_dict_obj(d), &dict)
                .expect("the dictionary specification is ECL");
        }
        Box::new(detector)
    } else {
        let detector = TraceDetector::new();
        for d in 0..program.num_dicts {
            detector
                .register_spec(sim_dict_obj(d), &dict)
                .expect("the dictionary specification is ECL");
        }
        Box::new(detector)
    };
    Isolated::new(detector)
}

/// Replays `trace` through an armed detector, abandoning `panicked`
/// threads afterwards (the runtime does this when a join observes the
/// child's panic payload), and returns the report.
fn detect(
    program: &SimProgram,
    trace: &Trace,
    panicked: &[usize],
    workers: usize,
) -> (RaceReport, bool) {
    let isolated = armed_detector(program, workers);
    let report = replay(trace, &isolated);
    for &t in panicked {
        isolated.abandon_thread(ThreadId(t as u32 + 1));
    }
    (report, isolated.quarantined())
}

fn prefix_of(trace: &Trace, k: usize) -> Trace {
    let mut prefix = Trace::new();
    for event in trace.events().iter().take(k) {
        prefix.push(event.clone());
    }
    prefix
}

/// Runs a chaos campaign over `program` and checks the degradation
/// contract on every trial. Never panics on contract violations — they
/// are collected in [`ChaosReport::violations`] so callers (the `crace
/// chaos` subcommand) can report them and exit nonzero.
///
/// # Panics
///
/// Panics only on script errors in `program` itself (bad indices,
/// fault-free deadlock) — the same conditions as
/// [`simulate`].
pub fn run_chaos(program: &SimProgram, cfg: &ChaosConfig) -> ChaosReport {
    run_chaos_traced(program, cfg, None)
}

/// [`run_chaos`] with an optional span tracer: each trial records one
/// `chaos.trial` span on the `chaos` lane (`aux` = faults fired in the
/// trial), so a timeline shows where a campaign spends its time. `None`
/// is exactly `run_chaos`.
pub fn run_chaos_traced(
    program: &SimProgram,
    cfg: &ChaosConfig,
    tracer: Option<&crace_obs::Tracer>,
) -> ChaosReport {
    let trace_handles = tracer.map(|t| (t.lane("chaos"), t.phase("chaos.trial")));
    let mut report = ChaosReport::default();
    let horizon = (program.num_ops() + 2 * program.threads.len()) as u64;
    for i in 0..cfg.trials {
        let mut span = trace_handles
            .as_ref()
            .map(|(lane, phase)| lane.span(*phase));
        let seed = cfg.seed.wrapping_add(i);
        let plan = FaultPlan::seeded(seed, horizon, cfg.faults);
        let clean_trace = simulate(program, seed);
        let (trace, outcome) = simulate_with_faults(program, seed, &plan);

        report.trials += 1;
        if !outcome.clean() {
            report.trials_faulted += 1;
        }
        if let Some(span) = span.as_mut() {
            span.set_aux(outcome.faults_fired);
        }
        report.faults_fired += outcome.faults_fired;
        report.threads_killed += outcome.panicked.len() as u64;
        report.threads_abandoned += outcome.abandoned.len() as u64;
        report.locks_poisoned += outcome.poisoned_locks.len() as u64;
        report.events_shed += outcome.events_shed;
        report.events_delayed += outcome.events_delayed;

        let mut violation = |msg: String| {
            report.violations.push(format!(
                "trial {i} (seed {seed}, plan `{}`): {msg}",
                plan.render()
            ));
        };

        // 1. Delivered-prefix integrity.
        let k = outcome
            .first_fault_index
            .map(|k| k as usize)
            .unwrap_or(trace.len());
        if k > trace.len() || k > clean_trace.len() {
            violation(format!(
                "first fault index {k} exceeds a trace (delivered {}, fault-free {})",
                trace.len(),
                clean_trace.len()
            ));
        } else if trace.events()[..k] != clean_trace.events()[..k] {
            violation(format!(
                "delivered prefix of {k} events differs from the fault-free run"
            ));
        }

        // 2. Prefix-report equality (and no detector panics on either side).
        let k = k.min(trace.len()).min(clean_trace.len());
        let (faulty_report, faulty_quarantined) = detect(
            program,
            &prefix_of(&trace, k),
            &outcome.panicked,
            cfg.workers,
        );
        let (clean_report, clean_quarantined) =
            detect(program, &prefix_of(&clean_trace, k), &[], cfg.workers);
        if faulty_quarantined || clean_quarantined {
            violation("detector panicked on a delivered prefix".to_string());
        } else if faulty_report.to_json() != clean_report.to_json() {
            violation(format!(
                "prefix reports diverge: faulty {} races vs fault-free {}",
                faulty_report.total(),
                clean_report.total()
            ));
        }

        // Races on the full delivered trace (what an operator would see).
        let (delivered_report, delivered_quarantined) =
            detect(program, &trace, &outcome.panicked, cfg.workers);
        if delivered_quarantined {
            violation("detector panicked on the full delivered trace".to_string());
        }
        report.races += delivered_report.total();

        // 3. Replayability: same inputs → same run; recorded schedule
        // replays to the same run.
        let rerun = simulate_with_faults(program, seed, &plan);
        if rerun != (trace.clone(), outcome.clone()) {
            violation("re-running the same (seed, plan) diverged".to_string());
        }
        let replayed = crate::explore::replay_with_faults(program, &outcome.schedule, &plan);
        if replayed != (trace, outcome) {
            violation("replaying the recorded schedule diverged".to_string());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimOp;
    use crace_model::Value;

    fn racy_program() -> SimProgram {
        let put = |v| SimOp::DictPut {
            dict: 0,
            key: Value::Int(1),
            value: Value::Int(v),
        };
        SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(10), SimOp::Unlock(0)],
                vec![
                    put(20),
                    SimOp::DictGet {
                        dict: 0,
                        key: Value::Int(1),
                    },
                ],
            ],
        }
    }

    #[test]
    fn campaign_upholds_contract_and_fires_faults() {
        let cfg = ChaosConfig {
            seed: 7,
            trials: 40,
            faults: 2,
            workers: 0,
        };
        let report = run_chaos(&racy_program(), &cfg);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.trials, 40);
        assert!(report.trials_faulted > 0, "no trial fired a fault");
        assert!(report.faults_fired >= report.trials_faulted);
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = ChaosConfig::default();
        let a = run_chaos(&racy_program(), &cfg);
        let b = run_chaos(&racy_program(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn feed_exports_counters_idempotently() {
        let cfg = ChaosConfig {
            seed: 3,
            trials: 5,
            faults: 1,
            workers: 0,
        };
        let report = run_chaos(&racy_program(), &cfg);
        let registry = Registry::new();
        report.feed(&registry);
        report.feed(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("chaos.trials"),
            Some(&crace_obs::MetricValue::Counter(5))
        );
    }

    #[test]
    fn parallel_campaign_agrees_with_serial() {
        let serial = run_chaos(&racy_program(), &ChaosConfig::default());
        let parallel = run_chaos(
            &racy_program(),
            &ChaosConfig {
                workers: 4,
                ..ChaosConfig::default()
            },
        );
        assert!(parallel.ok(), "violations: {:?}", parallel.violations);
        assert_eq!(serial.races, parallel.races);
        assert_eq!(serial.violations, parallel.violations);
    }

    #[test]
    fn fault_free_plan_reports_the_same_races_as_simulate() {
        let cfg = ChaosConfig {
            seed: 11,
            trials: 1,
            faults: 0,
            workers: 0,
        };
        let report = run_chaos(&racy_program(), &cfg);
        assert!(report.ok());
        assert_eq!(report.trials_faulted, 0);
        assert!(report.races >= 1, "the unordered puts race");
    }
}
