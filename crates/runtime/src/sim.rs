//! Deterministic simulated scheduler: scripted multi-threaded programs
//! executed under a pluggable interleaving policy, producing reproducible
//! traces.
//!
//! Real threads make race *presence* reproducible but not event order;
//! for schedule-space exploration (run the same program under many
//! interleavings and check detector invariants on every one) the runtime
//! offers this single-threaded simulator. A [`SimProgram`] gives each
//! simulated thread a script of [`SimOp`]s over shared dictionaries and
//! locks; the scheduling loop interleaves the scripts — respecting lock
//! blocking — executes them against reference semantics (so return values
//! are those of a real execution under that schedule), and returns the
//! recorded [`Trace`].
//!
//! Scheduling decisions go through the [`Scheduler`] trait:
//! [`SeededScheduler`] (what [`simulate`] uses) draws from a seeded RNG,
//! [`ScriptedScheduler`] replays a fixed choice sequence, and the
//! [`crate::explore`] model checker drives [`SimState`] directly to
//! enumerate *every* inequivalent schedule.
//!
//! # Examples
//!
//! ```
//! use crace_model::Value;
//! use crace_runtime::sim::{simulate, SimOp, SimProgram};
//!
//! let program = SimProgram {
//!     num_dicts: 1,
//!     num_locks: 0,
//!     threads: vec![
//!         vec![SimOp::DictPut { dict: 0, key: Value::Int(1), value: Value::Int(10) }],
//!         vec![SimOp::DictGet { dict: 0, key: Value::Int(1) }],
//!     ],
//! };
//! let trace = simulate(&program, 42);
//! assert_eq!(trace, simulate(&program, 42)); // fully deterministic
//! ```

use crate::fault::{Degradation, Fault, FaultInjector, FaultPlan};
use crace_model::{Action, Event, LockId, MethodId, ObjId, ThreadId, Trace, Value};
use crace_obs::{Registry, Snapshot};
use crace_spec::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::OnceLock;

/// One scripted operation of a simulated thread.
#[derive(Clone, Debug, PartialEq)]
pub enum SimOp {
    /// `dicts[dict].put(key, value)`.
    DictPut {
        /// Index of the dictionary.
        dict: usize,
        /// The key.
        key: Value,
        /// The new value (`nil` removes).
        value: Value,
    },
    /// `dicts[dict].get(key)`.
    DictGet {
        /// Index of the dictionary.
        dict: usize,
        /// The key.
        key: Value,
    },
    /// `dicts[dict].size()`.
    DictSize {
        /// Index of the dictionary.
        dict: usize,
    },
    /// Acquire lock `lock` (blocks while held by another thread).
    Lock(usize),
    /// Release lock `lock`.
    ///
    /// # Panics
    ///
    /// [`simulate`] panics if the thread does not hold it.
    Unlock(usize),
}

/// A scripted program: `threads[i]` is the body of simulated thread
/// `i + 1`; the main thread (id 0) forks them all at the start and joins
/// them all at the end, as in the paper's fork/join examples.
#[derive(Clone, Debug, PartialEq)]
pub struct SimProgram {
    /// Number of shared dictionaries (object ids `1..=num_dicts`).
    pub num_dicts: usize,
    /// Number of locks (lock ids `0..num_locks`).
    pub num_locks: usize,
    /// Per-thread scripts.
    pub threads: Vec<Vec<SimOp>>,
}

impl SimProgram {
    /// Total number of scripted operations across all threads (the exact
    /// number of scheduling decisions every complete schedule makes).
    pub fn num_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }
}

struct DictIds {
    put: MethodId,
    get: MethodId,
    size: MethodId,
}

fn dict_ids() -> &'static DictIds {
    static CELL: OnceLock<DictIds> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::dictionary();
        DictIds {
            put: spec.method_id("put").expect("builtin"),
            get: spec.method_id("get").expect("builtin"),
            size: spec.method_id("size").expect("builtin"),
        }
    })
}

/// The object id of simulated dictionary `dict`.
pub fn sim_dict_obj(dict: usize) -> ObjId {
    ObjId(dict as u64 + 1)
}

/// The builtin-dictionary [`MethodId`]s a [`SimOp`] maps to:
/// `(put, get, size)`. Exposed so the explorer and the program format can
/// build [`Action`]s without re-resolving names.
pub fn sim_dict_methods() -> (MethodId, MethodId, MethodId) {
    let ids = dict_ids();
    (ids.put, ids.get, ids.size)
}

/// A scheduling policy: at every step of the simulation loop, picks which
/// runnable thread executes its next operation.
pub trait Scheduler {
    /// Picks one element of `runnable` — the 0-based indices into
    /// [`SimProgram::threads`] of the threads that have operations left
    /// and are not blocked on a foreign-held lock, sorted ascending and
    /// never empty.
    fn choose(&mut self, runnable: &[usize]) -> usize;
}

/// The seeded-RNG scheduler behind [`simulate`]: uniform choice among the
/// runnable threads, fully reproducible from the seed.
pub struct SeededScheduler {
    rng: StdRng,
}

impl SeededScheduler {
    /// Creates the scheduler for `seed`. Equal seeds yield equal
    /// schedules on equal programs.
    pub fn new(seed: u64) -> SeededScheduler {
        SeededScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededScheduler {
    fn choose(&mut self, runnable: &[usize]) -> usize {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Replays a fixed schedule: the thread index to run at each step, as
/// recorded by the explorer. This is what makes an explored
/// counterexample *replayable*.
pub struct ScriptedScheduler {
    choices: Vec<usize>,
    pos: usize,
}

impl ScriptedScheduler {
    /// Creates a scheduler replaying `choices` in order.
    pub fn new(choices: Vec<usize>) -> ScriptedScheduler {
        ScriptedScheduler { choices, pos: 0 }
    }

    /// How many choices have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Scheduler for ScriptedScheduler {
    /// # Panics
    ///
    /// Panics if the script is exhausted or names a thread that is not
    /// currently runnable — a scripted schedule is only meaningful for
    /// the exact program it was recorded from.
    fn choose(&mut self, runnable: &[usize]) -> usize {
        let t = *self
            .choices
            .get(self.pos)
            .expect("scripted schedule exhausted before the program finished");
        self.pos += 1;
        assert!(
            runnable.contains(&t),
            "scripted schedule picks thread {t}, which is not runnable"
        );
        t
    }
}

/// A mid-execution snapshot of a simulated program: reference-semantics
/// dictionary contents, lock ownership and per-thread program counters.
///
/// [`SimState::step`] executes exactly one operation, and the state is
/// [`Clone`] — together these let the [`crate::explore`] model checker
/// fork execution at every scheduling decision instead of re-running the
/// whole program per schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct SimState<'p> {
    program: &'p SimProgram,
    dicts: Vec<HashMap<Value, Value>>,
    lock_owner: Vec<Option<usize>>,
    pc: Vec<usize>,
}

impl<'p> SimState<'p> {
    /// The initial state of `program`: empty dictionaries, free locks,
    /// every thread at its first operation.
    pub fn new(program: &'p SimProgram) -> SimState<'p> {
        SimState {
            program,
            dicts: vec![HashMap::new(); program.num_dicts],
            lock_owner: vec![None; program.num_locks],
            pc: vec![0; program.threads.len()],
        }
    }

    /// The threads that can execute a step right now: operations left and
    /// not blocked on a foreign-held lock, ascending. Locks are
    /// non-reentrant, so a thread re-acquiring its own lock blocks
    /// forever (surfacing as a deadlock).
    pub fn runnable(&self) -> Vec<usize> {
        (0..self.program.threads.len())
            .filter(|&t| match self.next_op(t) {
                None => false,
                Some(SimOp::Lock(l)) => self.lock_owner[*l].is_none(),
                Some(_) => true,
            })
            .collect()
    }

    /// The next operation of thread `t`, or `None` if its script is done.
    pub fn next_op(&self, t: usize) -> Option<&'p SimOp> {
        self.program.threads[t].get(self.pc[t])
    }

    /// The program counter of thread `t`: how many of its operations have
    /// executed.
    pub fn pc(&self, t: usize) -> usize {
        self.pc[t]
    }

    /// Has every thread finished its script?
    pub fn finished(&self) -> bool {
        (0..self.program.threads.len()).all(|t| self.next_op(t).is_none())
    }

    /// The current dictionary contents — after [`SimState::finished`],
    /// the final state Theorem 5.2's determinism guarantee talks about.
    pub fn dicts(&self) -> &[HashMap<Value, Value>] {
        &self.dicts
    }

    /// Consumes the state, returning the dictionary contents.
    pub fn into_dicts(self) -> Vec<HashMap<Value, Value>> {
        self.dicts
    }

    /// Marks thread `t` dead: its script is cut short (it executes no
    /// further operations) and any locks it holds stay held forever —
    /// the poisoned-lock scenario an injected mid-critical-section panic
    /// produces. Threads blocked on such a lock never become runnable
    /// again.
    pub fn kill(&mut self, t: usize) {
        self.pc[t] = self.program.threads[t].len();
    }

    /// The thread currently holding simulated lock `lock`, if any.
    pub fn lock_owner(&self, lock: usize) -> Option<usize> {
        self.lock_owner[lock]
    }

    /// Executes the next operation of thread `t` against the reference
    /// semantics and returns the recorded event (actions carry the real
    /// return value under this schedule).
    ///
    /// # Panics
    ///
    /// Panics on script errors: `t` blocked or finished,
    /// dictionary/lock indices out of range, or unlocking a lock the
    /// thread does not hold.
    pub fn step(&mut self, t: usize) -> Event {
        let tid = ThreadId(t as u32 + 1);
        let op = self.next_op(t).expect("stepping a finished thread");
        self.pc[t] += 1;
        match op {
            SimOp::DictPut { dict, key, value } => {
                let map = &mut self.dicts[*dict];
                let prev = if value.is_nil() {
                    map.remove(key).unwrap_or(Value::Nil)
                } else {
                    map.insert(key.clone(), value.clone()).unwrap_or(Value::Nil)
                };
                Event::Action {
                    tid,
                    action: Action::new(
                        sim_dict_obj(*dict),
                        dict_ids().put,
                        vec![key.clone(), value.clone()],
                        prev,
                    ),
                }
            }
            SimOp::DictGet { dict, key } => {
                let v = self.dicts[*dict].get(key).cloned().unwrap_or(Value::Nil);
                Event::Action {
                    tid,
                    action: Action::new(sim_dict_obj(*dict), dict_ids().get, vec![key.clone()], v),
                }
            }
            SimOp::DictSize { dict } => {
                let v = Value::Int(self.dicts[*dict].len() as i64);
                Event::Action {
                    tid,
                    action: Action::new(sim_dict_obj(*dict), dict_ids().size, vec![], v),
                }
            }
            SimOp::Lock(l) => {
                assert!(
                    self.lock_owner[*l].is_none(),
                    "scheduler picked a blocked thread"
                );
                self.lock_owner[*l] = Some(t);
                Event::Acquire {
                    tid,
                    lock: LockId(*l as u64),
                }
            }
            SimOp::Unlock(l) => {
                assert_eq!(
                    self.lock_owner[*l],
                    Some(t),
                    "thread {tid} unlocks lock {l} it does not hold"
                );
                self.lock_owner[*l] = None;
                Event::Release {
                    tid,
                    lock: LockId(*l as u64),
                }
            }
        }
    }
}

/// Executes `program` under the seeded schedule and returns the trace
/// (actions carry the Fig. 5 reference semantics' return values).
///
/// Simulated dictionaries use the [`builtin::dictionary`] specification's
/// method numbering, with object ids [`sim_dict_obj`]`(0..num_dicts)`.
///
/// # Panics
///
/// Panics on script errors: dictionary/lock indices out of range,
/// unlocking a lock the thread does not hold, or a deadlock (every
/// unfinished thread blocked).
pub fn simulate(program: &SimProgram, seed: u64) -> Trace {
    simulate_with_state(program, seed).0
}

/// Like [`simulate`], additionally returning the final contents of every
/// simulated dictionary — what Theorem 5.2's determinism guarantee talks
/// about.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_with_state(program: &SimProgram, seed: u64) -> (Trace, Vec<HashMap<Value, Value>>) {
    simulate_with_scheduler(program, &mut SeededScheduler::new(seed))
}

/// Executes `program` under an arbitrary [`Scheduler`], returning the
/// trace and the final dictionary contents.
///
/// # Panics
///
/// Same conditions as [`simulate`], plus whatever the scheduler's
/// [`Scheduler::choose`] panics on (e.g. a [`ScriptedScheduler`] replayed
/// against the wrong program).
///
/// # Examples
///
/// Replaying an explicit schedule:
///
/// ```
/// use crace_model::Value;
/// use crace_runtime::sim::{simulate_with_scheduler, ScriptedScheduler, SimOp, SimProgram};
///
/// let program = SimProgram {
///     num_dicts: 1,
///     num_locks: 0,
///     threads: vec![
///         vec![SimOp::DictPut { dict: 0, key: Value::Int(1), value: Value::Int(10) }],
///         vec![SimOp::DictGet { dict: 0, key: Value::Int(1) }],
///     ],
/// };
/// // Thread 1 (index 0) first, then thread 2: the get sees the put.
/// let (trace, _) = simulate_with_scheduler(&program, &mut ScriptedScheduler::new(vec![0, 1]));
/// let get = trace.events()[3].action().unwrap();
/// assert_eq!(get.ret(), &Value::Int(10));
/// ```
pub fn simulate_with_scheduler(
    program: &SimProgram,
    scheduler: &mut dyn Scheduler,
) -> (Trace, Vec<HashMap<Value, Value>>) {
    simulate_inner(program, scheduler, &mut |_, _| {})
}

/// Like [`simulate`], additionally metering the run through a
/// [`crace_obs::Registry`] and handing the caller a [`Snapshot`] every
/// `every` scheduler steps — the periodic reporter the long-running
/// workload drivers use to stream progress without stopping the world.
///
/// The registry carries `sim.steps` (scheduler decisions taken),
/// `sim.events.{fork,join,acquire,release,action}` counters and a
/// `sim.runnable` gauge (threads runnable at the latest step). The
/// reporter also fires once after the final join events so the last
/// snapshot always reflects the whole trace. `every = 0` disables the
/// periodic calls (only the final snapshot is delivered).
///
/// # Panics
///
/// Same conditions as [`simulate`].
///
/// # Examples
///
/// ```
/// use crace_model::Value;
/// use crace_runtime::sim::{simulate_with_reporter, SimOp, SimProgram};
///
/// let program = SimProgram {
///     num_dicts: 1,
///     num_locks: 0,
///     threads: vec![vec![SimOp::DictPut { dict: 0, key: Value::Int(1), value: Value::Int(10) }]],
/// };
/// let mut reports = 0;
/// let trace = simulate_with_reporter(&program, 42, 1, |_snap| reports += 1);
/// assert_eq!(trace.len(), 3); // fork, put, join
/// assert!(reports >= 1);
/// ```
pub fn simulate_with_reporter<F>(
    program: &SimProgram,
    seed: u64,
    every: u64,
    mut reporter: F,
) -> Trace
where
    F: FnMut(&Snapshot),
{
    let registry = Registry::new();
    let steps = registry.counter("sim.steps");
    let counters = [
        registry.counter("sim.events.fork"),
        registry.counter("sim.events.join"),
        registry.counter("sim.events.acquire"),
        registry.counter("sim.events.release"),
        registry.counter("sim.events.action"),
    ];
    let runnable_gauge = registry.gauge("sim.runnable");
    let (trace, _) = simulate_inner(
        program,
        &mut SeededScheduler::new(seed),
        &mut |event, runnable| {
            let idx = match event {
                Event::Fork { .. } => 0,
                Event::Join { .. } => 1,
                Event::Acquire { .. } => 2,
                Event::Release { .. } => 3,
                Event::Action { .. } | Event::Read { .. } | Event::Write { .. } => 4,
            };
            counters[idx].inc();
            runnable_gauge.set(runnable as f64);
            steps.inc();
            if every != 0 && steps.get().is_multiple_of(every) {
                reporter(&registry.snapshot());
            }
        },
    );
    reporter(&registry.snapshot());
    trace
}

/// The scheduling loop shared by all `simulate*` entry points. `observe`
/// is called once per recorded event with the event and the number of
/// threads that were runnable when it was chosen (0 for the implicit
/// fork/join prologue and epilogue of the main thread).
fn simulate_inner(
    program: &SimProgram,
    scheduler: &mut dyn Scheduler,
    observe: &mut dyn FnMut(&Event, usize),
) -> (Trace, Vec<HashMap<Value, Value>>) {
    let mut trace = Trace::new();
    let main = ThreadId(0);
    let n = program.threads.len();

    let mut emit = |trace: &mut Trace, event: Event, runnable: usize| {
        observe(&event, runnable);
        trace.push(event);
    };

    for t in 0..n {
        emit(
            &mut trace,
            Event::Fork {
                parent: main,
                child: ThreadId(t as u32 + 1),
            },
            0,
        );
    }

    let mut state = SimState::new(program);
    loop {
        let runnable = state.runnable();
        if runnable.is_empty() {
            if !state.finished() {
                panic!("simulated deadlock: all unfinished threads are blocked");
            }
            break;
        }
        let width = runnable.len();
        let t = scheduler.choose(&runnable);
        let event = state.step(t);
        emit(&mut trace, event, width);
    }

    for t in 0..n {
        emit(
            &mut trace,
            Event::Join {
                parent: main,
                child: ThreadId(t as u32 + 1),
            },
            0,
        );
    }
    (trace, state.into_dicts())
}

/// What happened during one chaos execution, beyond the delivered trace.
///
/// Everything needed to *replay* the run is here: the recorded
/// `schedule` plus the original [`FaultPlan`] reproduce the trace and
/// this outcome bit-for-bit via [`crate::explore::replay_with_faults`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Script thread indices killed by an injected [`Fault::PanicThread`].
    pub panicked: Vec<usize>,
    /// Script thread indices abandoned at exit: alive but permanently
    /// blocked on a lock a dead thread still holds.
    pub abandoned: Vec<usize>,
    /// Lock indices still held at exit by a dead or abandoned thread.
    pub poisoned_locks: Vec<usize>,
    /// Dispatches lost to [`Fault::Drop`] (executed against the reference
    /// semantics, never recorded in the trace).
    pub events_shed: u64,
    /// Dispatches hit by [`Fault::Delay`] (recorded; a delay is an
    /// identity in the single-consumer simulator, but it is counted so
    /// degradation totals match the real-thread runtime).
    pub events_delayed: u64,
    /// Global event index of the first fault that fired, if any. Every
    /// slot before it was delivered fault-free, so the trace's first
    /// `first_fault_index` events are bit-for-bit those of the fault-free
    /// run under the same schedule — the delivered-prefix guarantee.
    pub first_fault_index: Option<u64>,
    /// Total planned faults that actually fired.
    pub faults_fired: u64,
    /// Degradation counters as the runtime's [`FaultInjector`] saw them.
    pub degradation: Degradation,
    /// Scheduler choices in order, for replay.
    pub schedule: Vec<usize>,
}

impl ChaosOutcome {
    /// True iff no fault fired: the run was observationally fault-free.
    pub fn clean(&self) -> bool {
        self.faults_fired == 0
    }
}

/// What to do with one dispatch slot after consulting the fault plane.
enum Slot {
    Deliver,
    Shed,
    Panic,
}

fn claim_slot(injector: &FaultInjector, outcome: &mut ChaosOutcome, sheddable: bool) -> Slot {
    let (at, fault) = injector.next();
    let Some(fault) = fault else {
        return Slot::Deliver;
    };
    if fault == Fault::Drop && !sheddable {
        // Synchronization events are never shed: losing a happens-before
        // edge would make the detector invent races. The planned drop is
        // suppressed (same rule as the real-thread runtime).
        return Slot::Deliver;
    }
    outcome.faults_fired += 1;
    if outcome.first_fault_index.is_none() {
        outcome.first_fault_index = Some(at);
    }
    match fault {
        Fault::PanicThread => {
            injector.record_panic();
            Slot::Panic
        }
        Fault::Drop => {
            injector.record_drop();
            outcome.events_shed += 1;
            Slot::Shed
        }
        Fault::Delay(_) => {
            injector.record_delay();
            outcome.events_delayed += 1;
            Slot::Deliver
        }
    }
}

/// Executes `program` under the seeded schedule with `plan`'s faults
/// injected, returning the *delivered* trace (exactly the events an
/// analysis would have seen) and the [`ChaosOutcome`].
///
/// Fault semantics per dispatch slot (slots are numbered like the
/// fault-free run: fork prologue, one per scheduled step, join epilogue):
///
/// * [`Fault::PanicThread`] on a scheduled step kills the chosen thread
///   *instead of* executing its operation — its script ends there and any
///   locks it holds stay held (poisoned). On a fork-prologue slot the
///   child dies before running anything (and the fork is not delivered);
///   on a join-epilogue slot the join dispatch is lost but the simulator
///   host survives, mirroring [`crate::TrackedJoinHandle::join`] catching
///   the child's panic.
/// * [`Fault::Drop`] executes the operation against the reference
///   semantics but does not record the event: shared state advances, the
///   analysis is blind to it. Only data-plane slots (dictionary actions)
///   are sheddable — a drop planned on a fork/join/lock/unlock slot is
///   suppressed and delivers normally, because losing a happens-before
///   edge would make the detector invent races (degradation must fail
///   toward fewer reports, never more).
/// * [`Fault::Delay`] delivers normally (counted; no actual sleep — the
///   simulator is single-consumer so a delay cannot reorder anything).
///
/// Threads left permanently blocked on a dead thread's lock are
/// *abandoned*: the run ends without a deadlock panic (the degradation
/// contract's poisoned-lock scenario) and they get no join event, just as
/// a real host that cannot join a wedged thread would move on. The
/// deadlock panic is preserved when no fault fired.
///
/// # Panics
///
/// Same script-error conditions as [`simulate`], plus genuine deadlocks
/// in fault-free runs.
pub fn simulate_with_faults(
    program: &SimProgram,
    seed: u64,
    plan: &FaultPlan,
) -> (Trace, ChaosOutcome) {
    simulate_faulty_with_scheduler(program, &mut SeededScheduler::new(seed), plan)
}

/// [`simulate_with_faults`] under an arbitrary [`Scheduler`] — pair with
/// [`ScriptedScheduler`] over [`ChaosOutcome::schedule`] to replay a
/// chaos run exactly.
pub fn simulate_faulty_with_scheduler(
    program: &SimProgram,
    scheduler: &mut dyn Scheduler,
    plan: &FaultPlan,
) -> (Trace, ChaosOutcome) {
    let injector = FaultInjector::new(plan.clone());
    let mut trace = Trace::new();
    let mut outcome = ChaosOutcome::default();
    let main = ThreadId(0);
    let n = program.threads.len();
    let mut state = SimState::new(program);
    let mut dead = vec![false; n];

    for (t, slot) in dead.iter_mut().enumerate() {
        match claim_slot(&injector, &mut outcome, false) {
            Slot::Deliver => trace.push(Event::Fork {
                parent: main,
                child: ThreadId(t as u32 + 1),
            }),
            Slot::Shed => {}
            Slot::Panic => {
                *slot = true;
                outcome.panicked.push(t);
                state.kill(t);
            }
        }
    }

    loop {
        let runnable = state.runnable();
        if runnable.is_empty() {
            break;
        }
        let t = scheduler.choose(&runnable);
        outcome.schedule.push(t);
        let sheddable = !matches!(state.next_op(t), Some(SimOp::Lock(_) | SimOp::Unlock(_)));
        match claim_slot(&injector, &mut outcome, sheddable) {
            Slot::Deliver => {
                let event = state.step(t);
                trace.push(event);
            }
            Slot::Shed => {
                let _ = state.step(t);
            }
            Slot::Panic => {
                dead[t] = true;
                outcome.panicked.push(t);
                state.kill(t);
            }
        }
    }

    for (t, &is_dead) in dead.iter().enumerate() {
        if !is_dead && state.next_op(t).is_some() {
            outcome.abandoned.push(t);
        }
    }
    if !outcome.abandoned.is_empty() && outcome.clean() {
        panic!("simulated deadlock: all unfinished threads are blocked");
    }
    for lock in 0..program.num_locks {
        if let Some(owner) = state.lock_owner(lock) {
            if dead[owner] || outcome.abandoned.contains(&owner) {
                outcome.poisoned_locks.push(lock);
            }
        }
    }

    for t in 0..n {
        if outcome.abandoned.contains(&t) {
            continue; // a wedged thread cannot be joined; the host moves on
        }
        match claim_slot(&injector, &mut outcome, false) {
            Slot::Deliver => trace.push(Event::Join {
                parent: main,
                child: ThreadId(t as u32 + 1),
            }),
            Slot::Shed | Slot::Panic => {}
        }
    }

    outcome.degradation = injector.degradation();
    (trace, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::{translate, TraceDetector};
    use crace_model::replay;
    use std::sync::Arc;

    fn detect(trace: &Trace, num_dicts: usize) -> u64 {
        let detector = TraceDetector::new();
        let compiled = Arc::new(translate(&builtin::dictionary()).unwrap());
        for d in 0..num_dicts {
            detector.register(sim_dict_obj(d), Arc::clone(&compiled));
        }
        replay(trace, &detector).total()
    }

    fn put(dict: usize, k: i64, v: i64) -> SimOp {
        SimOp::DictPut {
            dict,
            key: Value::Int(k),
            value: Value::Int(v),
        }
    }

    fn get(dict: usize, k: i64) -> SimOp {
        SimOp::DictGet {
            dict,
            key: Value::Int(k),
        }
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![
                vec![put(0, 1, 10), get(0, 1), put(0, 2, 20)],
                vec![put(0, 3, 30), get(0, 3)],
            ],
        };
        assert_eq!(simulate(&program, 1), simulate(&program, 1));
        // Some pair of seeds yields different interleavings.
        let t0 = simulate(&program, 0);
        assert!((1..20).any(|s| simulate(&program, s) != t0));
    }

    #[test]
    fn scripted_scheduler_reproduces_an_exact_interleaving() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10), get(0, 1)], vec![put(0, 1, 20)]],
        };
        // t2's put lands between t1's put and get.
        let (trace, dicts) =
            simulate_with_scheduler(&program, &mut ScriptedScheduler::new(vec![0, 1, 0]));
        let actions: Vec<_> = trace.iter().filter_map(|e| e.action()).collect();
        assert_eq!(actions[1].ret(), &Value::Int(10)); // t2 overwrites t1's put
        assert_eq!(actions[2].ret(), &Value::Int(20)); // get sees t2's value
        assert_eq!(dicts[0][&Value::Int(1)], Value::Int(20));
    }

    #[test]
    #[should_panic(expected = "not runnable")]
    fn scripted_scheduler_rejects_blocked_threads() {
        let program = SimProgram {
            num_dicts: 0,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), SimOp::Unlock(0)],
                vec![SimOp::Lock(0), SimOp::Unlock(0)],
            ],
        };
        // Thread 1 (index 1) cannot run while thread 0 holds the lock.
        simulate_with_scheduler(&program, &mut ScriptedScheduler::new(vec![0, 1, 0, 1]));
    }

    #[test]
    fn disjoint_keys_are_race_free_under_every_schedule() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![
                vec![put(0, 1, 10), get(0, 1), put(0, 1, 11)],
                vec![put(0, 2, 20), get(0, 2)],
                vec![
                    put(0, 3, 30),
                    SimOp::DictGet {
                        dict: 0,
                        key: Value::Int(3),
                    },
                ],
            ],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert_eq!(detect(&trace, 1), 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn same_key_writes_race_under_every_schedule() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10)], vec![put(0, 1, 20)]],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert!(detect(&trace, 1) > 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn lock_protected_rmw_is_race_free_under_every_schedule() {
        let rmw = |l: usize| vec![SimOp::Lock(l), get(0, 1), put(0, 1, 99), SimOp::Unlock(l)];
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![rmw(0), rmw(0), rmw(0)],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert_eq!(detect(&trace, 1), 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn unlocked_rmw_races_under_every_schedule() {
        // Same program without the lock: both orders of the two writes
        // conflict (v ≠ p in at least one), so every schedule races.
        let rmw = || vec![get(0, 1), put(0, 1, 99)];
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![rmw(), rmw()],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert!(detect(&trace, 1) > 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn reference_semantics_produce_correct_returns() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![vec![
                put(0, 7, 1),
                put(0, 7, 2),
                get(0, 7),
                SimOp::DictSize { dict: 0 },
            ]],
        };
        let trace = simulate(&program, 5);
        let actions: Vec<_> = trace.iter().filter_map(|e| e.action()).collect();
        assert_eq!(actions[0].ret(), &Value::Nil); // first put: empty slot
        assert_eq!(actions[1].ret(), &Value::Int(1)); // overwrites 1
        assert_eq!(actions[2].ret(), &Value::Int(2)); // reads 2
        assert_eq!(actions[3].ret(), &Value::Int(1)); // one key present
    }

    #[test]
    fn multiple_dicts_are_independent() {
        let program = SimProgram {
            num_dicts: 2,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10)], vec![put(1, 1, 20)]],
        };
        for seed in 0..20 {
            let trace = simulate(&program, seed);
            // Same key but different objects: never a race.
            assert_eq!(detect(&trace, 2), 0, "seed {seed}");
        }
    }

    #[test]
    fn reporter_counts_every_event_kind() {
        use crace_obs::MetricValue;
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(0, 1, 10), SimOp::Unlock(0)],
                vec![get(0, 2)],
            ],
        };
        let mut last = None;
        let mut calls = 0u64;
        let trace = simulate_with_reporter(&program, 3, 2, |s| {
            calls += 1;
            last = Some(s.clone());
        });
        let snap = last.expect("final snapshot");
        let count = |name: &str| match snap.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(count("sim.events.fork"), 2);
        assert_eq!(count("sim.events.join"), 2);
        assert_eq!(count("sim.events.acquire"), 1);
        assert_eq!(count("sim.events.release"), 1);
        assert_eq!(count("sim.events.action"), 2);
        assert_eq!(count("sim.steps"), trace.len() as u64);
        // Periodic calls every 2 steps (8 events → 4) plus the final one.
        assert_eq!(calls, trace.len() as u64 / 2 + 1);
    }

    #[test]
    fn reporter_zero_interval_delivers_only_the_final_snapshot() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10), get(0, 1)]],
        };
        let mut calls = 0u64;
        simulate_with_reporter(&program, 7, 0, |_| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn reporter_does_not_perturb_the_schedule() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![
                vec![put(0, 1, 10), get(0, 1), put(0, 2, 20)],
                vec![put(0, 3, 30), get(0, 3)],
            ],
        };
        for seed in 0..10 {
            let plain = simulate(&program, seed);
            let observed = simulate_with_reporter(&program, seed, 3, |_| {});
            assert_eq!(plain, observed, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unlocking_foreign_lock_panics() {
        let program = SimProgram {
            num_dicts: 0,
            num_locks: 1,
            threads: vec![vec![SimOp::Unlock(0)]],
        };
        simulate(&program, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn self_deadlock_panics() {
        let program = SimProgram {
            num_dicts: 0,
            num_locks: 1,
            threads: vec![vec![SimOp::Lock(0), SimOp::Lock(0)]],
        };
        simulate(&program, 0);
    }

    #[test]
    fn empty_fault_plan_matches_fault_free_run() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(0, 1, 10), SimOp::Unlock(0)],
                vec![put(0, 2, 20), get(0, 2)],
            ],
        };
        for seed in 0..10 {
            let plain = simulate(&program, seed);
            let (chaotic, outcome) = simulate_with_faults(&program, seed, &FaultPlan::new());
            assert_eq!(plain, chaotic, "seed {seed}");
            assert!(outcome.clean());
            assert_eq!(outcome.degradation, Degradation::default());
        }
    }

    #[test]
    fn drop_fault_sheds_one_event_and_keeps_reference_semantics() {
        // Single thread, so the schedule is forced: slots are
        // fork(0), put(1), get(2), join(3). Drop the put's dispatch.
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10), get(0, 1)]],
        };
        let plan = FaultPlan::new().with(1, Fault::Drop);
        let (trace, outcome) = simulate_with_faults(&program, 0, &plan);
        assert_eq!(outcome.events_shed, 1);
        assert_eq!(outcome.first_fault_index, Some(1));
        // fork, get, join — the put is gone from the trace…
        assert_eq!(trace.len(), 3);
        // …but it executed: the get still observes the stored value.
        let got = trace.events()[1].action().unwrap();
        assert_eq!(got.ret(), &Value::Int(10));
    }

    #[test]
    fn panic_fault_kills_thread_and_poisons_its_lock() {
        // Thread 0 takes the lock then dies; thread 1 needs the lock and
        // is abandoned, blocked forever on the poisoned lock.
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(0, 1, 10), SimOp::Unlock(0)],
                vec![SimOp::Lock(0), put(0, 2, 20), SimOp::Unlock(0)],
            ],
        };
        // Force thread 0 first; slot 2 is fork(0), fork(1), then thread
        // 0's Lock at slot 2 — panic at slot 3 (its put, lock held).
        let plan = FaultPlan::new().with(3, Fault::PanicThread);
        let mut scheduler = ScriptedScheduler::new(vec![0, 0]);
        let (trace, outcome) = simulate_faulty_with_scheduler(&program, &mut scheduler, &plan);
        assert_eq!(outcome.panicked, vec![0]);
        assert_eq!(outcome.abandoned, vec![1]);
        assert_eq!(outcome.poisoned_locks, vec![0]);
        assert_eq!(outcome.degradation.panics_injected, 1);
        // fork, fork, acquire, then the dead thread's join only (the
        // abandoned thread gets none).
        assert_eq!(trace.len(), 4);
        assert!(matches!(
            trace.events()[3],
            Event::Join {
                child: ThreadId(1),
                ..
            }
        ));
    }

    #[test]
    fn chaos_runs_replay_bit_for_bit() {
        let program = SimProgram {
            num_dicts: 2,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(0, 1, 10), SimOp::Unlock(0), get(1, 5)],
                vec![put(0, 1, 20), put(1, 5, 50)],
                vec![get(0, 1), SimOp::DictSize { dict: 1 }],
            ],
        };
        for seed in 0..20 {
            let plan = FaultPlan::seeded(seed, 20, 3);
            let (trace, outcome) = simulate_with_faults(&program, seed, &plan);
            let (trace2, outcome2) = simulate_with_faults(&program, seed, &plan);
            assert_eq!(trace, trace2, "seed {seed}");
            assert_eq!(outcome, outcome2, "seed {seed}");
            let (replayed, routcome) =
                crate::explore::replay_with_faults(&program, &outcome.schedule, &plan);
            assert_eq!(trace, replayed, "seed {seed}");
            assert_eq!(outcome, routcome, "seed {seed}");
        }
    }

    #[test]
    fn delivered_prefix_matches_fault_free_run() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(0, 1, 10), SimOp::Unlock(0)],
                vec![put(0, 1, 20), get(0, 1)],
            ],
        };
        for seed in 0..30 {
            let plain = simulate(&program, seed);
            let plan = FaultPlan::seeded(seed.wrapping_mul(7), 12, 2);
            let (trace, outcome) = simulate_with_faults(&program, seed, &plan);
            let k = outcome
                .first_fault_index
                .map(|k| k as usize)
                .unwrap_or(trace.len());
            assert!(trace.len() >= k, "seed {seed}");
            assert_eq!(
                &trace.events()[..k],
                &plain.events()[..k],
                "seed {seed}: delivered prefix diverged"
            );
        }
    }
}
