//! Deterministic simulated scheduler: scripted multi-threaded programs
//! executed under a seeded interleaving, producing reproducible traces.
//!
//! Real threads make race *presence* reproducible but not event order;
//! for schedule-space exploration (run the same program under many
//! interleavings and check detector invariants on every one) the runtime
//! offers this single-threaded simulator. A [`SimProgram`] gives each
//! simulated thread a script of [`SimOp`]s over shared dictionaries and
//! locks; [`simulate`] interleaves the scripts with a seeded RNG —
//! respecting lock blocking — executes them against reference semantics
//! (so return values are those of a real execution under that schedule),
//! and returns the recorded [`Trace`].
//!
//! # Examples
//!
//! ```
//! use crace_model::Value;
//! use crace_runtime::sim::{simulate, SimOp, SimProgram};
//!
//! let program = SimProgram {
//!     num_dicts: 1,
//!     num_locks: 0,
//!     threads: vec![
//!         vec![SimOp::DictPut { dict: 0, key: Value::Int(1), value: Value::Int(10) }],
//!         vec![SimOp::DictGet { dict: 0, key: Value::Int(1) }],
//!     ],
//! };
//! let trace = simulate(&program, 42);
//! assert_eq!(trace, simulate(&program, 42)); // fully deterministic
//! ```

use crace_model::{Action, Event, LockId, MethodId, ObjId, ThreadId, Trace, Value};
use crace_obs::{Registry, Snapshot};
use crace_spec::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::OnceLock;

/// One scripted operation of a simulated thread.
#[derive(Clone, Debug, PartialEq)]
pub enum SimOp {
    /// `dicts[dict].put(key, value)`.
    DictPut {
        /// Index of the dictionary.
        dict: usize,
        /// The key.
        key: Value,
        /// The new value (`nil` removes).
        value: Value,
    },
    /// `dicts[dict].get(key)`.
    DictGet {
        /// Index of the dictionary.
        dict: usize,
        /// The key.
        key: Value,
    },
    /// `dicts[dict].size()`.
    DictSize {
        /// Index of the dictionary.
        dict: usize,
    },
    /// Acquire lock `lock` (blocks while held by another thread).
    Lock(usize),
    /// Release lock `lock`.
    ///
    /// # Panics
    ///
    /// [`simulate`] panics if the thread does not hold it.
    Unlock(usize),
}

/// A scripted program: `threads[i]` is the body of simulated thread
/// `i + 1`; the main thread (id 0) forks them all at the start and joins
/// them all at the end, as in the paper's fork/join examples.
#[derive(Clone, Debug, PartialEq)]
pub struct SimProgram {
    /// Number of shared dictionaries (object ids `1..=num_dicts`).
    pub num_dicts: usize,
    /// Number of locks (lock ids `0..num_locks`).
    pub num_locks: usize,
    /// Per-thread scripts.
    pub threads: Vec<Vec<SimOp>>,
}

struct DictIds {
    put: MethodId,
    get: MethodId,
    size: MethodId,
}

fn dict_ids() -> &'static DictIds {
    static CELL: OnceLock<DictIds> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::dictionary();
        DictIds {
            put: spec.method_id("put").expect("builtin"),
            get: spec.method_id("get").expect("builtin"),
            size: spec.method_id("size").expect("builtin"),
        }
    })
}

/// The object id of simulated dictionary `dict`.
pub fn sim_dict_obj(dict: usize) -> ObjId {
    ObjId(dict as u64 + 1)
}

/// Executes `program` under the seeded schedule and returns the trace
/// (actions carry the Fig. 5 reference semantics' return values).
///
/// Simulated dictionaries use the [`builtin::dictionary`] specification's
/// method numbering, with object ids [`sim_dict_obj`]`(0..num_dicts)`.
///
/// # Panics
///
/// Panics on script errors: dictionary/lock indices out of range,
/// unlocking a lock the thread does not hold, or a deadlock (every
/// unfinished thread blocked).
pub fn simulate(program: &SimProgram, seed: u64) -> Trace {
    simulate_with_state(program, seed).0
}

/// Like [`simulate`], additionally returning the final contents of every
/// simulated dictionary — what Theorem 5.2's determinism guarantee talks
/// about.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_with_state(program: &SimProgram, seed: u64) -> (Trace, Vec<HashMap<Value, Value>>) {
    simulate_inner(program, seed, &mut |_, _| {})
}

/// Like [`simulate`], additionally metering the run through a
/// [`crace_obs::Registry`] and handing the caller a [`Snapshot`] every
/// `every` scheduler steps — the periodic reporter the long-running
/// workload drivers use to stream progress without stopping the world.
///
/// The registry carries `sim.steps` (scheduler decisions taken),
/// `sim.events.{fork,join,acquire,release,action}` counters and a
/// `sim.runnable` gauge (threads runnable at the latest step). The
/// reporter also fires once after the final join events so the last
/// snapshot always reflects the whole trace. `every = 0` disables the
/// periodic calls (only the final snapshot is delivered).
///
/// # Panics
///
/// Same conditions as [`simulate`].
///
/// # Examples
///
/// ```
/// use crace_model::Value;
/// use crace_runtime::sim::{simulate_with_reporter, SimOp, SimProgram};
///
/// let program = SimProgram {
///     num_dicts: 1,
///     num_locks: 0,
///     threads: vec![vec![SimOp::DictPut { dict: 0, key: Value::Int(1), value: Value::Int(10) }]],
/// };
/// let mut reports = 0;
/// let trace = simulate_with_reporter(&program, 42, 1, |_snap| reports += 1);
/// assert_eq!(trace.len(), 3); // fork, put, join
/// assert!(reports >= 1);
/// ```
pub fn simulate_with_reporter<F>(
    program: &SimProgram,
    seed: u64,
    every: u64,
    mut reporter: F,
) -> Trace
where
    F: FnMut(&Snapshot),
{
    let registry = Registry::new();
    let steps = registry.counter("sim.steps");
    let counters = [
        registry.counter("sim.events.fork"),
        registry.counter("sim.events.join"),
        registry.counter("sim.events.acquire"),
        registry.counter("sim.events.release"),
        registry.counter("sim.events.action"),
    ];
    let runnable_gauge = registry.gauge("sim.runnable");
    let (trace, _) = simulate_inner(program, seed, &mut |event, runnable| {
        let idx = match event {
            Event::Fork { .. } => 0,
            Event::Join { .. } => 1,
            Event::Acquire { .. } => 2,
            Event::Release { .. } => 3,
            Event::Action { .. } | Event::Read { .. } | Event::Write { .. } => 4,
        };
        counters[idx].inc();
        runnable_gauge.set(runnable as f64);
        steps.inc();
        if every != 0 && steps.get().is_multiple_of(every) {
            reporter(&registry.snapshot());
        }
    });
    reporter(&registry.snapshot());
    trace
}

/// The scheduling loop shared by all `simulate*` entry points. `observe`
/// is called once per recorded event with the event and the number of
/// threads that were runnable when it was chosen (0 for the implicit
/// fork/join prologue and epilogue of the main thread).
fn simulate_inner(
    program: &SimProgram,
    seed: u64,
    observe: &mut dyn FnMut(&Event, usize),
) -> (Trace, Vec<HashMap<Value, Value>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    let main = ThreadId(0);
    let n = program.threads.len();

    let mut emit = |trace: &mut Trace, event: Event, runnable: usize| {
        observe(&event, runnable);
        trace.push(event);
    };

    for t in 0..n {
        emit(
            &mut trace,
            Event::Fork {
                parent: main,
                child: ThreadId(t as u32 + 1),
            },
            0,
        );
    }

    let mut dicts: Vec<HashMap<Value, Value>> = vec![HashMap::new(); program.num_dicts];
    let mut lock_owner: Vec<Option<usize>> = vec![None; program.num_locks];
    let mut pc: Vec<usize> = vec![0; n];

    loop {
        // Runnable = has ops left and not blocked on a foreign-held lock.
        let runnable: Vec<usize> = (0..n)
            .filter(|&t| {
                let script = &program.threads[t];
                match script.get(pc[t]) {
                    None => false,
                    // Locks are non-reentrant: a thread re-acquiring its own
                    // lock blocks forever (caught as a deadlock).
                    Some(SimOp::Lock(l)) => lock_owner[*l].is_none(),
                    Some(_) => true,
                }
            })
            .collect();
        if runnable.is_empty() {
            if (0..n).any(|t| pc[t] < program.threads[t].len()) {
                panic!("simulated deadlock: all unfinished threads are blocked");
            }
            break;
        }
        let width = runnable.len();
        let t = runnable[rng.gen_range(0..width)];
        let tid = ThreadId(t as u32 + 1);
        let op = &program.threads[t][pc[t]];
        pc[t] += 1;
        match op {
            SimOp::DictPut { dict, key, value } => {
                let map = &mut dicts[*dict];
                let prev = if value.is_nil() {
                    map.remove(key).unwrap_or(Value::Nil)
                } else {
                    map.insert(key.clone(), value.clone()).unwrap_or(Value::Nil)
                };
                emit(
                    &mut trace,
                    Event::Action {
                        tid,
                        action: Action::new(
                            sim_dict_obj(*dict),
                            dict_ids().put,
                            vec![key.clone(), value.clone()],
                            prev,
                        ),
                    },
                    width,
                );
            }
            SimOp::DictGet { dict, key } => {
                let v = dicts[*dict].get(key).cloned().unwrap_or(Value::Nil);
                emit(
                    &mut trace,
                    Event::Action {
                        tid,
                        action: Action::new(
                            sim_dict_obj(*dict),
                            dict_ids().get,
                            vec![key.clone()],
                            v,
                        ),
                    },
                    width,
                );
            }
            SimOp::DictSize { dict } => {
                let v = Value::Int(dicts[*dict].len() as i64);
                emit(
                    &mut trace,
                    Event::Action {
                        tid,
                        action: Action::new(sim_dict_obj(*dict), dict_ids().size, vec![], v),
                    },
                    width,
                );
            }
            SimOp::Lock(l) => {
                assert!(
                    lock_owner[*l].is_none(),
                    "scheduler picked a blocked thread"
                );
                lock_owner[*l] = Some(t);
                emit(
                    &mut trace,
                    Event::Acquire {
                        tid,
                        lock: LockId(*l as u64),
                    },
                    width,
                );
            }
            SimOp::Unlock(l) => {
                assert_eq!(
                    lock_owner[*l],
                    Some(t),
                    "thread {tid} unlocks lock {l} it does not hold"
                );
                lock_owner[*l] = None;
                emit(
                    &mut trace,
                    Event::Release {
                        tid,
                        lock: LockId(*l as u64),
                    },
                    width,
                );
            }
        }
    }

    for t in 0..n {
        emit(
            &mut trace,
            Event::Join {
                parent: main,
                child: ThreadId(t as u32 + 1),
            },
            0,
        );
    }
    (trace, dicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::{translate, TraceDetector};
    use crace_model::replay;
    use std::sync::Arc;

    fn detect(trace: &Trace, num_dicts: usize) -> u64 {
        let detector = TraceDetector::new();
        let compiled = Arc::new(translate(&builtin::dictionary()).unwrap());
        for d in 0..num_dicts {
            detector.register(sim_dict_obj(d), Arc::clone(&compiled));
        }
        replay(trace, &detector).total()
    }

    fn put(dict: usize, k: i64, v: i64) -> SimOp {
        SimOp::DictPut {
            dict,
            key: Value::Int(k),
            value: Value::Int(v),
        }
    }

    fn get(dict: usize, k: i64) -> SimOp {
        SimOp::DictGet {
            dict,
            key: Value::Int(k),
        }
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![
                vec![put(0, 1, 10), get(0, 1), put(0, 2, 20)],
                vec![put(0, 3, 30), get(0, 3)],
            ],
        };
        assert_eq!(simulate(&program, 1), simulate(&program, 1));
        // Some pair of seeds yields different interleavings.
        let t0 = simulate(&program, 0);
        assert!((1..20).any(|s| simulate(&program, s) != t0));
    }

    #[test]
    fn disjoint_keys_are_race_free_under_every_schedule() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![
                vec![put(0, 1, 10), get(0, 1), put(0, 1, 11)],
                vec![put(0, 2, 20), get(0, 2)],
                vec![
                    put(0, 3, 30),
                    SimOp::DictGet {
                        dict: 0,
                        key: Value::Int(3),
                    },
                ],
            ],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert_eq!(detect(&trace, 1), 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn same_key_writes_race_under_every_schedule() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10)], vec![put(0, 1, 20)]],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert!(detect(&trace, 1) > 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn lock_protected_rmw_is_race_free_under_every_schedule() {
        let rmw = |l: usize| vec![SimOp::Lock(l), get(0, 1), put(0, 1, 99), SimOp::Unlock(l)];
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![rmw(0), rmw(0), rmw(0)],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert_eq!(detect(&trace, 1), 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn unlocked_rmw_races_under_every_schedule() {
        // Same program without the lock: both orders of the two writes
        // conflict (v ≠ p in at least one), so every schedule races.
        let rmw = || vec![get(0, 1), put(0, 1, 99)];
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![rmw(), rmw()],
        };
        for seed in 0..50 {
            let trace = simulate(&program, seed);
            assert!(detect(&trace, 1) > 0, "seed {seed}\n{trace}");
        }
    }

    #[test]
    fn reference_semantics_produce_correct_returns() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![vec![
                put(0, 7, 1),
                put(0, 7, 2),
                get(0, 7),
                SimOp::DictSize { dict: 0 },
            ]],
        };
        let trace = simulate(&program, 5);
        let actions: Vec<_> = trace.iter().filter_map(|e| e.action()).collect();
        assert_eq!(actions[0].ret(), &Value::Nil); // first put: empty slot
        assert_eq!(actions[1].ret(), &Value::Int(1)); // overwrites 1
        assert_eq!(actions[2].ret(), &Value::Int(2)); // reads 2
        assert_eq!(actions[3].ret(), &Value::Int(1)); // one key present
    }

    #[test]
    fn multiple_dicts_are_independent() {
        let program = SimProgram {
            num_dicts: 2,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10)], vec![put(1, 1, 20)]],
        };
        for seed in 0..20 {
            let trace = simulate(&program, seed);
            // Same key but different objects: never a race.
            assert_eq!(detect(&trace, 2), 0, "seed {seed}");
        }
    }

    #[test]
    fn reporter_counts_every_event_kind() {
        use crace_obs::MetricValue;
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 1,
            threads: vec![
                vec![SimOp::Lock(0), put(0, 1, 10), SimOp::Unlock(0)],
                vec![get(0, 2)],
            ],
        };
        let mut last = None;
        let mut calls = 0u64;
        let trace = simulate_with_reporter(&program, 3, 2, |s| {
            calls += 1;
            last = Some(s.clone());
        });
        let snap = last.expect("final snapshot");
        let count = |name: &str| match snap.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(count("sim.events.fork"), 2);
        assert_eq!(count("sim.events.join"), 2);
        assert_eq!(count("sim.events.acquire"), 1);
        assert_eq!(count("sim.events.release"), 1);
        assert_eq!(count("sim.events.action"), 2);
        assert_eq!(count("sim.steps"), trace.len() as u64);
        // Periodic calls every 2 steps (8 events → 4) plus the final one.
        assert_eq!(calls, trace.len() as u64 / 2 + 1);
    }

    #[test]
    fn reporter_zero_interval_delivers_only_the_final_snapshot() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![vec![put(0, 1, 10), get(0, 1)]],
        };
        let mut calls = 0u64;
        simulate_with_reporter(&program, 7, 0, |_| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn reporter_does_not_perturb_the_schedule() {
        let program = SimProgram {
            num_dicts: 1,
            num_locks: 0,
            threads: vec![
                vec![put(0, 1, 10), get(0, 1), put(0, 2, 20)],
                vec![put(0, 3, 30), get(0, 3)],
            ],
        };
        for seed in 0..10 {
            let plain = simulate(&program, seed);
            let observed = simulate_with_reporter(&program, seed, 3, |_| {});
            assert_eq!(plain, observed, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unlocking_foreign_lock_panics() {
        let program = SimProgram {
            num_dicts: 0,
            num_locks: 1,
            threads: vec![vec![SimOp::Unlock(0)]],
        };
        simulate(&program, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn self_deadlock_panics() {
        let program = SimProgram {
            num_dicts: 0,
            num_locks: 1,
            threads: vec![vec![SimOp::Lock(0), SimOp::Lock(0)]],
        };
        simulate(&program, 0);
    }
}
