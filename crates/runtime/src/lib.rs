//! An instrumented concurrent runtime — the RoadRunner substitute.
//!
//! The paper implements RD2 inside RoadRunner, which intercepts a Java
//! program's synchronization operations, field accesses and
//! `ConcurrentHashMap` calls and forwards them to an analysis back-end.
//! This crate plays that role for Rust workloads:
//!
//! * [`Runtime`] wraps real OS threads: [`Runtime::spawn`] and
//!   [`TrackedJoinHandle::join`] emit fork/join events; [`TrackedMutex`]
//!   emits acquire/release events *while holding the real lock*, so the
//!   analysis observes synchronization in its true serialization order,
//! * [`MonitoredDict`], [`MonitoredSet`], [`MonitoredCounter`],
//!   [`MonitoredRegister`] and [`MonitoredQueue`] are real
//!   thread-safe shared objects whose operations additionally emit
//!   [`Action`](crace_model::Action) events (with concrete arguments and
//!   return values, linearized with the operation itself) — the analogue of
//!   the paper instrumenting `ConcurrentHashMap`,
//! * [`TrackedCell`] models a *plain application variable*: reads and
//!   writes emit low-level shadow events for the FastTrack baseline, like
//!   RoadRunner instrumenting ordinary field accesses. (The monitored
//!   objects deliberately emit no low-level events: RoadRunner excludes
//!   JDK internals, so a correctly synchronized `ConcurrentHashMap` is
//!   invisible to FastTrack — which is exactly why commutativity races on
//!   it are invisible to low-level detectors.)
//!
//! Everything is generic over the [`ObjectRegistry`] trait, so the same
//! workload runs uninstrumented ([`crace_model::NoopAnalysis`]), under
//! FastTrack, under RD2, or under the direct detector.
//!
//! # Examples
//!
//! The Fig. 1 duplicate-connections program:
//!
//! ```
//! use std::sync::Arc;
//! use crace_core::Rd2;
//! use crace_model::{Analysis, Value};
//! use crace_runtime::{MonitoredDict, Runtime};
//!
//! let analysis = Arc::new(Rd2::new());
//! let rt = Runtime::new(analysis.clone());
//! let dict = MonitoredDict::new(&rt);
//! let hosts = ["a.com", "a.com"]; // duplicate!
//!
//! let main = rt.main_ctx();
//! let mut handles = Vec::new();
//! for host in hosts {
//!     let dict = dict.clone();
//!     handles.push(rt.spawn(&main, move |ctx| {
//!         dict.put(ctx, Value::str(host), Value::Int(1));
//!     }));
//! }
//! for h in handles {
//!     h.join(&main).unwrap();
//! }
//! assert!(analysis.report().total() >= 1); // the duplicate put races
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
pub mod chaos;
mod counter;
mod dict;
pub mod explore;
pub mod fault;
mod queue;
mod register;
mod registry;
mod runtime;
mod set;
pub mod sim;

pub use cell::TrackedCell;
pub use counter::MonitoredCounter;
pub use dict::MonitoredDict;
pub use fault::{Fault, FaultInjector, FaultPlan, FaultedAnalysis};
pub use queue::MonitoredQueue;
pub use register::MonitoredRegister;
pub use registry::ObjectRegistry;
pub use runtime::{
    JoinError, Runtime, ThreadCtx, TrackedJoinHandle, TrackedMutex, TrackedMutexGuard,
};
pub use set::MonitoredSet;
