//! The monitored concurrent set.

use crate::runtime::{Inner, Runtime, ThreadCtx};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{builtin, Spec};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

const SHARDS: usize = 16;

struct SetMethods {
    spec: Spec,
    add: MethodId,
    remove: MethodId,
    contains: MethodId,
    size: MethodId,
}

fn set_methods() -> &'static SetMethods {
    static CELL: OnceLock<SetMethods> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::set();
        SetMethods {
            add: spec.method_id("add").expect("builtin"),
            remove: spec.method_id("remove").expect("builtin"),
            contains: spec.method_id("contains").expect("builtin"),
            size: spec.method_id("size").expect("builtin"),
            spec,
        }
    })
}

/// A sharded concurrent set monitored at the method level, with the
/// [`builtin::set`] commutativity specification.
///
/// `add` and `remove` return whether they changed membership — the "shadow
/// return values" that make the commutativity conditions expressible
/// (§4.1).
pub struct MonitoredSet {
    obj: ObjId,
    shards: Vec<Mutex<HashSet<Value>>>,
    size: AtomicI64,
    inner: Arc<Inner>,
}

impl MonitoredSet {
    /// Creates an empty monitored set registered with the runtime's
    /// analysis.
    pub fn new(rt: &Runtime) -> Arc<MonitoredSet> {
        let obj = rt.fresh_obj();
        rt.analysis().on_new_object(obj, &set_methods().spec);
        Arc::new(MonitoredSet {
            obj,
            shards: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
            size: AtomicI64::new(0),
            inner: Arc::clone(&rt.inner),
        })
    }

    /// The set's object identifier in the event stream.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// This set's commutativity specification.
    pub fn spec() -> &'static Spec {
        &set_methods().spec
    }

    fn shard(&self, x: &Value) -> &Mutex<HashSet<Value>> {
        let mut h = DefaultHasher::new();
        x.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn emit(&self, ctx: &ThreadCtx, method: MethodId, args: Vec<Value>, ret: Value) {
        self.inner
            .emit_action(ctx.tid(), &Action::new(self.obj, method, args, ret));
    }

    /// Inserts `x`; returns `true` iff it was newly added.
    pub fn add(&self, ctx: &ThreadCtx, x: Value) -> bool {
        let mut shard = self.shard(&x).lock();
        let fresh = shard.insert(x.clone());
        if fresh {
            self.size.fetch_add(1, Ordering::Relaxed);
        }
        self.emit(ctx, set_methods().add, vec![x], Value::Bool(fresh));
        fresh
    }

    /// Removes `x`; returns `true` iff it was present.
    pub fn remove(&self, ctx: &ThreadCtx, x: Value) -> bool {
        let mut shard = self.shard(&x).lock();
        let hit = shard.remove(&x);
        if hit {
            self.size.fetch_sub(1, Ordering::Relaxed);
        }
        self.emit(ctx, set_methods().remove, vec![x], Value::Bool(hit));
        hit
    }

    /// Is `x` a member?
    pub fn contains(&self, ctx: &ThreadCtx, x: Value) -> bool {
        let shard = self.shard(&x).lock();
        let hit = shard.contains(&x);
        self.emit(ctx, set_methods().contains, vec![x], Value::Bool(hit));
        hit
    }

    /// Number of members.
    pub fn size(&self, ctx: &ThreadCtx) -> i64 {
        let n = self.size.load(Ordering::Relaxed);
        self.emit(ctx, set_methods().size, vec![], Value::Int(n));
        n
    }

    /// Unmonitored size, for assertions (emits no event).
    pub fn len_untracked(&self) -> i64 {
        self.size.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn add_remove_contains_semantics() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let ctx = rt.main_ctx();
        let s = MonitoredSet::new(&rt);
        assert!(s.add(&ctx, Value::Int(1)));
        assert!(!s.add(&ctx, Value::Int(1)));
        assert!(s.contains(&ctx, Value::Int(1)));
        assert_eq!(s.size(&ctx), 1);
        assert!(s.remove(&ctx, Value::Int(1)));
        assert!(!s.remove(&ctx, Value::Int(1)));
        assert_eq!(s.size(&ctx), 0);
    }

    #[test]
    fn duplicate_adds_race_fresh_vs_duplicate() {
        // Two threads add the same element: one add is fresh, the other a
        // duplicate — they do not commute (b1/b2 differ across orders), so
        // RD2 must flag it.
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let s = MonitoredSet::new(&rt);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let s = s.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                s.add(ctx, Value::Int(42));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(rd2.report().total() >= 1, "{:?}", rd2.report());
    }

    #[test]
    fn disjoint_adds_do_not_race() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let s = MonitoredSet::new(&rt);
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let s = s.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                for i in 0..50 {
                    s.add(ctx, Value::Int(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
        assert_eq!(s.len_untracked(), 200);
    }
}
