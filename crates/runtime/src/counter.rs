//! The monitored shared counter.

use crate::runtime::{Inner, Runtime, ThreadCtx};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{builtin, Spec};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

struct CounterMethods {
    spec: Spec,
    inc: MethodId,
    dec: MethodId,
    read: MethodId,
}

fn counter_methods() -> &'static CounterMethods {
    static CELL: OnceLock<CounterMethods> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::counter();
        CounterMethods {
            inc: spec.method_id("inc").expect("builtin"),
            dec: spec.method_id("dec").expect("builtin"),
            read: spec.method_id("read").expect("builtin"),
            spec,
        }
    })
}

/// An atomic counter monitored at the method level, with the
/// [`builtin::counter`] specification.
///
/// The canonical demonstration that commutativity conflicts are coarser
/// than read-write conflicts: concurrent `inc`/`inc` commute (no race),
/// while a low-level detector sees two writes to the same word; and
/// `inc`/`read` is a commutativity race even though the counter itself is
/// perfectly thread-safe.
pub struct MonitoredCounter {
    obj: ObjId,
    value: AtomicI64,
    inner: Arc<Inner>,
}

impl MonitoredCounter {
    /// Creates a zeroed counter registered with the runtime's analysis.
    pub fn new(rt: &Runtime) -> Arc<MonitoredCounter> {
        let obj = rt.fresh_obj();
        rt.analysis().on_new_object(obj, &counter_methods().spec);
        Arc::new(MonitoredCounter {
            obj,
            value: AtomicI64::new(0),
            inner: Arc::clone(&rt.inner),
        })
    }

    /// The counter's object identifier in the event stream.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// This counter's commutativity specification.
    pub fn spec() -> &'static Spec {
        &counter_methods().spec
    }

    fn emit(&self, ctx: &ThreadCtx, method: MethodId, ret: Value) {
        self.inner
            .emit_action(ctx.tid(), &Action::new(self.obj, method, vec![], ret));
    }

    /// Atomically increments the counter.
    pub fn inc(&self, ctx: &ThreadCtx) {
        self.value.fetch_add(1, Ordering::Relaxed);
        self.emit(ctx, counter_methods().inc, Value::Nil);
    }

    /// Atomically decrements the counter.
    pub fn dec(&self, ctx: &ThreadCtx) {
        self.value.fetch_sub(1, Ordering::Relaxed);
        self.emit(ctx, counter_methods().dec, Value::Nil);
    }

    /// Reads the current value.
    pub fn read(&self, ctx: &ThreadCtx) -> i64 {
        let v = self.value.load(Ordering::Relaxed);
        self.emit(ctx, counter_methods().read, Value::Int(v));
        v
    }

    /// Unmonitored read, for assertions (emits no event).
    pub fn value_untracked(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_model::Analysis;

    #[test]
    fn concurrent_increments_commute() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let c = MonitoredCounter::new(&rt);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                for _ in 0..100 {
                    c.inc(ctx);
                }
                for _ in 0..25 {
                    c.dec(ctx);
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert_eq!(c.value_untracked(), 4 * 75);
        // inc/inc and inc/dec commute: no commutativity races.
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
    }

    #[test]
    fn concurrent_read_races_with_increment() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let c = MonitoredCounter::new(&rt);
        let c2 = c.clone();
        let h = rt.spawn(&main, move |ctx| {
            c2.inc(ctx);
        });
        c.read(&main);
        h.join(&main).unwrap();
        assert!(rd2.report().total() >= 1, "{:?}", rd2.report());
    }

    #[test]
    fn ordered_read_after_join_is_quiet() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let c = MonitoredCounter::new(&rt);
        let c2 = c.clone();
        let h = rt.spawn(&main, move |ctx| c2.inc(ctx));
        h.join(&main).unwrap();
        assert_eq!(c.read(&main), 1);
        assert!(rd2.report().is_empty());
    }
}
