//! The [`ObjectRegistry`] trait: analyses that can be told about new
//! monitored objects.

use crace_core::{Direct, ParallelRd2, Rd2, TraceDetector};
use crace_fasttrack::FastTrack;
use crace_model::{Analysis, Isolated, NoopAnalysis, ObjId, Observer, Recorder};
use crace_spec::Spec;

/// An [`Analysis`] that monitored objects can register themselves with.
///
/// When a [`crate::MonitoredDict`] (or set, counter, …) is created, the
/// runtime calls [`ObjectRegistry::on_new_object`] with the object's id and
/// its commutativity specification. Detectors that track the library
/// interface (RD2, the direct detector) compile/store the specification;
/// low-level and no-op analyses ignore it.
///
/// # Panics
///
/// The RD2 implementations panic if the specification is outside ECL —
/// monitored objects ship ECL specifications, so this indicates misuse.
pub trait ObjectRegistry: Analysis {
    /// Called when a monitored object is created.
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        let _ = (obj, spec);
    }
}

impl ObjectRegistry for NoopAnalysis {}

impl ObjectRegistry for Recorder {}

impl ObjectRegistry for FastTrack {}

impl ObjectRegistry for Rd2 {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        self.register_spec(obj, spec)
            .expect("monitored objects use ECL specifications");
    }
}

impl ObjectRegistry for ParallelRd2 {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        self.register_spec(obj, spec)
            .expect("monitored objects use ECL specifications");
    }
}

impl ObjectRegistry for TraceDetector {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        self.register_spec(obj, spec)
            .expect("monitored objects use ECL specifications");
    }
}

impl ObjectRegistry for Direct {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        self.register(obj, std::sync::Arc::new(spec.clone()));
    }
}

/// Registration goes through to the wrapped analysis unguarded: it runs
/// at object-construction time on a healthy analysis, and a panic there
/// is misuse (a non-ECL specification), not a runtime fault.
impl<A: ObjectRegistry> ObjectRegistry for Isolated<A> {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        self.inner().on_new_object(obj, spec);
    }
}

impl<A: ObjectRegistry> ObjectRegistry for Observer<A> {
    fn on_new_object(&self, obj: ObjId, spec: &Spec) {
        self.inner().on_new_object(obj, spec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_impl_is_a_noop() {
        let noop = NoopAnalysis::new();
        noop.on_new_object(ObjId(1), &crace_spec::builtin::dictionary());
        assert!(noop.report().is_empty());
    }

    #[test]
    fn all_detectors_are_registries() {
        fn assert_registry<T: ObjectRegistry>(_: &T) {}
        assert_registry(&NoopAnalysis::new());
        assert_registry(&FastTrack::new());
        assert_registry(&Rd2::new());
        assert_registry(&ParallelRd2::new(2));
        assert_registry(&TraceDetector::new());
        assert_registry(&Direct::new());
    }
}
