//! The fault plane: deterministic, seeded fault injection for chaos runs.
//!
//! A [`FaultPlan`] maps *global event indices* to [`Fault`]s. The index
//! counts every analysis dispatch slot the runtime (or the simulator)
//! would perform, in emission order, so the same plan replayed against
//! the same schedule fires at exactly the same points — chaos runs are
//! replayable by construction.
//!
//! Three fault kinds cover the failure modes the degradation contract
//! (DESIGN.md) speaks about:
//!
//! * [`Fault::PanicThread`] — the thread delivering the event panics
//!   instead; inside a monitored object this means dying while holding a
//!   shard lock, between a `TrackedMutex` acquire and release it means a
//!   poisoned-lock scenario,
//! * [`Fault::Drop`] — the analysis dispatch is silently lost (a shed
//!   event), modelling an overloaded or lossy telemetry channel. Only
//!   data-plane dispatches (actions, reads, writes) are sheddable;
//!   synchronization events always deliver, because a lost
//!   happens-before edge would make detectors report races the program
//!   cannot have — a drop planned on a sync slot is suppressed,
//! * [`Fault::Delay`] — the dispatch is delayed by a bounded number of
//!   microseconds, modelling a slow analysis without losing the event.
//!
//! A [`FaultInjector`] owns a plan plus the monotone event cursor and the
//! degradation counters; it is the object the runtime consults once per
//! dispatch slot.

use crace_model::Analysis;
use crace_obs::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The thread delivering the event panics instead of delivering it.
    PanicThread,
    /// The dispatch is dropped: the event never reaches the analysis.
    Drop,
    /// The dispatch is delayed by this many microseconds, then delivered.
    Delay(u64),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PanicThread => write!(f, "panic"),
            Fault::Drop => write!(f, "drop"),
            Fault::Delay(us) => write!(f, "delay:{us}"),
        }
    }
}

/// A deterministic schedule of faults, keyed by global event index.
///
/// # Examples
///
/// ```
/// use crace_runtime::fault::{Fault, FaultPlan};
///
/// let plan = FaultPlan::new().with(5, Fault::PanicThread).with(9, Fault::Drop);
/// assert_eq!(plan.get(5), Some(Fault::PanicThread));
/// assert_eq!(plan.first_index(), Some(5));
/// assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault at event index `at` (replacing any fault already
    /// planned there) and returns the plan, builder-style.
    pub fn with(mut self, at: u64, fault: Fault) -> FaultPlan {
        self.faults.insert(at, fault);
        self
    }

    /// Draws `count` faults at distinct indices in `0..horizon` from a
    /// seeded RNG. Same `(seed, horizon, count)` → same plan, always.
    pub fn seeded(seed: u64, horizon: u64, count: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if horizon == 0 {
            return plan;
        }
        let mut attempts = 0;
        while plan.faults.len() < count && attempts < count * 16 {
            attempts += 1;
            let at = rng.gen_range(0..horizon);
            let fault = match rng.gen_range(0u32..3) {
                0 => Fault::PanicThread,
                1 => Fault::Drop,
                _ => Fault::Delay(rng.gen_range(1..500)),
            };
            plan.faults.entry(at).or_insert(fault);
        }
        plan
    }

    /// Parses the textual form produced by [`FaultPlan::render`]:
    /// comma-separated `panic@IDX`, `drop@IDX`, `delay@IDX:MICROS`
    /// entries (an empty string is the empty plan).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed entry.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for entry in text.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault `{entry}`: expected `<kind>@<index>`"))?;
            let fault = match kind {
                "panic" => Fault::PanicThread,
                "drop" => Fault::Drop,
                "delay" => {
                    let (_, us) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("fault `{entry}`: expected `delay@IDX:MICROS`"))?;
                    Fault::Delay(
                        us.parse()
                            .map_err(|_| format!("fault `{entry}`: bad delay `{us}`"))?,
                    )
                }
                other => return Err(format!("fault `{entry}`: unknown kind `{other}`")),
            };
            let idx = rest.split(':').next().unwrap_or(rest);
            let at: u64 = idx
                .parse()
                .map_err(|_| format!("fault `{entry}`: bad index `{idx}`"))?;
            plan.faults.insert(at, fault);
        }
        Ok(plan)
    }

    /// Renders the plan in the form [`FaultPlan::parse`] accepts.
    pub fn render(&self) -> String {
        self.faults
            .iter()
            .map(|(at, fault)| match fault {
                Fault::Delay(us) => format!("delay@{at}:{us}"),
                other => format!("{other}@{at}"),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The fault planned at event index `at`, if any.
    pub fn get(&self, at: u64) -> Option<Fault> {
        self.faults.get(&at).copied()
    }

    /// The smallest event index with a planned fault.
    pub fn first_index(&self) -> Option<u64> {
        self.faults.keys().next().copied()
    }

    /// True iff no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Iterates over `(index, fault)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Fault)> + '_ {
        self.faults.iter().map(|(&at, &f)| (at, f))
    }
}

/// Degradation counters accumulated while a plan executes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Thread panics injected.
    pub panics_injected: u64,
    /// Dispatches dropped before reaching the analysis.
    pub events_dropped: u64,
    /// Dispatches delayed (then delivered).
    pub events_delayed: u64,
}

/// Executes a [`FaultPlan`] against a live event stream: one
/// [`FaultInjector::next`] call per dispatch slot advances the global
/// event cursor and says what (if anything) to inject there.
///
/// Shared by reference between all instrumented threads; the cursor is a
/// single atomic, so indices are allocated exactly once across threads.
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: AtomicU64,
    panics: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
}

impl FaultInjector {
    /// Arms `plan` with the cursor at event index 0.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            cursor: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Claims the next dispatch slot: returns its global index and the
    /// fault to inject there, if any. The caller records the outcome via
    /// [`FaultInjector::record_panic`] / [`record_drop`](FaultInjector::record_drop)
    /// / [`record_delay`](FaultInjector::record_delay).
    pub fn next(&self) -> (u64, Option<Fault>) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed);
        (at, self.plan.get(at))
    }

    /// Number of dispatch slots claimed so far.
    pub fn events_seen(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records an injected thread panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dropped dispatch.
    pub fn record_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delayed dispatch.
    pub fn record_delay(&self) {
        self.delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the degradation counters.
    pub fn degradation(&self) -> Degradation {
        Degradation {
            panics_injected: self.panics.load(Ordering::Relaxed),
            events_dropped: self.dropped.load(Ordering::Relaxed),
            events_delayed: self.delayed.load(Ordering::Relaxed),
        }
    }

    /// Exports the degradation counters into `registry` as
    /// `fault.panics_injected`, `fault.events_dropped`,
    /// `fault.events_delayed` (idempotent: feeding twice does not
    /// double-count).
    pub fn feed(&self, registry: &Registry) {
        let d = self.degradation();
        for (name, now) in [
            ("fault.panics_injected", d.panics_injected),
            ("fault.events_dropped", d.events_dropped),
            ("fault.events_delayed", d.events_delayed),
        ] {
            let counter = registry.counter(name);
            let cur = counter.get();
            if now > cur {
                counter.add(now - cur);
            }
        }
    }
}

/// An [`Analysis`] wrapper that executes a [`FaultPlan`] on the dispatch
/// path: every delivered event claims one injector slot, and the planned
/// fault (if any) fires *inside* the dispatch.
///
/// This is how a service layer (the `crace-daemon` session dispatcher)
/// chaos-tests its own degradation ladder: wrap the session detector as
/// `Isolated<FaultedAnalysis<D>>` and an injected [`Fault::PanicThread`]
/// panics in exactly the place a detector bug would, so the surrounding
/// [`Isolated`](crace_model::Isolated) must quarantine and fail open.
///
/// The shed discipline matches the runtime's: [`Fault::Drop`] planned on
/// a synchronization slot is suppressed (the event still delivers),
/// because losing a happens-before edge could *invent* races, which the
/// degradation contract forbids. Drops on data-plane slots (actions,
/// reads, writes) skip delivery and are counted. [`Fault::Delay`] sleeps
/// for the planned microseconds, then delivers.
pub struct FaultedAnalysis<A: Analysis> {
    inner: A,
    injector: std::sync::Arc<FaultInjector>,
}

impl<A: Analysis> FaultedAnalysis<A> {
    /// Wraps `inner`, consulting `injector` once per delivered event.
    pub fn new(inner: A, injector: std::sync::Arc<FaultInjector>) -> FaultedAnalysis<A> {
        FaultedAnalysis { inner, injector }
    }

    /// The injector this wrapper consults (for degradation counters).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The wrapped analysis.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Claims the next slot and executes its fault. Returns `false` iff
    /// the dispatch was shed (data-plane drop).
    ///
    /// # Panics
    ///
    /// Panics when the slot holds [`Fault::PanicThread`] — by design; the
    /// caller is expected to sit inside a panic-isolation boundary.
    fn gate(&self, sync: bool) -> bool {
        let (at, fault) = self.injector.next();
        match fault {
            None => true,
            Some(Fault::PanicThread) => {
                self.injector.record_panic();
                panic!("injected analysis panic at dispatch slot {at}");
            }
            Some(Fault::Drop) => {
                if sync {
                    true // never shed a happens-before edge
                } else {
                    self.injector.record_drop();
                    false
                }
            }
            Some(Fault::Delay(us)) => {
                self.injector.record_delay();
                std::thread::sleep(std::time::Duration::from_micros(us));
                true
            }
        }
    }
}

impl<A: Analysis> Analysis for FaultedAnalysis<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_fork(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        if self.gate(true) {
            self.inner.on_fork(parent, child);
        }
    }

    fn on_join(&self, parent: crace_model::ThreadId, child: crace_model::ThreadId) {
        if self.gate(true) {
            self.inner.on_join(parent, child);
        }
    }

    fn on_acquire(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        if self.gate(true) {
            self.inner.on_acquire(tid, lock);
        }
    }

    fn on_release(&self, tid: crace_model::ThreadId, lock: crace_model::LockId) {
        if self.gate(true) {
            self.inner.on_release(tid, lock);
        }
    }

    fn on_action(&self, tid: crace_model::ThreadId, action: &crace_model::Action) {
        if self.gate(false) {
            self.inner.on_action(tid, action);
        }
    }

    fn on_read(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        if self.gate(false) {
            self.inner.on_read(tid, loc);
        }
    }

    fn on_write(&self, tid: crace_model::ThreadId, loc: crace_model::LocId) {
        if self.gate(false) {
            self.inner.on_write(tid, loc);
        }
    }

    fn abandon_thread(&self, tid: crace_model::ThreadId) {
        // Control-plane: not a dispatch slot, always delivered.
        self.inner.abandon_thread(tid);
    }

    fn report(&self) -> crace_model::RaceReport {
        self.inner.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_parse_render_round_trip() {
        let plan = FaultPlan::new()
            .with(5, Fault::PanicThread)
            .with(9, Fault::Drop)
            .with(12, Fault::Delay(250));
        assert_eq!(plan.render(), "panic@5,drop@9,delay@12:250");
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
        assert_eq!(plan.first_index(), Some(5));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in ["panic", "panic@x", "delay@3", "delay@3:x", "fizz@1"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(42, 100, 5);
        let b = FaultPlan::seeded(42, 100, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|(at, _)| at < 100));
        // A different seed gives a different plan (overwhelmingly likely
        // for this index space; pinned seeds keep it deterministic).
        assert_ne!(a, FaultPlan::seeded(43, 100, 5));
        assert!(FaultPlan::seeded(7, 0, 5).is_empty());
    }

    #[test]
    fn injector_fires_exactly_at_planned_indices() {
        let plan = FaultPlan::new().with(2, Fault::Drop);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.next(), (0, None));
        assert_eq!(inj.next(), (1, None));
        assert_eq!(inj.next(), (2, Some(Fault::Drop)));
        assert_eq!(inj.next(), (3, None));
        assert_eq!(inj.events_seen(), 4);
    }

    #[test]
    fn faulted_analysis_sheds_data_plane_only_and_panics_on_cue() {
        use crace_model::{Recorder, ThreadId};
        use std::sync::Arc;

        // Slots: 0 fork (sync), 1 read (data), 2 read (data), 3 rel (sync).
        let plan = FaultPlan::new()
            .with(0, Fault::Drop)
            .with(1, Fault::Drop)
            .with(2, Fault::Delay(1));
        let inj = Arc::new(FaultInjector::new(plan));
        let wrapped = FaultedAnalysis::new(Recorder::new(), Arc::clone(&inj));
        wrapped.on_fork(ThreadId(0), ThreadId(1));
        wrapped.on_read(ThreadId(1), crace_model::LocId(7));
        wrapped.on_read(ThreadId(1), crace_model::LocId(8));
        wrapped.on_release(ThreadId(1), crace_model::LockId(0));
        // The sync drop was suppressed, the data drop shed, the delay
        // delivered: 3 of 4 events reach the recorder.
        assert_eq!(wrapped.inner().snapshot().len(), 3);
        assert_eq!(
            inj.degradation(),
            Degradation {
                panics_injected: 0,
                events_dropped: 1,
                events_delayed: 1,
            }
        );

        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new().with(0, Fault::PanicThread),
        ));
        let wrapped = FaultedAnalysis::new(Recorder::new(), Arc::clone(&inj));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wrapped.on_fork(ThreadId(0), ThreadId(1));
        }))
        .is_err();
        std::panic::set_hook(prev);
        assert!(died, "planned panic must fire inside the dispatch");
        assert_eq!(inj.degradation().panics_injected, 1);
    }

    #[test]
    fn degradation_counters_feed_idempotently() {
        let inj = FaultInjector::new(FaultPlan::new());
        inj.record_panic();
        inj.record_drop();
        inj.record_drop();
        inj.record_delay();
        assert_eq!(
            inj.degradation(),
            Degradation {
                panics_injected: 1,
                events_dropped: 2,
                events_delayed: 1,
            }
        );
        let registry = Registry::new();
        inj.feed(&registry);
        inj.feed(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("fault.events_dropped"),
            Some(&crace_obs::MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get("fault.panics_injected"),
            Some(&crace_obs::MetricValue::Counter(1))
        );
    }
}
