//! Tracked application variables — the plain fields RoadRunner shadows.

use crate::runtime::{Inner, Runtime, ThreadCtx};
use crace_model::LocId;
use parking_lot::Mutex;
use std::sync::Arc;

/// A shared *application* variable whose accesses are reported to the
/// analysis as low-level shadow reads/writes ([`crace_model::Event::Read`]
/// / [`crace_model::Event::Write`]).
///
/// This models the ordinary, possibly-unsynchronized fields of the
/// evaluated applications: a real racy Java field is represented by a
/// `TrackedCell` accessed without a [`crate::TrackedMutex`] — the
/// implementation stays well-defined (a real lock guards the value), but
/// the *model* access pattern delivered to the analysis is unsynchronized,
/// so FastTrack reports the data race exactly as it would on the real
/// program.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use crace_fasttrack::FastTrack;
/// use crace_model::Analysis;
/// use crace_runtime::{Runtime, TrackedCell};
///
/// let ft = Arc::new(FastTrack::new());
/// let rt = Runtime::new(ft.clone());
/// let main = rt.main_ctx();
/// let cell = TrackedCell::new(&rt, 0i64);
/// let c2 = cell.clone();
/// let h = rt.spawn(&main, move |ctx| { c2.write(ctx, 1); });
/// cell.write(&main, 2); // unordered with the child's write
/// h.join(&main).unwrap();
/// assert_eq!(ft.report().total(), 1);
/// ```
pub struct TrackedCell<T> {
    loc: LocId,
    value: Mutex<T>,
    inner: Arc<Inner>,
}

impl<T: Clone + Send> TrackedCell<T> {
    /// Creates a tracked variable with an initial value.
    pub fn new(rt: &Runtime, initial: T) -> Arc<TrackedCell<T>> {
        Arc::new(TrackedCell {
            loc: rt.fresh_loc(),
            value: Mutex::new(initial),
            inner: Arc::clone(&rt.inner),
        })
    }

    /// The variable's shadow location.
    pub fn loc(&self) -> LocId {
        self.loc
    }

    /// Reads the value (reports a shadow read).
    pub fn read(&self, ctx: &ThreadCtx) -> T {
        let v = self.value.lock().clone();
        self.inner.emit_read(ctx.tid(), self.loc);
        v
    }

    /// Writes the value (reports a shadow write).
    pub fn write(&self, ctx: &ThreadCtx, v: T) {
        *self.value.lock() = v;
        self.inner.emit_write(ctx.tid(), self.loc);
    }

    /// Read-modify-write (reports a shadow read *and* write — the classic
    /// check-then-act shape).
    pub fn update(&self, ctx: &ThreadCtx, f: impl FnOnce(&T) -> T) {
        let mut guard = self.value.lock();
        let next = f(&guard);
        *guard = next;
        drop(guard);
        self.inner.emit_read(ctx.tid(), self.loc);
        self.inner.emit_write(ctx.tid(), self.loc);
    }

    /// Unmonitored read, for assertions (emits no event).
    pub fn get_untracked(&self) -> T {
        self.value.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn value_semantics() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let ctx = rt.main_ctx();
        let cell = TrackedCell::new(&rt, 10i64);
        assert_eq!(cell.read(&ctx), 10);
        cell.write(&ctx, 20);
        assert_eq!(cell.read(&ctx), 20);
        cell.update(&ctx, |v| v + 5);
        assert_eq!(cell.get_untracked(), 25);
    }

    #[test]
    fn lock_protected_updates_are_race_free() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let cell = TrackedCell::new(&rt, 0i64);
        let mutex = Arc::new(rt.new_mutex());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let mutex = Arc::clone(&mutex);
            handles.push(rt.spawn(&main, move |ctx| {
                for _ in 0..50 {
                    let _g = mutex.lock(ctx);
                    cell.update(ctx, |v| v + 1);
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert_eq!(cell.get_untracked(), 200);
        assert!(ft.report().is_empty(), "{:?}", ft.report());
    }

    #[test]
    fn unprotected_updates_race() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let cell = TrackedCell::new(&rt, 0i64);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cell = cell.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                cell.update(ctx, |v| v + 1);
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        let report = ft.report();
        assert!(report.total() >= 1, "{report:?}");
        assert_eq!(report.distinct(), 1);
    }
}
