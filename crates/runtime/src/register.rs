//! The monitored atomic register.

use crate::runtime::{Inner, Runtime, ThreadCtx};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{builtin, Spec};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

struct RegisterMethods {
    spec: Spec,
    read: MethodId,
    write: MethodId,
}

fn register_methods() -> &'static RegisterMethods {
    static CELL: OnceLock<RegisterMethods> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::register();
        RegisterMethods {
            read: spec.method_id("read").expect("builtin"),
            write: spec.method_id("write").expect("builtin"),
            spec,
        }
    })
}

/// An atomic register monitored at the method level, with the
/// [`builtin::register`] specification — the strictest builtin: only
/// read/read commutes, so any concurrent use involving a write races.
pub struct MonitoredRegister {
    obj: ObjId,
    value: Mutex<Value>,
    inner: Arc<Inner>,
}

impl MonitoredRegister {
    /// Creates a register holding `nil`, registered with the runtime's
    /// analysis.
    pub fn new(rt: &Runtime) -> Arc<MonitoredRegister> {
        let obj = rt.fresh_obj();
        rt.analysis().on_new_object(obj, &register_methods().spec);
        Arc::new(MonitoredRegister {
            obj,
            value: Mutex::new(Value::Nil),
            inner: Arc::clone(&rt.inner),
        })
    }

    /// The register's object identifier in the event stream.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// This register's commutativity specification.
    pub fn spec() -> &'static Spec {
        &register_methods().spec
    }

    fn emit(&self, ctx: &ThreadCtx, method: MethodId, args: Vec<Value>, ret: Value) {
        self.inner
            .emit_action(ctx.tid(), &Action::new(self.obj, method, args, ret));
    }

    /// Reads the current value.
    pub fn read(&self, ctx: &ThreadCtx) -> Value {
        let guard = self.value.lock();
        let v = guard.clone();
        self.emit(ctx, register_methods().read, vec![], v.clone());
        v
    }

    /// Writes a new value.
    pub fn write(&self, ctx: &ThreadCtx, v: Value) {
        let mut guard = self.value.lock();
        *guard = v.clone();
        self.emit(ctx, register_methods().write, vec![v], Value::Nil);
    }

    /// Unmonitored read, for assertions (emits no event).
    pub fn get_untracked(&self) -> Value {
        self.value.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn read_write_semantics() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let ctx = rt.main_ctx();
        let r = MonitoredRegister::new(&rt);
        assert_eq!(r.read(&ctx), Value::Nil);
        r.write(&ctx, Value::Int(42));
        assert_eq!(r.read(&ctx), Value::Int(42));
        assert_eq!(r.get_untracked(), Value::Int(42));
    }

    #[test]
    fn concurrent_writes_race_even_with_equal_values() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let r = MonitoredRegister::new(&rt);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let r = r.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                r.write(ctx, Value::Int(7));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        // write/write is `false` in the spec (ECL cannot say "commute when
        // values are equal" — that is a cross-action equality).
        assert!(rd2.report().total() >= 1);
    }

    #[test]
    fn concurrent_reads_commute() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let r = MonitoredRegister::new(&rt);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = r.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                for _ in 0..50 {
                    r.read(ctx);
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(rd2.report().is_empty());
    }
}
