//! Systematic schedule exploration: a DPOR-lite model checker for
//! [`SimProgram`]s.
//!
//! Random seeds ([`crate::sim::simulate`]) *sample* the schedule space;
//! [`explore`] *enumerates* it. A depth-first search forks the
//! [`SimState`] at every scheduling decision and walks every maximal
//! interleaving, pruned by two classic techniques:
//!
//! * **Sleep sets** (Flanagan–Godefroid's DPOR family): after exploring
//!   thread `t` from a node, `t` is put to sleep for the node's remaining
//!   children and stays asleep down a branch until some *dependent*
//!   operation executes. Two operations are independent iff their
//!   access-point footprints cannot collide — the same
//!   `⟨Xₒ, ηₒ, Cₒ⟩` representation (§4.2) the detector itself uses, so
//!   the equivalence classes the explorer prunes are exactly the
//!   commutativity classes the paper's theory is built on. Sleep sets
//!   keep at least one representative of every Mazurkiewicz trace, so
//!   every reachable *final state* (and every race) is still visited.
//! * **Preemption bounding** (CHESS): optionally limit the number of
//!   context switches away from a still-runnable thread. Unlike sleep
//!   sets this is an under-approximation, but small bounds find most
//!   bugs and give shrinking its notion of a "simplest" schedule.
//!
//! On every explored schedule the detector invariants are asserted:
//! Algorithm 1 must agree with the quadratic oracle (Theorem 5.1), and
//! if *no* schedule races, every schedule of a lock-free (pure
//! fork/join) program must end in the same dictionary state
//! (Theorem 5.2; with locks, race freedom only bounds nondeterminism to
//! the critical-section acquisition order). A violation of either is a
//! detector bug, reported as [`Violation`] with a replayable witness.
//!
//! When a race is found, [`shrink`] delta-debugs the program (drop
//! threads, then single ops) and then minimizes the schedule (smallest
//! preemption bound that still races), yielding a minimal replayable
//! counterexample.
//!
//! # Examples
//!
//! ```
//! use crace_model::Value;
//! use crace_runtime::explore::{explore, ExploreConfig};
//! use crace_runtime::sim::{SimOp, SimProgram};
//!
//! // Two unordered puts of the same key: the Fig. 3 race, scripted.
//! let put = |v| SimOp::DictPut { dict: 0, key: Value::Int(1), value: Value::Int(v) };
//! let program = SimProgram {
//!     num_dicts: 1,
//!     num_locks: 0,
//!     threads: vec![vec![put(10)], vec![put(20)]],
//! };
//! let report = explore(&program, &ExploreConfig::default());
//! assert!(report.race.is_some());          // found without any seed
//! assert_eq!(report.stats.schedules_explored, 2); // both orders race
//! ```

use crate::sim::{sim_dict_methods, sim_dict_obj, SimOp, SimProgram, SimState};
use crace_core::oracle::find_races;
use crace_core::{translate, ClassId, CompiledSpec, TraceDetector};
use crace_model::{replay, Event, MethodId, ObjId, ThreadId, Trace, Value};
use crace_obs::Registry;
use crace_spec::{builtin, Spec};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Bounds and switches for [`explore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Sleep-set pruning on/off. Off means brute-force enumeration of
    /// every interleaving — the reference the soundness tests compare
    /// against.
    pub dpor: bool,
    /// Stop after this many maximal schedules (`0` = unlimited). When the
    /// cap is hit [`ExploreStats::truncated`] is set and the
    /// determinism invariant is not judged (coverage was partial).
    pub max_schedules: u64,
    /// CHESS-style preemption bound: maximum number of context switches
    /// away from a still-runnable thread per schedule. `None` = no bound.
    pub max_preemptions: Option<u32>,
    /// Check Theorem 5.1 (detector ≡ oracle, per schedule) and
    /// Theorem 5.2 (race freedom ⇒ determinism, across schedules).
    pub check_invariants: bool,
    /// Stop the search at the first racy schedule (used by shrinking).
    pub stop_on_race: bool,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            dpor: true,
            max_schedules: 100_000,
            max_preemptions: None,
            check_invariants: true,
            stop_on_race: false,
        }
    }
}

/// Counters describing one exploration, mirrored into a
/// [`crace_obs::Registry`] by [`ExploreStats::feed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Maximal schedules executed to completion (or deadlock).
    pub schedules_explored: u64,
    /// Subtrees cut because every runnable thread was asleep — each is a
    /// schedule prefix whose continuations are all equivalent to an
    /// already-explored interleaving.
    pub schedules_pruned: u64,
    /// Branches cut by the preemption bound.
    pub schedules_bounded: u64,
    /// Schedules that ended in a deadlock (all unfinished threads
    /// blocked); counted in `schedules_explored`, excluded from the
    /// invariant checks.
    pub deadlocks: u64,
    /// Simulator steps executed (states visited by the DFS).
    pub states_visited: u64,
    /// Completed schedules on which the detector reported ≥ 1 race.
    pub racy_schedules: u64,
    /// Distinct final dictionary states over completed schedules.
    pub distinct_final_states: u64,
    /// Candidate executions tried while shrinking (0 when not shrinking).
    pub shrink_iterations: u64,
    /// Did the search hit `max_schedules` before finishing?
    pub truncated: bool,
}

impl ExploreStats {
    /// Mirrors the counters into `registry` under `explore.*`, the names
    /// the `crace explore --metrics` surface reports.
    pub fn feed(&self, registry: &Registry) {
        registry
            .counter("explore.schedules.explored")
            .add(self.schedules_explored);
        registry
            .counter("explore.schedules.pruned")
            .add(self.schedules_pruned);
        registry
            .counter("explore.schedules.bounded")
            .add(self.schedules_bounded);
        registry
            .counter("explore.schedules.racy")
            .add(self.racy_schedules);
        registry.counter("explore.deadlocks").add(self.deadlocks);
        registry
            .counter("explore.states.visited")
            .add(self.states_visited);
        registry
            .counter("explore.shrink.iterations")
            .add(self.shrink_iterations);
        registry
            .gauge("explore.final_states")
            .set(self.distinct_final_states as f64);
        registry
            .gauge("explore.truncated")
            .set(u64::from(self.truncated) as f64);
    }
}

/// A replayable counterexample: the schedule (thread picked at each
/// step), the trace it produces, and how many races the detector
/// reported on it.
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// Thread index chosen at each scheduling decision — feed to
    /// [`crate::sim::ScriptedScheduler`] to reproduce the run exactly.
    pub schedule: Vec<usize>,
    /// The recorded trace of that schedule.
    pub trace: Trace,
    /// Detector race count on the trace.
    pub races: u64,
}

/// A detector-invariant violation found by exploration — by Theorems 5.1
/// and 5.2 these indicate a bug in the detector (or the simulator), never
/// in the explored program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Algorithm 1 and the quadratic oracle disagree on one schedule
    /// (Theorem 5.1 exactness).
    DetectorOracleMismatch {
        /// Races reported by [`TraceDetector`].
        detector_races: u64,
        /// Racing pairs found by [`find_races`].
        oracle_pairs: usize,
    },
    /// No explored schedule raced, yet two schedules ended in different
    /// dictionary states (Theorem 5.2 determinism). Only checked for
    /// lock-free (pure fork/join) programs: critical sections may
    /// legitimately run in either acquisition order, so with locks race
    /// freedom bounds nondeterminism to that order instead of
    /// eliminating it.
    NondeterministicRaceFree,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DetectorOracleMismatch {
                detector_races,
                oracle_pairs,
            } => write!(
                f,
                "Theorem 5.1 violated: detector reports {detector_races} race(s) \
                 but the oracle finds {oracle_pairs} racing pair(s)"
            ),
            Violation::NondeterministicRaceFree => write!(
                f,
                "Theorem 5.2 violated: no schedule races, \
                 yet final dictionary states differ"
            ),
        }
    }
}

/// A canonical (ordered) rendering of the final dictionary contents,
/// comparable across schedules.
pub type FinalState = Vec<BTreeMap<Value, Value>>;

/// Everything [`explore`] found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Search counters.
    pub stats: ExploreStats,
    /// The first racy schedule in DFS order, if any.
    pub race: Option<Witness>,
    /// An invariant violation with its witness schedule, if any.
    pub violation: Option<(Violation, Witness)>,
    /// Every distinct final dictionary state over completed schedules,
    /// with an example schedule reaching it.
    pub final_states: BTreeMap<FinalState, Vec<usize>>,
}

/// How one access point of a statically known op constrains the point's
/// slot value: `ds` points carry none, argument slots are known before
/// execution, return-value slots could be anything.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SlotVal {
    Ds,
    Known(Value),
    Any,
}

impl SlotVal {
    /// Could two concrete points of conflicting classes with these value
    /// constraints collide? Mirrors [`CompiledSpec::actions_conflict`]'s
    /// `y.value == x.value` on `Option<Value>`: `ds` points (value
    /// `None`) only ever collide with other `ds` points.
    fn may_equal(&self, other: &SlotVal) -> bool {
        match (self, other) {
            (SlotVal::Ds, SlotVal::Ds) => true,
            (SlotVal::Ds, _) | (_, SlotVal::Ds) => false,
            (SlotVal::Known(a), SlotVal::Known(b)) => a == b,
            _ => true, // Any matches any concrete value
        }
    }
}

/// The static may-touch footprint of one [`SimOp`]: which shared
/// resource, and (for dictionary ops) which access points with what value
/// constraints, over *all* possible β vectors — a sound over-approximation
/// of the points the op will actually touch.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Footprint {
    LockOp(usize),
    DictOp {
        dict: usize,
        points: Vec<(ClassId, SlotVal)>,
    },
}

fn footprint(op: &SimOp, compiled: &CompiledSpec) -> Footprint {
    let (put, get, size) = sim_dict_methods();
    let (dict, method, args): (usize, MethodId, Vec<&Value>) = match op {
        SimOp::Lock(l) | SimOp::Unlock(l) => return Footprint::LockOp(*l),
        SimOp::DictPut { dict, key, value } => (*dict, put, vec![key, value]),
        SimOp::DictGet { dict, key } => (*dict, get, vec![key]),
        SimOp::DictSize { dict } => (*dict, size, vec![]),
    };
    let points = compiled
        .method_touch_universe(method)
        .into_iter()
        .map(|(class, slot)| {
            let val = match slot {
                None => SlotVal::Ds,
                // Slot indices follow Action::slots: arguments first,
                // then the return value (unknown before execution).
                Some(i) => match args.get(i) {
                    Some(v) => SlotVal::Known((*v).clone()),
                    None => SlotVal::Any,
                },
            };
            (class, val)
        })
        .collect();
    Footprint::DictOp { dict, points }
}

/// May the two ops fail to commute in *some* state? Dependence relation
/// of the partial-order reduction: over-approximating it only costs
/// pruning, never soundness.
fn may_conflict(a: &Footprint, b: &Footprint, compiled: &CompiledSpec) -> bool {
    match (a, b) {
        // Operations on the same lock never commute (acquire order is
        // observable through blocking); different locks are independent.
        (Footprint::LockOp(l1), Footprint::LockOp(l2)) => l1 == l2,
        (Footprint::LockOp(_), Footprint::DictOp { .. })
        | (Footprint::DictOp { .. }, Footprint::LockOp(_)) => false,
        (
            Footprint::DictOp {
                dict: d1,
                points: p1,
            },
            Footprint::DictOp {
                dict: d2,
                points: p2,
            },
        ) => {
            if d1 != d2 {
                return false; // different objects always commute
            }
            p1.iter().any(|(c1, v1)| {
                compiled
                    .conflicting(*c1)
                    .iter()
                    .any(|c2| p2.iter().any(|(c, v2)| c == c2 && v1.may_equal(v2)))
            })
        }
    }
}

struct Explorer<'p> {
    program: &'p SimProgram,
    cfg: &'p ExploreConfig,
    compiled: Arc<CompiledSpec>,
    oracle_specs: HashMap<ObjId, Spec>,
    footprints: Vec<Vec<Footprint>>,
    stats: ExploreStats,
    final_states: BTreeMap<FinalState, Vec<usize>>,
    race: Option<Witness>,
    violation: Option<(Violation, Witness)>,
    schedule: Vec<usize>,
    events: Vec<Event>,
    done: bool,
    /// Lane + phase for per-schedule spans; `None` when untraced.
    trace: Option<(Arc<crace_obs::Lane>, crace_obs::PhaseId)>,
}

impl<'p> Explorer<'p> {
    fn new(program: &'p SimProgram, cfg: &'p ExploreConfig) -> Explorer<'p> {
        let spec = builtin::dictionary();
        let compiled = Arc::new(translate(&spec).expect("builtin dictionary translates"));
        let oracle_specs = (0..program.num_dicts)
            .map(|d| (sim_dict_obj(d), spec.clone()))
            .collect();
        let footprints = program
            .threads
            .iter()
            .map(|script| script.iter().map(|op| footprint(op, &compiled)).collect())
            .collect();
        Explorer {
            program,
            cfg,
            compiled,
            oracle_specs,
            footprints,
            stats: ExploreStats::default(),
            final_states: BTreeMap::new(),
            race: None,
            violation: None,
            schedule: Vec::new(),
            events: Vec::new(),
            done: false,
            trace: None,
        }
    }

    /// The full trace of the current path: fork prologue, recorded
    /// events, join epilogue.
    fn build_trace(&self) -> Trace {
        let main = ThreadId(0);
        let n = self.program.threads.len();
        let mut trace = Trace::new();
        for t in 0..n {
            trace.push(Event::Fork {
                parent: main,
                child: ThreadId(t as u32 + 1),
            });
        }
        trace.extend(self.events.iter().cloned());
        for t in 0..n {
            trace.push(Event::Join {
                parent: main,
                child: ThreadId(t as u32 + 1),
            });
        }
        trace
    }

    fn detect(&self, trace: &Trace) -> u64 {
        let detector = TraceDetector::new();
        for d in 0..self.program.num_dicts {
            detector.register(sim_dict_obj(d), Arc::clone(&self.compiled));
        }
        replay(trace, &detector).total()
    }

    fn witness(&self, trace: Trace, races: u64) -> Witness {
        Witness {
            schedule: self.schedule.clone(),
            trace,
            races,
        }
    }

    fn budget_spent(&mut self) {
        if self.cfg.max_schedules != 0 && self.stats.schedules_explored >= self.cfg.max_schedules {
            self.stats.truncated = true;
            self.done = true;
        }
    }

    fn on_terminal(&mut self, state: &SimState<'_>) {
        self.stats.schedules_explored += 1;
        let mut span = self.trace.as_ref().map(|(lane, phase)| lane.span(*phase));
        let trace = self.build_trace();
        let races = self.detect(&trace);
        if let Some(span) = span.as_mut() {
            span.set_aux(races);
        }
        if self.cfg.check_invariants {
            let pairs = find_races(&trace, &self.oracle_specs);
            if (races > 0) == pairs.is_empty() {
                let v = Violation::DetectorOracleMismatch {
                    detector_races: races,
                    oracle_pairs: pairs.len(),
                };
                self.violation = Some((v, self.witness(trace, races)));
                self.done = true;
                return;
            }
        }
        let key: FinalState = state
            .dicts()
            .iter()
            .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .collect();
        self.final_states
            .entry(key)
            .or_insert_with(|| self.schedule.clone());
        if races > 0 {
            self.stats.racy_schedules += 1;
            if self.race.is_none() {
                self.race = Some(self.witness(trace, races));
            }
            if self.cfg.stop_on_race {
                self.done = true;
                return;
            }
        }
        self.budget_spent();
    }

    fn dfs(&mut self, state: &SimState<'p>, sleep: u64, last: Option<usize>, preemptions: u32) {
        if self.done {
            return;
        }
        let runnable = state.runnable();
        if runnable.is_empty() {
            if state.finished() {
                self.on_terminal(state);
            } else {
                self.stats.schedules_explored += 1;
                self.stats.deadlocks += 1;
                self.budget_spent();
            }
            return;
        }
        // Prefer continuing the last thread (fewest context switches
        // first — DFS then finds low-preemption witnesses early), then
        // ascending thread order for determinism.
        let mut order = runnable.clone();
        if let Some(l) = last {
            if let Some(pos) = order.iter().position(|&t| t == l) {
                order.remove(pos);
                order.insert(0, l);
            }
        }
        if self.cfg.dpor && order.iter().all(|&t| (sleep >> t) & 1 == 1) {
            // Every runnable thread is asleep: every continuation is
            // equivalent to an already-explored interleaving.
            self.stats.schedules_pruned += 1;
            return;
        }
        let mut sleep = sleep;
        for &t in &order {
            if self.done {
                return;
            }
            if self.cfg.dpor && (sleep >> t) & 1 == 1 {
                continue;
            }
            let mut p = preemptions;
            if let (Some(l), Some(bound)) = (last, self.cfg.max_preemptions) {
                if l != t && runnable.contains(&l) {
                    p += 1;
                    if p > bound {
                        self.stats.schedules_bounded += 1;
                        continue;
                    }
                }
            }
            let fp = &self.footprints[t][state.pc(t)];
            // Wake every sleeping thread whose next op depends on `fp`.
            let mut child_sleep = 0u64;
            if self.cfg.dpor {
                for u in 0..self.program.threads.len() {
                    if (sleep >> u) & 1 == 1
                        && u != t
                        && !may_conflict(fp, &self.footprints[u][state.pc(u)], &self.compiled)
                    {
                        child_sleep |= 1 << u;
                    }
                }
            }
            let mut child = state.clone();
            let event = child.step(t);
            self.stats.states_visited += 1;
            self.schedule.push(t);
            self.events.push(event);
            self.dfs(&child, child_sleep, Some(t), p);
            self.schedule.pop();
            self.events.pop();
            if self.cfg.dpor {
                sleep |= 1 << t;
            }
        }
    }
}

/// Explores every schedule of `program` up to the configured bounds,
/// checking the detector invariants on each, and returns what was found.
///
/// Deterministic: equal programs and configs produce equal reports — no
/// seed anywhere.
///
/// # Panics
///
/// Panics on script errors (dictionary/lock indices out of range,
/// unlocking a lock the thread does not hold) and on programs with more
/// than 64 threads.
pub fn explore(program: &SimProgram, cfg: &ExploreConfig) -> ExploreReport {
    explore_traced(program, cfg, None)
}

/// [`explore`] with an optional span tracer: each completed schedule
/// records one `explore.schedule` span on the `explore` lane (`aux` =
/// races found on that schedule), timing the per-schedule detect +
/// invariant check. `None` is exactly [`explore`].
///
/// # Panics
///
/// As [`explore`].
pub fn explore_traced(
    program: &SimProgram,
    cfg: &ExploreConfig,
    tracer: Option<&crace_obs::Tracer>,
) -> ExploreReport {
    assert!(
        program.threads.len() <= 64,
        "explorer supports at most 64 threads"
    );
    let mut explorer = Explorer::new(program, cfg);
    explorer.trace = tracer.map(|t| (t.lane("explore"), t.phase("explore.schedule")));
    let initial = SimState::new(program);
    explorer.dfs(&initial, 0, None, 0);
    explorer.stats.distinct_final_states = explorer.final_states.len() as u64;
    // Theorem 5.2, across schedules: only judged on full coverage
    // (bounding and truncation leave schedules unseen; sleep sets do
    // not — they preserve every reachable final state). Lock-using
    // programs are exempt: critical sections serialize conflicting ops
    // (so no race is reported) yet may run in either acquisition order,
    // and race freedom only bounds the nondeterminism to that order —
    // the theorem's guarantee is for pure fork/join programs.
    let full_coverage =
        !explorer.stats.truncated && explorer.stats.schedules_bounded == 0 && !cfg.stop_on_race;
    let uses_locks = program
        .threads
        .iter()
        .flatten()
        .any(|op| matches!(op, SimOp::Lock(_) | SimOp::Unlock(_)));
    if cfg.check_invariants
        && explorer.violation.is_none()
        && full_coverage
        && !uses_locks
        && explorer.race.is_none()
        && explorer.final_states.len() > 1
    {
        let schedule = explorer
            .final_states
            .values()
            .nth(1)
            .expect("len > 1")
            .clone();
        let (trace, _) = crate::sim::simulate_with_scheduler(
            program,
            &mut crate::sim::ScriptedScheduler::new(schedule.clone()),
        );
        explorer.violation = Some((
            Violation::NondeterministicRaceFree,
            Witness {
                schedule,
                trace,
                races: 0,
            },
        ));
    }
    ExploreReport {
        stats: explorer.stats,
        race: explorer.race,
        violation: explorer.violation,
        final_states: explorer.final_states,
    }
}

/// The result of [`shrink`]: a minimal racy program with a replayable
/// minimal-schedule witness.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The reduced program — removing any further op loses the race.
    pub program: SimProgram,
    /// A racy schedule of the reduced program with the smallest
    /// preemption count the search found.
    pub witness: Witness,
    /// Candidate executions tried (delta-debugging steps plus schedule
    /// minimization rounds).
    pub iterations: u64,
}

/// Does `program` race under some schedule? Cheap check for shrinking:
/// DPOR on, invariants off, stop at the first race.
fn first_race(program: &SimProgram, cfg: &ExploreConfig) -> Option<Witness> {
    let probe = ExploreConfig {
        dpor: true,
        check_invariants: false,
        stop_on_race: true,
        max_preemptions: None,
        ..cfg.clone()
    };
    explore(program, &probe).race
}

/// Shrinks a racy `program` to a minimal counterexample: greedily drops
/// whole threads, then single operations (re-exploring after each
/// candidate removal to confirm the race survives), trims unused
/// dictionaries/locks, and finally searches for a racy schedule under
/// the smallest preemption bound. Returns `None` if `program` does not
/// race under any schedule within `cfg`'s budget.
///
/// The returned witness replays exactly: feed
/// [`Shrunk`]`.witness.schedule` to a
/// [`crate::sim::ScriptedScheduler`] or replay the recorded trace into
/// any detector.
pub fn shrink(program: &SimProgram, cfg: &ExploreConfig) -> Option<Shrunk> {
    let mut iterations = 0u64;
    let try_race = |p: &SimProgram, iterations: &mut u64| -> Option<Witness> {
        *iterations += 1;
        first_race(p, cfg)
    };
    try_race(program, &mut iterations)?;
    let mut current = program.clone();
    // Pass 1: delta-debug at thread granularity, then single ops, until
    // a fixpoint — every removal must preserve *some* racy schedule.
    loop {
        let mut reduced = false;
        let mut i = current.threads.len();
        while i > 0 && current.threads.len() > 2 {
            i -= 1;
            let mut cand = current.clone();
            cand.threads.remove(i);
            if try_race(&cand, &mut iterations).is_some() {
                current = cand;
                reduced = true;
            }
        }
        for t in 0..current.threads.len() {
            let mut j = current.threads[t].len();
            while j > 0 {
                j -= 1;
                let mut cand = current.clone();
                cand.threads[t].remove(j);
                if try_race(&cand, &mut iterations).is_some() {
                    current = cand;
                    reduced = true;
                }
            }
        }
        if !reduced {
            break;
        }
    }
    // Idle threads only add fork/join noise to the counterexample.
    current.threads.retain(|script| !script.is_empty());
    current.num_dicts = current
        .threads
        .iter()
        .flatten()
        .filter_map(|op| match op {
            SimOp::DictPut { dict, .. }
            | SimOp::DictGet { dict, .. }
            | SimOp::DictSize { dict } => Some(*dict + 1),
            _ => None,
        })
        .max()
        .expect("a racy program performs dictionary actions");
    current.num_locks = current
        .threads
        .iter()
        .flatten()
        .filter_map(|op| match op {
            SimOp::Lock(l) | SimOp::Unlock(l) => Some(*l + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    // Pass 2: minimal schedule — the smallest preemption bound that
    // still exhibits the race (CHESS's "simplest interleaving").
    let mut witness = None;
    for bound in 0..=8u32 {
        iterations += 1;
        let probe = ExploreConfig {
            dpor: true,
            check_invariants: false,
            stop_on_race: true,
            max_preemptions: Some(bound),
            ..cfg.clone()
        };
        if let Some(w) = explore(&current, &probe).race {
            witness = Some(w);
            break;
        }
    }
    let witness = match witness {
        Some(w) => w,
        None => try_race(&current, &mut iterations)?, // bound 8 exceeded: fall back
    };
    Some(Shrunk {
        program: current,
        witness,
        iterations,
    })
}

/// Replays a chaos run exactly: `choices` is the
/// [`ChaosOutcome::schedule`](crate::sim::ChaosOutcome::schedule) a
/// previous [`simulate_with_faults`](crate::sim::simulate_with_faults)
/// recorded, and `plan` the fault plan it ran under. Returns the same
/// delivered trace and outcome bit-for-bit — the chaos analogue of
/// replaying a [`Witness`] schedule.
///
/// # Panics
///
/// Panics if `choices` does not match the program's runnable sets under
/// `plan` (a schedule recorded from a different program or plan).
pub fn replay_with_faults(
    program: &SimProgram,
    choices: &[usize],
    plan: &crate::fault::FaultPlan,
) -> (Trace, crate::sim::ChaosOutcome) {
    let mut scheduler = crate::sim::ScriptedScheduler::new(choices.to_vec());
    let (trace, outcome) =
        crate::sim::simulate_faulty_with_scheduler(program, &mut scheduler, plan);
    assert_eq!(
        scheduler.consumed(),
        choices.len(),
        "chaos replay did not consume the whole schedule"
    );
    (trace, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_with_scheduler, ScriptedScheduler};

    fn put(k: i64, v: i64) -> SimOp {
        SimOp::DictPut {
            dict: 0,
            key: Value::Int(k),
            value: Value::Int(v),
        }
    }

    fn get(k: i64) -> SimOp {
        SimOp::DictGet {
            dict: 0,
            key: Value::Int(k),
        }
    }

    fn dict_program(threads: Vec<Vec<SimOp>>, num_locks: usize) -> SimProgram {
        SimProgram {
            num_dicts: 1,
            num_locks,
            threads,
        }
    }

    #[test]
    fn finds_the_fig3_race_without_a_seed() {
        let program = dict_program(vec![vec![put(1, 10)], vec![put(1, 20)]], 0);
        let report = explore(&program, &ExploreConfig::default());
        let race = report.race.expect("both orders race");
        assert_eq!(report.stats.schedules_explored, 2);
        assert_eq!(report.stats.racy_schedules, 2);
        assert!(race.races >= 1);
        assert!(report.violation.is_none());
    }

    #[test]
    fn dpor_prunes_commuting_interleavings() {
        // Threads on disjoint keys: all 6 interleavings are equivalent.
        let program = dict_program(vec![vec![put(1, 1)], vec![put(2, 2)], vec![put(3, 3)]], 0);
        let brute = explore(
            &program,
            &ExploreConfig {
                dpor: false,
                ..ExploreConfig::default()
            },
        );
        let dpor = explore(&program, &ExploreConfig::default());
        assert_eq!(brute.stats.schedules_explored, 6);
        assert!(
            dpor.stats.schedules_explored < 6,
            "dpor explored {}",
            dpor.stats.schedules_explored
        );
        assert_eq!(dpor.final_states, brute.final_states);
        assert!(dpor.race.is_none() && brute.race.is_none());
    }

    #[test]
    fn racefree_locked_program_is_deterministic_and_clean() {
        let rmw = || vec![SimOp::Lock(0), get(1), put(1, 9), SimOp::Unlock(0)];
        let program = dict_program(vec![rmw(), rmw()], 1);
        let report = explore(&program, &ExploreConfig::default());
        assert!(report.race.is_none());
        assert!(report.violation.is_none());
        assert_eq!(report.stats.distinct_final_states, 1);
        assert_eq!(report.stats.deadlocks, 0);
    }

    #[test]
    fn deadlocks_are_counted_not_fatal() {
        // Classic lock-order inversion: AB vs BA.
        let t1 = vec![
            SimOp::Lock(0),
            SimOp::Lock(1),
            SimOp::Unlock(1),
            SimOp::Unlock(0),
        ];
        let t2 = vec![
            SimOp::Lock(1),
            SimOp::Lock(0),
            SimOp::Unlock(0),
            SimOp::Unlock(1),
        ];
        let program = SimProgram {
            num_dicts: 0,
            num_locks: 2,
            threads: vec![t1, t2],
        };
        let report = explore(&program, &ExploreConfig::default());
        assert!(report.stats.deadlocks > 0);
        assert!(report.violation.is_none());
    }

    #[test]
    fn preemption_bound_zero_explores_only_non_preemptive_schedules() {
        let program = dict_program(vec![vec![put(1, 1), get(1)], vec![put(2, 2), get(2)]], 0);
        let report = explore(
            &program,
            &ExploreConfig {
                dpor: false,
                max_preemptions: Some(0),
                check_invariants: false,
                ..ExploreConfig::default()
            },
        );
        // Without preemptions only the two serial orders survive.
        assert_eq!(report.stats.schedules_explored, 2);
        assert!(report.stats.schedules_bounded > 0);
    }

    #[test]
    fn max_schedules_truncates() {
        let program = dict_program(
            vec![vec![put(1, 1), put(1, 2)], vec![put(1, 3), put(1, 4)]],
            0,
        );
        let report = explore(
            &program,
            &ExploreConfig {
                dpor: false,
                max_schedules: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(report.stats.truncated);
        assert_eq!(report.stats.schedules_explored, 2);
    }

    #[test]
    fn shrink_reduces_to_the_racing_pair() {
        // Two racing puts buried under commuting noise.
        let program = dict_program(
            vec![
                vec![put(7, 1), get(2), put(1, 10)],
                vec![put(1, 20), get(3)],
                vec![put(5, 5), get(5)],
            ],
            0,
        );
        let shrunk = shrink(&program, &ExploreConfig::default()).expect("program races");
        assert_eq!(shrunk.program.num_ops(), 2, "{:?}", shrunk.program);
        assert_eq!(shrunk.program.threads.len(), 2);
        assert!(shrunk.iterations > 0);
        // The witness replays to the recorded trace, bit for bit.
        let (replayed, _) = simulate_with_scheduler(
            &shrunk.program,
            &mut ScriptedScheduler::new(shrunk.witness.schedule.clone()),
        );
        assert_eq!(replayed, shrunk.witness.trace);
        assert!(shrunk.witness.races >= 1);
    }

    #[test]
    fn shrink_returns_none_on_race_free_programs() {
        let program = dict_program(vec![vec![put(1, 1)], vec![put(2, 2)]], 0);
        assert!(shrink(&program, &ExploreConfig::default()).is_none());
    }

    #[test]
    fn stats_feed_into_a_registry() {
        use crace_obs::MetricValue;
        let program = dict_program(vec![vec![put(1, 1)], vec![put(1, 2)]], 0);
        let report = explore(&program, &ExploreConfig::default());
        let registry = Registry::new();
        report.stats.feed(&registry);
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("explore.schedules.explored"),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get("explore.schedules.racy"),
            Some(&MetricValue::Counter(2))
        );
    }
}
