//! The instrumented runtime: thread and lock tracking.

use crate::registry::ObjectRegistry;
use crace_model::{LocId, LockId, ObjId, ThreadId};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared interior of a [`Runtime`].
pub(crate) struct Inner {
    pub(crate) analysis: Arc<dyn ObjectRegistry>,
    next_tid: AtomicU32,
    next_obj: AtomicU64,
    next_lock: AtomicU64,
    next_loc: AtomicU64,
}

/// An instrumented runtime bound to one analysis.
///
/// All identifier allocation (threads, objects, locks, shadow locations)
/// goes through the runtime, so every entity a workload creates is known to
/// the attached analysis.
///
/// `Runtime` is cheap to clone (it is a handle to shared state).
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<Inner>,
}

impl Runtime {
    /// Creates a runtime whose events feed `analysis`. The main thread gets
    /// [`ThreadId::MAIN`].
    pub fn new(analysis: Arc<dyn ObjectRegistry>) -> Runtime {
        Runtime {
            inner: Arc::new(Inner {
                analysis,
                next_tid: AtomicU32::new(1), // 0 is the main thread
                next_obj: AtomicU64::new(1),
                next_lock: AtomicU64::new(1),
                next_loc: AtomicU64::new(1),
            }),
        }
    }

    /// The context of the main thread.
    pub fn main_ctx(&self) -> ThreadCtx {
        ThreadCtx {
            tid: ThreadId::MAIN,
            inner: Arc::clone(&self.inner),
        }
    }

    /// The attached analysis.
    pub fn analysis(&self) -> &Arc<dyn ObjectRegistry> {
        &self.inner.analysis
    }

    /// Allocates a fresh object identifier (used by monitored objects).
    pub(crate) fn fresh_obj(&self) -> ObjId {
        ObjId(self.inner.next_obj.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a fresh lock identifier.
    pub(crate) fn fresh_lock(&self) -> LockId {
        LockId(self.inner.next_lock.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a fresh shadow-memory location.
    pub(crate) fn fresh_loc(&self) -> LocId {
        LocId(self.inner.next_loc.fetch_add(1, Ordering::Relaxed))
    }

    /// Spawns an instrumented thread: emits the fork event (before the
    /// child can run), then runs `f` on a new OS thread with the child's
    /// [`ThreadCtx`].
    pub fn spawn<F>(&self, parent: &ThreadCtx, f: F) -> TrackedJoinHandle
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        let child = ThreadId(self.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        // The fork event must be processed before any child event; calling
        // it before `thread::spawn` guarantees that order in real time.
        self.inner.analysis.on_fork(parent.tid, child);
        let ctx = ThreadCtx {
            tid: child,
            inner: Arc::clone(&self.inner),
        };
        let handle = std::thread::spawn(move || f(&ctx));
        TrackedJoinHandle { handle, child }
    }

    /// Creates an instrumented mutex.
    pub fn new_mutex(&self) -> TrackedMutex {
        TrackedMutex {
            id: self.fresh_lock(),
            mutex: Mutex::new(()),
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The identity of a running instrumented thread. Passed explicitly to
/// every instrumented operation (the runtime does not use thread-locals, so
/// contexts can also drive scripted single-threaded tests).
#[derive(Clone)]
pub struct ThreadCtx {
    tid: ThreadId,
    pub(crate) inner: Arc<Inner>,
}

impl ThreadCtx {
    /// This thread's identifier.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

/// Join handle for an instrumented thread.
pub struct TrackedJoinHandle {
    handle: JoinHandle<()>,
    child: ThreadId,
}

impl TrackedJoinHandle {
    /// Waits for the thread and emits the join event (after the child has
    /// finished, so every child event precedes it).
    ///
    /// # Panics
    ///
    /// Propagates a panic from the joined thread.
    pub fn join(self, parent: &ThreadCtx) {
        self.handle.join().expect("instrumented thread panicked");
        parent.inner.analysis.on_join(parent.tid, self.child);
    }

    /// The spawned thread's identifier.
    pub fn child_tid(&self) -> ThreadId {
        self.child
    }
}

/// An instrumented mutex: the real lock plus acquire/release events emitted
/// *while the lock is held*, so the analysis sees critical sections in
/// their true serialization order.
pub struct TrackedMutex {
    id: LockId,
    mutex: Mutex<()>,
    inner: Arc<Inner>,
}

impl TrackedMutex {
    /// Acquires the lock, emitting the acquire event.
    pub fn lock<'a>(&'a self, ctx: &ThreadCtx) -> TrackedMutexGuard<'a> {
        let guard = self.mutex.lock();
        self.inner.analysis.on_acquire(ctx.tid(), self.id);
        TrackedMutexGuard {
            _guard: guard,
            lock_id: self.id,
            tid: ctx.tid(),
            inner: Arc::clone(&self.inner),
        }
    }

    /// The lock's identifier in the event stream.
    pub fn id(&self) -> LockId {
        self.id
    }
}

/// Guard of a [`TrackedMutex`]; emits the release event on drop, before the
/// real unlock.
pub struct TrackedMutexGuard<'a> {
    _guard: MutexGuard<'a, ()>,
    lock_id: LockId,
    tid: ThreadId,
    inner: Arc<Inner>,
}

impl Drop for TrackedMutexGuard<'_> {
    fn drop(&mut self) {
        // Emitted while `_guard` is still held: release precedes the next
        // holder's acquire in analysis order.
        self.inner.analysis.on_release(self.tid, self.lock_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn spawn_allocates_distinct_tids() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let main = rt.main_ctx();
        let h1 = rt.spawn(&main, |_| {});
        let h2 = rt.spawn(&main, |_| {});
        assert_ne!(h1.child_tid(), h2.child_tid());
        assert_ne!(h1.child_tid(), ThreadId::MAIN);
        h1.join(&main);
        h2.join(&main);
    }

    #[test]
    fn fork_join_order_reaches_analysis() {
        // FastTrack as a convenient HB-sensitive analysis: parent writes a
        // location, child writes it too — with fork/join edges there is no
        // race.
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let loc = LocId(42);
        ft.on_write(main.tid(), loc);
        let ft2 = ft.clone();
        let h = rt.spawn(&main, move |ctx| {
            ft2.on_write(ctx.tid(), loc);
        });
        h.join(&main);
        ft.on_write(main.tid(), loc);
        assert!(ft.report().is_empty(), "{:?}", ft.report());
    }

    #[test]
    fn tracked_mutex_creates_happens_before() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let mutex = Arc::new(rt.new_mutex());
        let loc = LocId(7);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ft = ft.clone();
            let mutex = Arc::clone(&mutex);
            handles.push(rt.spawn(&main, move |ctx| {
                for _ in 0..50 {
                    let _g = mutex.lock(ctx);
                    ft.on_write(ctx.tid(), loc);
                    ft.on_read(ctx.tid(), loc);
                }
            }));
        }
        for h in handles {
            h.join(&main);
        }
        assert!(ft.report().is_empty(), "{:?}", ft.report());
    }

    #[test]
    fn unprotected_writes_race_under_fasttrack() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let loc = LocId(9);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let ft = ft.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                ft.on_write(ctx.tid(), loc);
            }));
        }
        for h in handles {
            h.join(&main);
        }
        assert!(ft.report().total() >= 1);
    }

    #[test]
    fn fresh_ids_are_unique() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        assert_ne!(rt.fresh_obj(), rt.fresh_obj());
        assert_ne!(rt.fresh_lock(), rt.fresh_lock());
        assert_ne!(rt.fresh_loc(), rt.fresh_loc());
    }

    #[test]
    #[should_panic(expected = "instrumented thread panicked")]
    fn join_propagates_child_panic() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let main = rt.main_ctx();
        let h = rt.spawn(&main, |_| panic!("boom"));
        h.join(&main);
    }
}
