//! The instrumented runtime: thread and lock tracking.

use crate::fault::{Fault, FaultInjector};
use crate::registry::ObjectRegistry;
use crace_model::{Action, LocId, LockId, ObjId, ThreadId};
use parking_lot::{Mutex, MutexGuard};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared interior of a [`Runtime`].
pub(crate) struct Inner {
    pub(crate) analysis: Arc<dyn ObjectRegistry>,
    /// When armed, every analysis dispatch consults the fault plane.
    faults: Option<Arc<FaultInjector>>,
    next_tid: AtomicU32,
    next_obj: AtomicU64,
    next_lock: AtomicU64,
    next_loc: AtomicU64,
}

impl Inner {
    /// Routes one analysis dispatch through the fault plane.
    ///
    /// Without an injector this is a direct call. With one, the dispatch
    /// claims the next global event index and the planned fault (if any)
    /// fires *here*, on the delivering thread:
    ///
    /// * `PanicThread` panics instead of delivering — the event is not
    ///   part of the delivered prefix. If the thread is already
    ///   unwinding (e.g. the fault lands on the release event a
    ///   [`TrackedMutexGuard`] emits during an earlier injected panic),
    ///   the event is delivered normally instead: a second panic would
    ///   abort the process, which is the one outcome chaos runs must
    ///   never produce.
    /// * `Drop` sheds the dispatch: the analysis never sees the event.
    ///   Only *data-plane* dispatches (actions, reads, writes) are
    ///   sheddable. Synchronization events (fork/join/acquire/release)
    ///   always deliver: losing a happens-before edge would make the
    ///   detector report races the program cannot have — degradation
    ///   must fail toward *fewer* reports, never invented ones (the same
    ///   rule sampling detectors like LiteRace and Pacer follow).
    /// * `Delay` sleeps, then delivers.
    pub(crate) fn dispatch(&self, sheddable: bool, deliver: impl FnOnce(&dyn ObjectRegistry)) {
        let Some(injector) = &self.faults else {
            deliver(&*self.analysis);
            return;
        };
        let (at, fault) = injector.next();
        match fault {
            Some(Fault::PanicThread) if !std::thread::panicking() => {
                injector.record_panic();
                panic!("crace: injected thread panic at event {at}");
            }
            Some(Fault::Drop) if sheddable => injector.record_drop(),
            Some(Fault::Delay(us)) => {
                injector.record_delay();
                std::thread::sleep(std::time::Duration::from_micros(us));
                deliver(&*self.analysis);
            }
            _ => deliver(&*self.analysis),
        }
    }

    pub(crate) fn emit_fork(&self, parent: ThreadId, child: ThreadId) {
        self.dispatch(false, |a| a.on_fork(parent, child));
    }

    pub(crate) fn emit_join(&self, parent: ThreadId, child: ThreadId) {
        self.dispatch(false, |a| a.on_join(parent, child));
    }

    pub(crate) fn emit_acquire(&self, tid: ThreadId, lock: LockId) {
        self.dispatch(false, |a| a.on_acquire(tid, lock));
    }

    pub(crate) fn emit_release(&self, tid: ThreadId, lock: LockId) {
        self.dispatch(false, |a| a.on_release(tid, lock));
    }

    pub(crate) fn emit_action(&self, tid: ThreadId, action: &Action) {
        self.dispatch(true, |a| a.on_action(tid, action));
    }

    pub(crate) fn emit_read(&self, tid: ThreadId, loc: LocId) {
        self.dispatch(true, |a| a.on_read(tid, loc));
    }

    pub(crate) fn emit_write(&self, tid: ThreadId, loc: LocId) {
        self.dispatch(true, |a| a.on_write(tid, loc));
    }
}

/// An instrumented runtime bound to one analysis.
///
/// All identifier allocation (threads, objects, locks, shadow locations)
/// goes through the runtime, so every entity a workload creates is known to
/// the attached analysis.
///
/// `Runtime` is cheap to clone (it is a handle to shared state).
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<Inner>,
}

impl Runtime {
    /// Creates a runtime whose events feed `analysis`. The main thread gets
    /// [`ThreadId::MAIN`].
    pub fn new(analysis: Arc<dyn ObjectRegistry>) -> Runtime {
        Runtime::build(analysis, None)
    }

    /// Creates a runtime whose dispatches additionally consult `injector`
    /// (see [`crate::fault`]): chaos-mode instrumentation, replayable
    /// because the injector's event cursor is deterministic per schedule.
    pub fn with_faults(analysis: Arc<dyn ObjectRegistry>, injector: Arc<FaultInjector>) -> Runtime {
        Runtime::build(analysis, Some(injector))
    }

    fn build(analysis: Arc<dyn ObjectRegistry>, faults: Option<Arc<FaultInjector>>) -> Runtime {
        Runtime {
            inner: Arc::new(Inner {
                analysis,
                faults,
                next_tid: AtomicU32::new(1), // 0 is the main thread
                next_obj: AtomicU64::new(1),
                next_lock: AtomicU64::new(1),
                next_loc: AtomicU64::new(1),
            }),
        }
    }

    /// The context of the main thread.
    pub fn main_ctx(&self) -> ThreadCtx {
        ThreadCtx {
            tid: ThreadId::MAIN,
            inner: Arc::clone(&self.inner),
        }
    }

    /// The attached analysis.
    pub fn analysis(&self) -> &Arc<dyn ObjectRegistry> {
        &self.inner.analysis
    }

    /// Allocates a fresh object identifier (used by monitored objects).
    pub(crate) fn fresh_obj(&self) -> ObjId {
        ObjId(self.inner.next_obj.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a fresh lock identifier.
    pub(crate) fn fresh_lock(&self) -> LockId {
        LockId(self.inner.next_lock.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a fresh shadow-memory location.
    pub(crate) fn fresh_loc(&self) -> LocId {
        LocId(self.inner.next_loc.fetch_add(1, Ordering::Relaxed))
    }

    /// Spawns an instrumented thread: emits the fork event (before the
    /// child can run), then runs `f` on a new OS thread with the child's
    /// [`ThreadCtx`].
    pub fn spawn<F>(&self, parent: &ThreadCtx, f: F) -> TrackedJoinHandle
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        let child = ThreadId(self.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        // The fork event must be processed before any child event; calling
        // it before `thread::spawn` guarantees that order in real time.
        self.inner.emit_fork(parent.tid, child);
        let ctx = ThreadCtx {
            tid: child,
            inner: Arc::clone(&self.inner),
        };
        let handle = std::thread::spawn(move || f(&ctx));
        TrackedJoinHandle { handle, child }
    }

    /// Creates an instrumented mutex.
    pub fn new_mutex(&self) -> TrackedMutex {
        TrackedMutex {
            id: self.fresh_lock(),
            mutex: Mutex::new(()),
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The identity of a running instrumented thread. Passed explicitly to
/// every instrumented operation (the runtime does not use thread-locals, so
/// contexts can also drive scripted single-threaded tests).
#[derive(Clone)]
pub struct ThreadCtx {
    tid: ThreadId,
    pub(crate) inner: Arc<Inner>,
}

impl ThreadCtx {
    /// This thread's identifier.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }
}

/// The error [`TrackedJoinHandle::join`] returns when the joined thread
/// panicked: carries the child's identity and its panic payload, so the
/// caller can rethrow, log, or ignore it — the choice the old
/// `expect("instrumented thread panicked")` took away.
pub struct JoinError {
    tid: ThreadId,
    payload: Box<dyn std::any::Any + Send + 'static>,
}

impl JoinError {
    /// The panicked thread.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The panic message, when the payload was a string (the common
    /// `panic!("…")` case).
    pub fn message(&self) -> Option<&str> {
        self.payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| self.payload.downcast_ref::<String>().map(String::as_str))
    }

    /// Consumes the error, returning the raw panic payload (suitable for
    /// [`std::panic::resume_unwind`]).
    pub fn into_payload(self) -> Box<dyn std::any::Any + Send + 'static> {
        self.payload
    }
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinError")
            .field("tid", &self.tid)
            .field("message", &self.message())
            .finish()
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.message() {
            Some(msg) => write!(f, "instrumented thread {} panicked: {msg}", self.tid),
            None => write!(f, "instrumented thread {} panicked", self.tid),
        }
    }
}

impl std::error::Error for JoinError {}

/// Join handle for an instrumented thread.
pub struct TrackedJoinHandle {
    handle: JoinHandle<()>,
    child: ThreadId,
}

impl TrackedJoinHandle {
    /// Waits for the thread and emits the join event (after the child has
    /// finished, so every child event precedes it).
    ///
    /// # Errors
    ///
    /// If the child panicked, returns a [`JoinError`] carrying its panic
    /// payload. The join event is emitted **in both cases** — the child
    /// is equally finished either way, and the parent must fold in the
    /// clock covering whatever events the child delivered before dying —
    /// and on the error path the analysis is additionally told to
    /// [`abandon`](crace_model::Analysis::abandon_thread) the child, so
    /// its clock is finalized rather than left dangling.
    pub fn join(self, parent: &ThreadCtx) -> Result<(), JoinError> {
        let result = self.handle.join();
        parent.inner.emit_join(parent.tid, self.child);
        match result {
            Ok(()) => Ok(()),
            Err(payload) => {
                // Control-plane notification: not routed through the
                // fault plane (it is not a trace event and must not be
                // droppable), delivered after the join so the clock fold
                // happens first.
                parent.inner.analysis.abandon_thread(self.child);
                Err(JoinError {
                    tid: self.child,
                    payload,
                })
            }
        }
    }

    /// The spawned thread's identifier.
    pub fn child_tid(&self) -> ThreadId {
        self.child
    }
}

/// An instrumented mutex: the real lock plus acquire/release events emitted
/// *while the lock is held*, so the analysis sees critical sections in
/// their true serialization order.
pub struct TrackedMutex {
    id: LockId,
    mutex: Mutex<()>,
    inner: Arc<Inner>,
}

impl TrackedMutex {
    /// Acquires the lock, emitting the acquire event.
    pub fn lock<'a>(&'a self, ctx: &ThreadCtx) -> TrackedMutexGuard<'a> {
        let guard = self.mutex.lock();
        self.inner.emit_acquire(ctx.tid(), self.id);
        TrackedMutexGuard {
            _guard: guard,
            lock_id: self.id,
            tid: ctx.tid(),
            inner: Arc::clone(&self.inner),
        }
    }

    /// The lock's identifier in the event stream.
    pub fn id(&self) -> LockId {
        self.id
    }
}

/// Guard of a [`TrackedMutex`]; emits the release event on drop, before the
/// real unlock.
pub struct TrackedMutexGuard<'a> {
    _guard: MutexGuard<'a, ()>,
    lock_id: LockId,
    tid: ThreadId,
    inner: Arc<Inner>,
}

impl Drop for TrackedMutexGuard<'_> {
    fn drop(&mut self) {
        // Emitted while `_guard` is still held: release precedes the next
        // holder's acquire in analysis order. When an injected panic is
        // unwinding this thread, the dispatch still runs (the fault plane
        // never double-panics in drop) — the lock is released by the
        // unwind, so the analysis must see the release or its lock clock
        // would dangle like a poisoned `std` mutex.
        self.inner.emit_release(self.tid, self.lock_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_fasttrack::FastTrack;
    use crace_model::{Analysis, NoopAnalysis, Value};

    #[test]
    fn spawn_allocates_distinct_tids() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let main = rt.main_ctx();
        let h1 = rt.spawn(&main, |_| {});
        let h2 = rt.spawn(&main, |_| {});
        assert_ne!(h1.child_tid(), h2.child_tid());
        assert_ne!(h1.child_tid(), ThreadId::MAIN);
        h1.join(&main).unwrap();
        h2.join(&main).unwrap();
    }

    #[test]
    fn fork_join_order_reaches_analysis() {
        // FastTrack as a convenient HB-sensitive analysis: parent writes a
        // location, child writes it too — with fork/join edges there is no
        // race.
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let loc = LocId(42);
        ft.on_write(main.tid(), loc);
        let ft2 = ft.clone();
        let h = rt.spawn(&main, move |ctx| {
            ft2.on_write(ctx.tid(), loc);
        });
        h.join(&main).unwrap();
        ft.on_write(main.tid(), loc);
        assert!(ft.report().is_empty(), "{:?}", ft.report());
    }

    #[test]
    fn tracked_mutex_creates_happens_before() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let mutex = Arc::new(rt.new_mutex());
        let loc = LocId(7);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ft = ft.clone();
            let mutex = Arc::clone(&mutex);
            handles.push(rt.spawn(&main, move |ctx| {
                for _ in 0..50 {
                    let _g = mutex.lock(ctx);
                    ft.on_write(ctx.tid(), loc);
                    ft.on_read(ctx.tid(), loc);
                }
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(ft.report().is_empty(), "{:?}", ft.report());
    }

    #[test]
    fn unprotected_writes_race_under_fasttrack() {
        let ft = Arc::new(FastTrack::new());
        let rt = Runtime::new(ft.clone());
        let main = rt.main_ctx();
        let loc = LocId(9);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let ft = ft.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                ft.on_write(ctx.tid(), loc);
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(ft.report().total() >= 1);
    }

    #[test]
    fn fresh_ids_are_unique() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        assert_ne!(rt.fresh_obj(), rt.fresh_obj());
        assert_ne!(rt.fresh_lock(), rt.fresh_lock());
        assert_ne!(rt.fresh_loc(), rt.fresh_loc());
    }

    #[test]
    fn join_returns_child_panic_and_still_emits_join() {
        use crace_model::{Event, Recorder};

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let recorder = Arc::new(Recorder::new());
        let rt = Runtime::new(recorder.clone());
        let main = rt.main_ctx();
        let h = rt.spawn(&main, |_| panic!("boom"));
        let child = h.child_tid();
        let err = h.join(&main).unwrap_err();
        std::panic::set_hook(prev);

        // The panic payload is preserved, not swallowed.
        assert_eq!(err.tid(), child);
        assert_eq!(err.message(), Some("boom"));
        assert!(err.to_string().contains("boom"));
        // The join event was still emitted, so clocks stay consistent.
        let trace = recorder.snapshot();
        assert!(
            trace
                .events()
                .iter()
                .any(|e| matches!(e, Event::Join { child: c, .. } if *c == child)),
            "{trace:?}"
        );
    }

    #[test]
    fn join_after_panic_abandons_child_in_analysis() {
        use crace_core::TraceDetector;

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let detector = Arc::new(TraceDetector::new());
        let rt = Runtime::new(detector.clone());
        let main = rt.main_ctx();
        let h = rt.spawn(&main, |_| panic!("dead"));
        let child = h.child_tid();
        assert!(h.join(&main).is_err());
        std::panic::set_hook(prev);

        // The detector was told to abandon the child: a stray late event
        // naming the dead tid is shed, not processed.
        detector.on_acquire(child, LockId(1));
        assert_eq!(detector.events_shed(), 1);
    }

    #[test]
    fn injected_panic_fault_kills_worker_not_host() {
        use crate::fault::{Fault, FaultInjector, FaultPlan};
        use crace_model::Recorder;

        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Event indices: 0 = fork, 1 = the child's acquire — panic there.
        let plan = FaultPlan::new().with(1, Fault::PanicThread);
        let injector = Arc::new(FaultInjector::new(plan));
        let recorder = Arc::new(Recorder::new());
        let rt = Runtime::with_faults(recorder.clone(), Arc::clone(&injector));
        let main = rt.main_ctx();
        let mutex = Arc::new(rt.new_mutex());
        let m2 = Arc::clone(&mutex);
        let h = rt.spawn(&main, move |ctx| {
            let _g = m2.lock(ctx);
        });
        let err = h.join(&main).unwrap_err();
        std::panic::set_hook(prev);

        assert!(err
            .message()
            .unwrap_or("")
            .contains("injected thread panic"));
        assert_eq!(injector.degradation().panics_injected, 1);
        // The host survived and the lock is usable again (parking_lot
        // does not poison): the panicking child's unwind released it.
        let _g = mutex.lock(&main);
    }

    #[test]
    fn drop_fault_sheds_exactly_one_dispatch() {
        use crate::fault::{Fault, FaultInjector, FaultPlan};
        use crace_model::Recorder;

        // Index 1 is the child's dictionary action — drop it. The fork
        // (0) and join (2) are synchronization events: a drop planned
        // there would be suppressed, never shed.
        let plan = FaultPlan::new().with(1, Fault::Drop);
        let injector = Arc::new(FaultInjector::new(plan));
        let recorder = Arc::new(Recorder::new());
        let rt = Runtime::with_faults(recorder.clone(), Arc::clone(&injector));
        let dict = crate::MonitoredDict::new(&rt);
        let main = rt.main_ctx();
        let h = rt.spawn(&main, {
            let dict = dict.clone();
            move |ctx| {
                dict.put(ctx, Value::Int(1), Value::Int(10));
            }
        });
        h.join(&main).unwrap();
        assert_eq!(injector.degradation().events_dropped, 1);
        let trace = recorder.snapshot();
        assert_eq!(trace.len(), 2, "{trace:?}");
        assert!(matches!(trace.events()[0], crace_model::Event::Fork { .. }));
        assert!(matches!(trace.events()[1], crace_model::Event::Join { .. }));
    }

    #[test]
    fn drop_fault_on_sync_event_is_suppressed() {
        use crate::fault::{Fault, FaultInjector, FaultPlan};
        use crace_model::Recorder;

        // Plan drops on the fork (0) and join (1): both must deliver
        // anyway — shedding a happens-before edge is never allowed.
        let plan = FaultPlan::new().with(0, Fault::Drop).with(1, Fault::Drop);
        let injector = Arc::new(FaultInjector::new(plan));
        let recorder = Arc::new(Recorder::new());
        let rt = Runtime::with_faults(recorder.clone(), Arc::clone(&injector));
        let main = rt.main_ctx();
        let h = rt.spawn(&main, |_| {});
        h.join(&main).unwrap();
        assert_eq!(injector.degradation().events_dropped, 0);
        assert_eq!(recorder.snapshot().len(), 2);
    }
}
