//! The monitored concurrent FIFO queue.

use crate::runtime::{Inner, Runtime, ThreadCtx};
use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{builtin, Spec};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

struct QueueMethods {
    spec: Spec,
    enq: MethodId,
    deq: MethodId,
    len: MethodId,
}

fn queue_methods() -> &'static QueueMethods {
    static CELL: OnceLock<QueueMethods> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = builtin::queue();
        QueueMethods {
            enq: spec.method_id("enq").expect("builtin"),
            deq: spec.method_id("deq").expect("builtin"),
            len: spec.method_id("len").expect("builtin"),
            spec,
        }
    })
}

/// A thread-safe FIFO queue monitored at the method level, with the
/// [`builtin::queue`] specification — the worst case for commutativity:
/// queue operations are order-sensitive, so almost any concurrent use is
/// a race. Useful as a negative control and for demonstrating that a
/// work-queue accessed from a fork/join pipeline (producer strictly
/// before consumers) stays race-free.
pub struct MonitoredQueue {
    obj: ObjId,
    items: Mutex<VecDeque<Value>>,
    inner: Arc<Inner>,
}

impl MonitoredQueue {
    /// Creates an empty queue registered with the runtime's analysis.
    pub fn new(rt: &Runtime) -> Arc<MonitoredQueue> {
        let obj = rt.fresh_obj();
        rt.analysis().on_new_object(obj, &queue_methods().spec);
        Arc::new(MonitoredQueue {
            obj,
            items: Mutex::new(VecDeque::new()),
            inner: Arc::clone(&rt.inner),
        })
    }

    /// The queue's object identifier in the event stream.
    pub fn obj(&self) -> ObjId {
        self.obj
    }

    /// This queue's commutativity specification.
    pub fn spec() -> &'static Spec {
        &queue_methods().spec
    }

    fn emit(&self, ctx: &ThreadCtx, method: MethodId, args: Vec<Value>, ret: Value) {
        self.inner
            .emit_action(ctx.tid(), &Action::new(self.obj, method, args, ret));
    }

    /// Appends `v` to the back.
    pub fn enq(&self, ctx: &ThreadCtx, v: Value) {
        let mut items = self.items.lock();
        items.push_back(v.clone());
        self.emit(ctx, queue_methods().enq, vec![v], Value::Nil);
    }

    /// Removes and returns the front element (`nil` if empty).
    pub fn deq(&self, ctx: &ThreadCtx) -> Value {
        let mut items = self.items.lock();
        let v = items.pop_front().unwrap_or(Value::Nil);
        self.emit(ctx, queue_methods().deq, vec![], v.clone());
        v
    }

    /// Current length.
    pub fn len(&self, ctx: &ThreadCtx) -> i64 {
        let items = self.items.lock();
        let n = items.len() as i64;
        self.emit(ctx, queue_methods().len, vec![], Value::Int(n));
        n
    }

    /// Returns `true` iff the queue is empty (monitored as a `len` call).
    pub fn is_empty(&self, ctx: &ThreadCtx) -> bool {
        self.len(ctx) == 0
    }

    /// Unmonitored length, for assertions (emits no event).
    pub fn len_untracked(&self) -> usize {
        self.items.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_core::Rd2;
    use crace_model::{Analysis, NoopAnalysis};

    #[test]
    fn fifo_semantics() {
        let rt = Runtime::new(Arc::new(NoopAnalysis::new()));
        let ctx = rt.main_ctx();
        let q = MonitoredQueue::new(&rt);
        assert!(q.is_empty(&ctx));
        q.enq(&ctx, Value::Int(1));
        q.enq(&ctx, Value::Int(2));
        assert_eq!(q.len(&ctx), 2);
        assert_eq!(q.deq(&ctx), Value::Int(1));
        assert_eq!(q.deq(&ctx), Value::Int(2));
        assert_eq!(q.deq(&ctx), Value::Nil);
    }

    #[test]
    fn concurrent_enqueues_race() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let q = MonitoredQueue::new(&rt);
        let mut handles = Vec::new();
        for t in 0..2i64 {
            let q = q.clone();
            handles.push(rt.spawn(&main, move |ctx| {
                q.enq(ctx, Value::Int(t));
            }));
        }
        for h in handles {
            h.join(&main).unwrap();
        }
        assert!(rd2.report().total() >= 1);
    }

    #[test]
    fn produce_then_join_then_consume_is_race_free() {
        let rd2 = Arc::new(Rd2::new());
        let rt = Runtime::new(rd2.clone());
        let main = rt.main_ctx();
        let q = MonitoredQueue::new(&rt);
        // Producer thread fills the queue, is joined, then consumers drain
        // sequentially from the main thread.
        let q2 = q.clone();
        let producer = rt.spawn(&main, move |ctx| {
            for i in 0..10 {
                q2.enq(ctx, Value::Int(i));
            }
        });
        producer.join(&main).unwrap();
        while !q.is_empty(&main) {
            q.deq(&main);
        }
        assert!(rd2.report().is_empty(), "{:?}", rd2.report());
    }
}
