//! Pretty-printer ↔ parser round-trip on randomly generated
//! specifications: `Spec::to_source` must produce text that reparses to a
//! *semantically identical* specification (same commutativity verdict on
//! every action pair).

use crace_model::{Action, MethodId, ObjId, Value};
use crace_spec::{parse, CmpOp, Formula, Side, Spec, SpecBuilder, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 3;

fn gen_term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.6) {
        Term::Slot(rng.gen_range(0..SLOTS))
    } else {
        match rng.gen_range(0..4) {
            0 => Term::Const(Value::Nil),
            1 => Term::Const(Value::Bool(rng.gen_bool(0.5))),
            2 => Term::Const(Value::str(["a", "b", "c"][rng.gen_range(0..3)])),
            _ => Term::Const(Value::Int(rng.gen_range(-2..3))),
        }
    }
}

fn gen_lb(rng: &mut StdRng, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.4) {
        let side = if rng.gen_bool(0.5) {
            Side::First
        } else {
            Side::Second
        };
        let op = match rng.gen_range(0..6) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        };
        return Formula::atom(side, op, gen_term(rng), gen_term(rng));
    }
    match rng.gen_range(0..3) {
        0 => gen_lb(rng, depth - 1).not(),
        1 => gen_lb(rng, depth - 1).and(gen_lb(rng, depth - 1)),
        _ => gen_lb(rng, depth - 1).or(gen_lb(rng, depth - 1)),
    }
}

fn gen_ecl(rng: &mut StdRng, depth: usize) -> Formula {
    if depth == 0 {
        return Formula::NeqCross {
            i: rng.gen_range(0..SLOTS),
            j: rng.gen_range(0..SLOTS),
        };
    }
    match rng.gen_range(0..4) {
        0 => Formula::NeqCross {
            i: rng.gen_range(0..SLOTS),
            j: rng.gen_range(0..SLOTS),
        },
        1 => gen_lb(rng, depth),
        2 => gen_ecl(rng, depth - 1).and(gen_ecl(rng, depth - 1)),
        _ => gen_ecl(rng, depth - 1).or(gen_lb(rng, depth - 1)),
    }
}

fn gen_spec(rng: &mut StdRng) -> Option<Spec> {
    let mut b = SpecBuilder::new("roundtrip");
    let m0 = b.method("alpha", SLOTS - 1);
    let m1 = b.method("beta", SLOTS - 1);
    for (x, y) in [(m0.id, m0.id), (m0.id, m1.id), (m1.id, m1.id)] {
        let phi = gen_ecl(rng, 3);
        let phi = if x == y {
            phi.clone().and(phi.swap_sides())
        } else {
            phi
        };
        b.rule(x, y, phi).ok()?;
    }
    b.finish().ok()
}

fn gen_action(rng: &mut StdRng, method: MethodId) -> Action {
    let value = |rng: &mut StdRng| match rng.gen_range(0..5) {
        0 => Value::Nil,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::str(["a", "b", "c"][rng.gen_range(0..3)]),
        _ => Value::Int(rng.gen_range(-2..3)),
    };
    let args = (0..SLOTS - 1).map(|_| value(rng)).collect();
    let ret = value(rng);
    Action::new(ObjId(0), method, args, ret)
}

#[test]
fn random_specs_round_trip_semantically() {
    let mut checked_pairs = 0u32;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(spec) = gen_spec(&mut rng) else {
            continue;
        };
        let source = spec.to_source();
        let reparsed = parse(&source)
            .unwrap_or_else(|e| panic!("seed {seed}: {}\n{source}", e.render(&source)));
        assert_eq!(reparsed.num_methods(), spec.num_methods());
        assert_eq!(reparsed.is_ecl(), spec.is_ecl(), "seed {seed}\n{source}");
        for _ in 0..40 {
            let ma = MethodId(rng.gen_range(0..2));
            let mb = MethodId(rng.gen_range(0..2));
            let a = gen_action(&mut rng, ma);
            let b = gen_action(&mut rng, mb);
            assert_eq!(
                spec.commute(&a, &b),
                reparsed.commute(&a, &b),
                "seed {seed}: a = {a}, b = {b}\n{source}"
            );
            checked_pairs += 1;
        }
    }
    assert!(checked_pairs > 4_000);
}

#[test]
fn builtin_specs_round_trip_semantically() {
    let mut rng = StdRng::seed_from_u64(77);
    for spec in crace_spec::builtin::all() {
        let source = spec.to_source();
        let reparsed = parse(&source).expect("builtins round trip");
        for _ in 0..200 {
            let ma = MethodId(rng.gen_range(0..spec.num_methods() as u32));
            let mb = MethodId(rng.gen_range(0..spec.num_methods() as u32));
            // Build arity-correct random actions.
            let make = |rng: &mut StdRng, m: MethodId| {
                let n = spec.sig(m).num_args();
                let value = |rng: &mut StdRng| match rng.gen_range(0..4) {
                    0 => Value::Nil,
                    1 => Value::Bool(rng.gen_bool(0.5)),
                    _ => Value::Int(rng.gen_range(0..3)),
                };
                let args = (0..n).map(|_| value(rng)).collect();
                let ret = value(rng);
                Action::new(ObjId(0), m, args, ret)
            };
            let (a, b) = {
                let a = make(&mut rng, ma);
                let b = make(&mut rng, mb);
                (a, b)
            };
            assert_eq!(
                spec.commute(&a, &b),
                reparsed.commute(&a, &b),
                "{}: a = {a}, b = {b}",
                spec.name()
            );
        }
    }
}

/// Structural round-trip: `parse(render(s)) == s` — the reparse must
/// rebuild the *same formula trees*, not merely semantically equivalent
/// ones. The property holds on the parser's image (builder-made formulas
/// may contain inexpressible detail, e.g. the side tag of a const-only
/// atom, which the parser constant-folds away), so each generated spec is
/// first projected to canonical form through one parse; on canonical
/// specs render∘parse must be the identity. This is what makes the
/// printer parenthesize right-nested children of the left-associative
/// `&&`/`||`.
#[test]
fn random_specs_round_trip_structurally() {
    let mut checked = 0u32;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(generated) = gen_spec(&mut rng) else {
            continue;
        };
        let canonical = generated.to_source();
        let spec = parse(&canonical)
            .unwrap_or_else(|e| panic!("seed {seed}: {}\n{canonical}", e.render(&canonical)));
        let source = spec.to_source();
        let reparsed = parse(&source)
            .unwrap_or_else(|e| panic!("seed {seed}: {}\n{source}", e.render(&source)));
        for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let (x, y) = (MethodId(x), MethodId(y));
            assert_eq!(
                spec.formula(x, y),
                reparsed.formula(x, y),
                "seed {seed}: pair ({x:?}, {y:?})\n{source}"
            );
            checked += 1;
        }
    }
    assert!(checked > 700);
}

#[test]
fn builtin_specs_round_trip_structurally() {
    for spec in crace_spec::builtin::all() {
        let source = spec.to_source();
        let reparsed = parse(&source).expect("builtins round trip");
        assert_eq!(reparsed.name(), spec.name());
        assert_eq!(reparsed.num_methods(), spec.num_methods());
        for i in 0..spec.num_methods() as u32 {
            assert_eq!(
                reparsed.sig(MethodId(i)).name(),
                spec.sig(MethodId(i)).name()
            );
            for j in 0..spec.num_methods() as u32 {
                let (x, y) = (MethodId(i), MethodId(j));
                assert_eq!(
                    spec.formula(x, y),
                    reparsed.formula(x, y),
                    "{}: pair ({x:?}, {y:?})\n{source}",
                    spec.name()
                );
            }
        }
    }
}
