//! Resolved commutativity formulas, fragment classification (§6.1) and
//! β-substitution (Lemma 6.4).

use crace_model::{MethodSig, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Synthesized source-level variable name for `slot` of the action on
/// `side`: `a0…` / `b0…` for arguments, `ar` / `br` for the return slot.
pub(crate) fn slot_var(side: Side, slot: usize, sig: &MethodSig) -> String {
    let prefix = if side == Side::First { "a" } else { "b" };
    if slot == sig.num_args() {
        format!("{prefix}r")
    } else {
        format!("{prefix}{slot}")
    }
}

/// Which of the two actions a variable belongs to: `V1` (the first action's
/// arguments/returns) or `V2` (the second's).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// Variables drawn from `V1`.
    First,
    /// Variables drawn from `V2`.
    Second,
}

impl Side {
    /// The other side.
    pub fn flip(self) -> Side {
        match self {
            Side::First => Side::Second,
            Side::Second => Side::First,
        }
    }
}

/// Comparison operators available in atomic predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two concrete values. Ordering comparisons
    /// use the total order on [`Value`].
    pub fn apply(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The operator with its arguments swapped (`<` ↦ `>` etc.).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A term inside an atomic predicate: a slot of the action the predicate's
/// side refers to, or a literal constant.
///
/// Slot indices number the action's arguments first, then the return value
/// (the `w⃗ = u⃗v⃗` numbering of §6.2).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// Slot `i` of the owning action.
    Slot(usize),
    /// A literal constant.
    Const(Value),
}

impl Term {
    fn eval<'a>(&'a self, slots: &'a [Value]) -> &'a Value {
        match self {
            Term::Slot(i) => &slots[*i],
            Term::Const(v) => v,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Slot(i) => write!(f, "w{i}"),
            Term::Const(v) => write!(f, "{v}"),
        }
    }
}

/// An atomic `LB` predicate: a comparison whose variables all refer to slots
/// of a *single* action. This is the "normalized" form of §6.2 — the side
/// distinction is erased, so `v1 == p1` and `v2 == p2` are the same
/// [`Pred`].
///
/// # Examples
///
/// ```
/// use crace_model::Value;
/// use crace_spec::{CmpOp, Pred, Term};
///
/// // v == p, for a put(k,v)/p action: slot 1 vs slot 2.
/// let read_like = Pred::new(CmpOp::Eq, Term::Slot(1), Term::Slot(2));
/// let slots = [Value::Int(5), Value::Int(7), Value::Int(7)];
/// assert!(read_like.eval(&slots));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred {
    op: CmpOp,
    lhs: Term,
    rhs: Term,
}

impl Pred {
    /// Creates the predicate `lhs op rhs`, canonicalizing the operand order
    /// for the symmetric operators so that structurally equal predicates
    /// compare equal.
    pub fn new(op: CmpOp, lhs: Term, rhs: Term) -> Pred {
        match op {
            CmpOp::Eq | CmpOp::Ne if rhs < lhs => Pred {
                op,
                lhs: rhs,
                rhs: lhs,
            },
            CmpOp::Gt | CmpOp::Ge => Pred {
                op: op.swap(),
                lhs: rhs,
                rhs: lhs,
            },
            _ => Pred { op, lhs, rhs },
        }
    }

    /// Evaluates the predicate against the slot vector of one action.
    ///
    /// # Panics
    ///
    /// Panics if a slot index is out of range for `slots` (specifications
    /// are resolved against method signatures, so this indicates a
    /// mismatched action).
    pub fn eval(&self, slots: &[Value]) -> bool {
        self.op.apply(self.lhs.eval(slots), self.rhs.eval(slots))
    }

    /// The comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The left operand (in canonical order).
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }

    /// The right operand (in canonical order).
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }

    /// The largest slot index mentioned, if any.
    pub fn max_slot(&self) -> Option<usize> {
        let slot = |t: &Term| match t {
            Term::Slot(i) => Some(*i),
            Term::Const(_) => None,
        };
        slot(&self.lhs).max(slot(&self.rhs))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A normalized atom of `B(Φ)`: a [`Pred`] — the name records that the
/// `V1`/`V2` distinction has been dropped per §6.2.
pub type NormAtom = Pred;

/// A resolved commutativity formula `ϕ(x⃗₁; x⃗₂)`.
///
/// The shape mirrors the grammars of §6.1:
///
/// * [`Formula::NeqCross`] is the `LS` atom `xᵢ ≠ yⱼ` (slot `i` of the
///   first action differs from slot `j` of the second),
/// * [`Formula::Atom`] is an `LB` atom: a predicate over one side only,
/// * conjunction, disjunction and negation combine them; which combinations
///   are legal is *not* enforced structurally but checked by
///   [`Formula::fragment`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The formula `true` (always commute).
    True,
    /// The formula `false` (never commute).
    False,
    /// `xᵢ ≠ yⱼ` — slot `i` of the first action differs from slot `j` of
    /// the second. The only cross-action atom ECL admits.
    NeqCross {
        /// Slot index into the first action.
        i: usize,
        /// Slot index into the second action.
        j: usize,
    },
    /// An `LB` atom: `pred` evaluated on the `side` action's slots.
    Atom {
        /// Which action the predicate reads.
        side: Side,
        /// The (normalized) predicate.
        pred: Pred,
    },
    /// Negation (`LB` only, per the grammar).
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Smart constructor for an `LB` atom, canonicalizing the comparison so
    /// that predicates use only `==` and `<`:
    ///
    /// * `a != b` becomes `!(a == b)`,
    /// * `a <= b` becomes `!(b < a)`,
    /// * `a >= b` becomes `!(a < b)`,
    /// * `a > b` becomes `b < a`.
    ///
    /// This matches the paper's normalization of `B(Φ)` — Fig. 6's
    /// `v ≠ nil` is the negation of the atom `v = nil`, not a fourth atom —
    /// and keeps β vectors minimal.
    pub fn atom(side: Side, op: CmpOp, lhs: Term, rhs: Term) -> Formula {
        match op {
            CmpOp::Ne => Formula::atom(side, CmpOp::Eq, lhs, rhs).not(),
            CmpOp::Le => Formula::atom(side, CmpOp::Lt, rhs, lhs).not(),
            CmpOp::Ge => Formula::atom(side, CmpOp::Lt, lhs, rhs).not(),
            CmpOp::Gt => Formula::Atom {
                side,
                pred: Pred::new(CmpOp::Lt, rhs, lhs),
            },
            CmpOp::Eq | CmpOp::Lt => Formula::Atom {
                side,
                pred: Pred::new(op, lhs, rhs),
            },
        }
    }

    /// Smart conjunction with constant folding.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::True, f) | (f, Formula::True) => f,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }

    /// Smart disjunction with constant folding.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::False, f) | (f, Formula::False) => f,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Smart negation with constant folding and double-negation removal.
    #[allow(clippy::should_implement_trait)] // consuming smart constructor, not an operator
    pub fn not(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// Evaluates `ϕ(a, b)` on the slot vectors of two concrete actions.
    pub fn eval(&self, first: &[Value], second: &[Value]) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::NeqCross { i, j } => first[*i] != second[*j],
            Formula::Atom { side, pred } => match side {
                Side::First => pred.eval(first),
                Side::Second => pred.eval(second),
            },
            Formula::Not(f) => !f.eval(first, second),
            Formula::And(a, b) => a.eval(first, second) && b.eval(first, second),
            Formula::Or(a, b) => a.eval(first, second) || b.eval(first, second),
        }
    }

    /// The formula with the two sides exchanged: `ϕ(x⃗₂; x⃗₁)`.
    ///
    /// Used to check the required symmetry of same-method specifications
    /// and to orient rules stored under a canonical method order.
    pub fn swap_sides(&self) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::NeqCross { i, j } => Formula::NeqCross { i: *j, j: *i },
            Formula::Atom { side, pred } => Formula::Atom {
                side: side.flip(),
                pred: pred.clone(),
            },
            Formula::Not(f) => Formula::Not(Box::new(f.swap_sides())),
            Formula::And(a, b) => Formula::And(Box::new(a.swap_sides()), Box::new(b.swap_sides())),
            Formula::Or(a, b) => Formula::Or(Box::new(a.swap_sides()), Box::new(b.swap_sides())),
        }
    }

    /// Classifies the formula against the §6.1 grammars.
    pub fn fragment(&self) -> Fragment {
        match self {
            Formula::True | Formula::False => Fragment {
                is_ls: true,
                is_lb: true,
                is_ecl: true,
            },
            Formula::NeqCross { .. } => Fragment {
                is_ls: true,
                is_lb: false,
                is_ecl: true,
            },
            Formula::Atom { .. } => Fragment {
                is_ls: false,
                is_lb: true,
                is_ecl: true,
            },
            Formula::Not(f) => {
                let inner = f.fragment();
                Fragment {
                    is_ls: false,
                    is_lb: inner.is_lb,
                    is_ecl: inner.is_lb,
                }
            }
            Formula::And(a, b) => {
                let (fa, fb) = (a.fragment(), b.fragment());
                Fragment {
                    is_ls: fa.is_ls && fb.is_ls,
                    is_lb: fa.is_lb && fb.is_lb,
                    // X ∧ X
                    is_ecl: fa.is_ecl && fb.is_ecl,
                }
            }
            Formula::Or(a, b) => {
                let (fa, fb) = (a.fragment(), b.fragment());
                Fragment {
                    is_ls: false,
                    is_lb: fa.is_lb && fb.is_lb,
                    // X ∨ B (we accept B on either side; ∨ is commutative)
                    is_ecl: (fa.is_ecl && fb.is_lb) || (fa.is_lb && fb.is_ecl),
                }
            }
        }
    }

    /// Collects the normalized `LB` atoms occurring in the formula that
    /// refer to the given `side` — the per-method slice of `B(Φ)` (§6.2
    /// calls it `B(Φ, m)` after normalization).
    pub fn lb_atoms(&self, side: Side, out: &mut BTreeSet<NormAtom>) {
        match self {
            Formula::True | Formula::False | Formula::NeqCross { .. } => {}
            Formula::Atom { side: s, pred } => {
                if *s == side {
                    out.insert(pred.clone());
                }
            }
            Formula::Not(f) => f.lb_atoms(side, out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.lb_atoms(side, out);
                b.lb_atoms(side, out);
            }
        }
    }

    /// Performs the β-substitution of §6.2: replaces every `LB` atom by its
    /// truth value under `beta1` (for [`Side::First`] atoms) or `beta2`
    /// (for [`Side::Second`] atoms) and simplifies.
    ///
    /// By Lemma 6.4 the result of substituting into an ECL formula is an
    /// `LS` formula — a conjunction of cross-inequalities or a constant —
    /// returned as an [`LsResidue`]. For formulas outside ECL the residue
    /// may be `Mixed`, which the translation rejects.
    pub fn substitute(
        &self,
        beta1: &dyn Fn(&Pred) -> bool,
        beta2: &dyn Fn(&Pred) -> bool,
    ) -> LsResidue {
        match self {
            Formula::True => LsResidue::Conjuncts(BTreeSet::new()),
            Formula::False => LsResidue::False,
            Formula::NeqCross { i, j } => {
                let mut set = BTreeSet::new();
                set.insert((*i, *j));
                LsResidue::Conjuncts(set)
            }
            Formula::Atom { side, pred } => {
                let truth = match side {
                    Side::First => beta1(pred),
                    Side::Second => beta2(pred),
                };
                if truth {
                    LsResidue::Conjuncts(BTreeSet::new())
                } else {
                    LsResidue::False
                }
            }
            Formula::Not(f) => match f.substitute(beta1, beta2) {
                LsResidue::False => LsResidue::Conjuncts(BTreeSet::new()),
                LsResidue::Conjuncts(c) if c.is_empty() => LsResidue::False,
                _ => LsResidue::Mixed,
            },
            Formula::And(a, b) => match (a.substitute(beta1, beta2), b.substitute(beta1, beta2)) {
                (LsResidue::False, _) | (_, LsResidue::False) => LsResidue::False,
                (LsResidue::Mixed, _) | (_, LsResidue::Mixed) => LsResidue::Mixed,
                (LsResidue::Conjuncts(mut x), LsResidue::Conjuncts(y)) => {
                    x.extend(y);
                    LsResidue::Conjuncts(x)
                }
            },
            Formula::Or(a, b) => {
                match (a.substitute(beta1, beta2), b.substitute(beta1, beta2)) {
                    // true ∨ _ = true
                    (LsResidue::Conjuncts(x), _) if x.is_empty() => {
                        LsResidue::Conjuncts(BTreeSet::new())
                    }
                    (_, LsResidue::Conjuncts(y)) if y.is_empty() => {
                        LsResidue::Conjuncts(BTreeSet::new())
                    }
                    (LsResidue::False, r) | (r, LsResidue::False) => r,
                    // A disjunction of two nontrivial LS residues is not LS.
                    _ => LsResidue::Mixed,
                }
            }
        }
    }

    /// The largest slot index mentioned on `side`, if any (used by the
    /// resolver to validate arity and by the translation to size tables).
    pub fn max_slot(&self, side: Side) -> Option<usize> {
        match self {
            Formula::True | Formula::False => None,
            Formula::NeqCross { i, j } => match side {
                Side::First => Some(*i),
                Side::Second => Some(*j),
            },
            Formula::Atom { side: s, pred } => {
                if *s == side {
                    pred.max_slot()
                } else {
                    None
                }
            }
            Formula::Not(f) => f.max_slot(side),
            Formula::And(a, b) | Formula::Or(a, b) => a.max_slot(side).max(b.max_slot(side)),
        }
    }

    /// Renders the formula as parseable spec-language source, with the same
    /// synthesized variable names [`crate::Spec::to_source`] uses (`a0…/ar`
    /// for the first action, `b0…/br` for the second). `sig1` and `sig2` are
    /// the signatures of the two methods the formula relates, used to decide
    /// whether a slot is an argument or the return value.
    pub fn to_source(&self, sig1: &MethodSig, sig2: &MethodSig) -> String {
        fn term(t: &Term, side: Side, sig: &MethodSig) -> String {
            match t {
                Term::Slot(i) => slot_var(side, *i, sig),
                Term::Const(v) => v.to_string(),
            }
        }
        fn go(phi: &Formula, sig1: &MethodSig, sig2: &MethodSig, prec: u8, out: &mut String) {
            match phi {
                Formula::True => out.push_str("true"),
                Formula::False => out.push_str("false"),
                Formula::NeqCross { i, j } => {
                    out.push_str(&slot_var(Side::First, *i, sig1));
                    out.push_str(" != ");
                    out.push_str(&slot_var(Side::Second, *j, sig2));
                }
                Formula::Atom { side, pred } => {
                    let sig = if *side == Side::First { sig1 } else { sig2 };
                    out.push_str(&format!(
                        "{} {} {}",
                        term(pred.lhs(), *side, sig),
                        pred.op(),
                        term(pred.rhs(), *side, sig)
                    ));
                }
                Formula::Not(inner) => {
                    out.push_str("!(");
                    go(inner, sig1, sig2, 0, out);
                    out.push(')');
                }
                Formula::And(a, b) => {
                    let need = prec > 2;
                    if need {
                        out.push('(');
                    }
                    // The parser folds `&&` left-associatively, so a
                    // right-nested And child must keep its parentheses for
                    // the reparse to rebuild this exact tree.
                    go(a, sig1, sig2, 2, out);
                    out.push_str(" && ");
                    go(b, sig1, sig2, 3, out);
                    if need {
                        out.push(')');
                    }
                }
                Formula::Or(a, b) => {
                    let need = prec > 1;
                    if need {
                        out.push('(');
                    }
                    go(a, sig1, sig2, 1, out);
                    out.push_str(" || ");
                    go(b, sig1, sig2, 2, out);
                    if need {
                        out.push(')');
                    }
                }
            }
        }
        let mut out = String::new();
        go(self, sig1, sig2, 0, &mut out);
        out
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(formula: &Formula, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match formula {
                Formula::True => write!(f, "true"),
                Formula::False => write!(f, "false"),
                Formula::NeqCross { i, j } => write!(f, "x{i} != y{j}"),
                Formula::Atom { side, pred } => match side {
                    Side::First => write!(f, "[1]({pred})"),
                    Side::Second => write!(f, "[2]({pred})"),
                },
                Formula::Not(inner) => {
                    write!(f, "!")?;
                    go(inner, f, 3)
                }
                Formula::And(a, b) => {
                    let need = prec > 2;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 2)?;
                    write!(f, " && ")?;
                    go(b, f, 2)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Formula::Or(a, b) => {
                    let need = prec > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " || ")?;
                    go(b, f, 1)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

/// The result of classifying a formula against the §6.1 grammars.
///
/// `LS ⊆ ECL` and `LB ⊆ ECL`; constants belong to all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Member of `LS` (SIMPLE): conjunctions of cross-inequalities.
    pub is_ls: bool,
    /// Member of `LB`: boolean combinations of single-side atoms.
    pub is_lb: bool,
    /// Member of `ECL = S | B | X∧X | X∨B`.
    pub is_ecl: bool,
}

/// What remains of an ECL formula after β-substitution (Lemma 6.4): an `LS`
/// formula, i.e. `false` or a conjunction of cross-inequalities
/// `xᵢ ≠ yⱼ` (the empty conjunction being `true`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LsResidue {
    /// The residue is equivalent to `false`.
    False,
    /// A conjunction of the listed `(i, j)` cross-inequalities; empty means
    /// `true`.
    Conjuncts(BTreeSet<(usize, usize)>),
    /// The substitution did not reduce to an `LS` formula — the input was
    /// not an ECL formula.
    Mixed,
}

impl LsResidue {
    /// Returns `true` iff the residue is the constant `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, LsResidue::Conjuncts(c) if c.is_empty())
    }

    /// Returns `true` iff the residue is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, LsResidue::False)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neq(i: usize, j: usize) -> Formula {
        Formula::NeqCross { i, j }
    }

    fn atom(side: Side, op: CmpOp, l: Term, r: Term) -> Formula {
        Formula::Atom {
            side,
            pred: Pred::new(op, l, r),
        }
    }

    /// The Fig. 6 put/put formula: k1 != k2 || (v1 == p1 && v2 == p2)
    /// for put(k,v)/p with slots k=0, v=1, p=2.
    fn put_put() -> Formula {
        let reads1 = atom(Side::First, CmpOp::Eq, Term::Slot(1), Term::Slot(2));
        let reads2 = atom(Side::Second, CmpOp::Eq, Term::Slot(1), Term::Slot(2));
        neq(0, 0).or(reads1.and(reads2))
    }

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(Formula::True.and(neq(0, 0)), neq(0, 0));
        assert_eq!(Formula::False.and(neq(0, 0)), Formula::False);
        assert_eq!(Formula::False.or(neq(0, 0)), neq(0, 0));
        assert_eq!(Formula::True.or(neq(0, 0)), Formula::True);
        assert_eq!(Formula::True.not(), Formula::False);
        assert_eq!(neq(0, 0).not().not(), neq(0, 0));
    }

    #[test]
    fn pred_canonicalization() {
        // a == b and b == a are the same predicate.
        assert_eq!(
            Pred::new(CmpOp::Eq, Term::Slot(2), Term::Slot(1)),
            Pred::new(CmpOp::Eq, Term::Slot(1), Term::Slot(2))
        );
        // a > b is stored as b < a.
        assert_eq!(
            Pred::new(CmpOp::Gt, Term::Slot(0), Term::Slot(1)),
            Pred::new(CmpOp::Lt, Term::Slot(1), Term::Slot(0))
        );
    }

    #[test]
    fn eval_put_put_matches_paper_semantics() {
        let phi = put_put();
        // Different keys commute.
        let a = [Value::Int(1), Value::Int(10), Value::Nil];
        let b = [Value::Int(2), Value::Int(20), Value::Nil];
        assert!(phi.eval(&a, &b));
        // Same key, both are "reads" (v == p): commute.
        let a = [Value::Int(1), Value::Int(10), Value::Int(10)];
        let b = [Value::Int(1), Value::Int(10), Value::Int(10)];
        assert!(phi.eval(&a, &b));
        // Same key, one write: do not commute.
        let a = [Value::Int(1), Value::Int(10), Value::Nil];
        let b = [Value::Int(1), Value::Int(10), Value::Int(10)];
        assert!(!phi.eval(&a, &b));
    }

    #[test]
    fn eval_ordering_atoms() {
        let f = atom(
            Side::First,
            CmpOp::Lt,
            Term::Slot(0),
            Term::Const(Value::Int(5)),
        );
        assert!(f.eval(&[Value::Int(3)], &[]));
        assert!(!f.eval(&[Value::Int(7)], &[]));
    }

    #[test]
    fn swap_sides_is_involutive_and_flips() {
        let phi = put_put();
        assert_eq!(phi.swap_sides().swap_sides(), phi);
        let a = [Value::Int(1), Value::Int(10), Value::Nil];
        let b = [Value::Int(1), Value::Int(20), Value::Int(20)];
        assert_eq!(phi.eval(&a, &b), phi.swap_sides().eval(&b, &a));
    }

    #[test]
    fn fragment_of_ls_formulas() {
        let f = neq(0, 0).and(neq(1, 2));
        let frag = f.fragment();
        assert!(frag.is_ls && frag.is_ecl && !frag.is_lb);
    }

    #[test]
    fn fragment_of_lb_formulas() {
        let f = atom(Side::First, CmpOp::Eq, Term::Slot(0), Term::Slot(1))
            .or(atom(
                Side::Second,
                CmpOp::Ne,
                Term::Slot(0),
                Term::Const(Value::Nil),
            ))
            .not();
        let frag = f.fragment();
        assert!(frag.is_lb && frag.is_ecl && !frag.is_ls);
    }

    #[test]
    fn fragment_of_ecl_combination() {
        let frag = put_put().fragment();
        assert!(frag.is_ecl);
        assert!(!frag.is_ls); // contains a disjunction and equality atoms
        assert!(!frag.is_lb); // contains a cross-inequality
    }

    #[test]
    fn fragment_rejects_disjunction_of_two_ls() {
        // x0 != y0 || x1 != y1 is not in ECL (the paper's X ∨ B only allows
        // an LB disjunct).
        let f = neq(0, 0).or(neq(1, 1));
        let frag = f.fragment();
        assert!(!frag.is_ecl);
    }

    #[test]
    fn fragment_rejects_negated_ls() {
        let f = neq(0, 0).not();
        assert!(!f.fragment().is_ecl);
    }

    #[test]
    fn constants_are_in_every_fragment() {
        for f in [Formula::True, Formula::False] {
            let frag = f.fragment();
            assert!(frag.is_ls && frag.is_lb && frag.is_ecl);
        }
    }

    #[test]
    fn lb_atoms_collects_per_side_normalized() {
        let phi = put_put();
        let mut first = BTreeSet::new();
        phi.lb_atoms(Side::First, &mut first);
        let mut second = BTreeSet::new();
        phi.lb_atoms(Side::Second, &mut second);
        // Normalization erases sides: the same v == p atom on both sides.
        assert_eq!(first, second);
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn substitute_put_put_both_reads() {
        let phi = put_put();
        // β: v == p is true on both sides → residue is `true`.
        let t = |_: &Pred| true;
        assert!(phi.substitute(&t, &t).is_true());
    }

    #[test]
    fn substitute_put_put_one_write() {
        let phi = put_put();
        let t = |_: &Pred| true;
        let f = |_: &Pred| false;
        // One side writes → residue is exactly the conjunct k1 != k2.
        let residue = phi.substitute(&t, &f);
        match residue {
            LsResidue::Conjuncts(c) => {
                assert_eq!(c.into_iter().collect::<Vec<_>>(), vec![(0, 0)]);
            }
            other => panic!("expected conjuncts, got {other:?}"),
        }
    }

    #[test]
    fn substitute_yields_false_for_size_conflict() {
        // ϕ_put_size = (v==nil && p==nil) || (v!=nil && p!=nil): pure LB.
        let v_nil = Pred::new(CmpOp::Eq, Term::Slot(1), Term::Const(Value::Nil));
        let p_nil = Pred::new(CmpOp::Eq, Term::Slot(2), Term::Const(Value::Nil));
        let phi = Formula::Atom {
            side: Side::First,
            pred: v_nil.clone(),
        }
        .and(Formula::Atom {
            side: Side::First,
            pred: p_nil.clone(),
        })
        .or(Formula::Atom {
            side: Side::First,
            pred: v_nil.clone(),
        }
        .not()
        .and(
            Formula::Atom {
                side: Side::First,
                pred: p_nil.clone(),
            }
            .not(),
        ));
        // A resizing put: v != nil, p == nil.
        let beta1 = move |p: &Pred| *p != v_nil;
        let beta2 = |_: &Pred| true;
        assert!(phi.substitute(&beta1, &beta2).is_false());
    }

    #[test]
    fn substitute_detects_non_ecl_shapes() {
        let f = neq(0, 0).or(neq(1, 1));
        let t = |_: &Pred| true;
        assert_eq!(f.substitute(&t, &t), LsResidue::Mixed);
        let g = neq(0, 0).not();
        assert_eq!(g.substitute(&t, &t), LsResidue::Mixed);
    }

    #[test]
    fn max_slot_per_side() {
        let phi = put_put();
        assert_eq!(phi.max_slot(Side::First), Some(2));
        assert_eq!(phi.max_slot(Side::Second), Some(2));
        assert_eq!(neq(3, 1).max_slot(Side::First), Some(3));
        assert_eq!(neq(3, 1).max_slot(Side::Second), Some(1));
    }

    #[test]
    fn display_round_trips_structure() {
        let phi = put_put();
        let s = phi.to_string();
        assert!(s.contains("x0 != y0"), "{s}");
        assert!(s.contains("&&"), "{s}");
    }
}
