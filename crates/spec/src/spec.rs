//! Resolved specifications and the programmatic builder.

use crate::error::{Span, SpecError};
use crate::formula::{Formula, NormAtom, Side};
use crace_model::{Action, MethodId, MethodSig};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A resolved logical commutativity specification `Φ` for one object type
/// (Definition 4.1).
///
/// A `Spec` holds the object's method signatures and, for every unordered
/// method pair `{m1, m2}`, the formula `ϕ_{m1}^{m2}`. Pairs without a
/// declared rule conservatively get `false` (never commute) — a sound
/// default, since soundness only requires that `ϕ(a,b)` *implies*
/// commutativity (Definition 4.2).
///
/// Construct a `Spec` by parsing source text with [`crate::parse`] or
/// programmatically with [`SpecBuilder`].
///
/// # Examples
///
/// ```
/// use crace_model::{Action, MethodId, ObjId, Value};
/// use crace_spec::builtin;
///
/// let dict = builtin::dictionary();
/// let put = dict.method_id("put").unwrap();
/// // Two puts to different keys commute.
/// let a = Action::new(ObjId(0), put, vec![Value::Int(1), Value::Int(9)], Value::Nil);
/// let b = Action::new(ObjId(0), put, vec![Value::Int(2), Value::Int(9)], Value::Nil);
/// assert!(dict.commute(&a, &b));
/// ```
#[derive(Clone, Debug)]
pub struct Spec {
    name: String,
    methods: Vec<MethodSig>,
    /// Keyed by `(m1, m2)` with `m1 ≤ m2`; the stored formula's first side
    /// refers to `m1`.
    rules: BTreeMap<(MethodId, MethodId), Formula>,
    /// Source span of each rule, when the spec came from source text
    /// (empty for built specs). Same key orientation as `rules`.
    rule_spans: BTreeMap<(MethodId, MethodId), Span>,
}

impl Spec {
    pub(crate) fn from_parts(
        name: String,
        methods: Vec<MethodSig>,
        rules: BTreeMap<(MethodId, MethodId), Formula>,
        rule_spans: BTreeMap<(MethodId, MethodId), Span>,
    ) -> Spec {
        Spec {
            name,
            methods,
            rules,
            rule_spans,
        }
    }

    /// The specification (object type) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared method signatures, indexed by [`MethodId`].
    pub fn methods(&self) -> &[MethodSig] {
        &self.methods
    }

    /// Number of declared methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Looks up a method by name.
    pub fn method_id(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name() == name)
            .map(|i| MethodId(i as u32))
    }

    /// The signature of `method`.
    ///
    /// # Panics
    ///
    /// Panics if `method` is out of range for this specification.
    pub fn sig(&self, method: MethodId) -> &MethodSig {
        &self.methods[method.index()]
    }

    /// The commutativity formula `ϕ_{m1}^{m2}` oriented so that its first
    /// side refers to `m1` and its second side to `m2`.
    ///
    /// Returns [`Formula::False`] for pairs with no declared rule.
    pub fn formula(&self, m1: MethodId, m2: MethodId) -> Formula {
        if m1 <= m2 {
            self.rules.get(&(m1, m2)).cloned().unwrap_or(Formula::False)
        } else {
            self.rules
                .get(&(m2, m1))
                .map(|f| f.swap_sides())
                .unwrap_or(Formula::False)
        }
    }

    /// Evaluates `ϕ(a, b)`: does the specification assert that the two
    /// actions commute?
    ///
    /// Actions of different objects always commute (§3.1); this method
    /// assumes both actions belong to an object of this specification and
    /// does **not** compare their object identifiers.
    pub fn commute(&self, a: &Action, b: &Action) -> bool {
        let phi = self.formula(a.method(), b.method());
        let first: Vec<_> = a.slots().cloned().collect();
        let second: Vec<_> = b.slots().cloned().collect();
        phi.eval(&first, &second)
    }

    /// Returns `true` iff every declared rule lies in the ECL fragment, so
    /// the specification can be translated to a constant-lookup access-point
    /// representation (§6).
    pub fn is_ecl(&self) -> bool {
        self.rules.values().all(|f| f.fragment().is_ecl)
    }

    /// The normalized `LB` atoms relevant to `method` — `B(Φ, m)` of §6.2:
    /// atoms of any rule mentioning `method`, on the side referring to it.
    pub fn lb_atoms(&self, method: MethodId) -> BTreeSet<NormAtom> {
        let mut atoms = BTreeSet::new();
        for (&(m1, m2), phi) in &self.rules {
            if m1 == method {
                phi.lb_atoms(Side::First, &mut atoms);
            }
            if m2 == method {
                phi.lb_atoms(Side::Second, &mut atoms);
            }
        }
        atoms
    }

    /// The source span of the `commute` rule for the unordered pair
    /// `{m1, m2}`, when this spec was resolved from source text.
    ///
    /// Returns `None` for pairs without a rule and for specs built
    /// programmatically (e.g. via [`SpecBuilder`]).
    pub fn rule_span(&self, m1: MethodId, m2: MethodId) -> Option<Span> {
        let key = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        self.rule_spans.get(&key).copied()
    }

    /// Method pairs with no declared rule (which therefore default to
    /// `false`). Useful for linting a specification for completeness.
    pub fn missing_rules(&self) -> Vec<(MethodId, MethodId)> {
        let mut missing = Vec::new();
        for i in 0..self.methods.len() {
            for j in i..self.methods.len() {
                let key = (MethodId(i as u32), MethodId(j as u32));
                if !self.rules.contains_key(&key) {
                    missing.push(key);
                }
            }
        }
        missing
    }
}

impl Spec {
    /// Renders the specification back to parseable source text, with
    /// synthesized variable names (`a0…/ar` for the first action, `b0…/br`
    /// for the second).
    pub fn to_source(&self) -> String {
        fn pattern(side: Side, sig: &MethodSig) -> String {
            let args: Vec<_> = (0..sig.num_args())
                .map(|i| crate::formula::slot_var(side, i, sig))
                .collect();
            format!(
                "{}({}) -> {}",
                sig.name(),
                args.join(", "),
                crate::formula::slot_var(side, sig.num_args(), sig)
            )
        }
        let mut out = format!("spec {} {{\n", self.name);
        for m in &self.methods {
            let args: Vec<_> = (0..m.num_args()).map(|i| format!("a{i}")).collect();
            out.push_str(&format!(
                "    method {}({}) -> r;\n",
                m.name(),
                args.join(", ")
            ));
        }
        for ((m1, m2), phi) in &self.rules {
            let sig1 = &self.methods[m1.index()];
            let sig2 = &self.methods[m2.index()];
            out.push_str(&format!(
                "    commute {}, {} when {};\n",
                pattern(Side::First, sig1),
                pattern(Side::Second, sig2),
                phi.to_source(sig1, sig2)
            ));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

/// A handle to a declared method: its identifier and signature facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodRef {
    /// The method's identifier within the specification.
    pub id: MethodId,
    /// The method's name.
    pub name: String,
    /// Number of declared arguments.
    pub num_args: usize,
}

/// Builds a [`Spec`] programmatically, as an alternative to the textual
/// language.
///
/// # Examples
///
/// ```
/// use crace_spec::{Formula, SpecBuilder};
///
/// let mut b = SpecBuilder::new("register");
/// let read = b.method("read", 0);
/// let write = b.method("write", 1);
/// b.rule(read.id, read.id, Formula::True)?;
/// b.rule(read.id, write.id, Formula::False)?;
/// b.rule(write.id, write.id, Formula::False)?;
/// let spec = b.finish()?;
/// assert!(spec.is_ecl());
/// # Ok::<(), crace_spec::SpecError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SpecBuilder {
    name: String,
    methods: Vec<MethodSig>,
    rules: BTreeMap<(MethodId, MethodId), Formula>,
}

impl SpecBuilder {
    /// Starts a specification called `name`.
    pub fn new(name: impl Into<String>) -> SpecBuilder {
        SpecBuilder {
            name: name.into(),
            methods: Vec::new(),
            rules: BTreeMap::new(),
        }
    }

    /// Declares a method and returns its handle.
    pub fn method(&mut self, name: impl Into<String>, num_args: usize) -> MethodRef {
        let name = name.into();
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(MethodSig::new(name.clone(), num_args));
        MethodRef { id, name, num_args }
    }

    /// Declares the commutativity rule for the pair `{m1, m2}`. The
    /// formula's first side must refer to `m1`, its second side to `m2`.
    ///
    /// # Errors
    ///
    /// Fails if either method is undeclared, the pair already has a rule, a
    /// slot index is out of range for its method, or `m1 == m2` and the
    /// formula is not symmetric (the paper requires
    /// `ϕ_m^m(x⃗₁;x⃗₂) ≡ ϕ_m^m(x⃗₂;x⃗₁)`).
    pub fn rule(&mut self, m1: MethodId, m2: MethodId, formula: Formula) -> Result<(), SpecError> {
        let span = Span::point(0);
        for (m, side) in [(m1, Side::First), (m2, Side::Second)] {
            let sig = self
                .methods
                .get(m.index())
                .ok_or_else(|| SpecError::new(format!("unknown method id {m}"), span))?;
            if let Some(max) = formula.max_slot(side) {
                if max >= sig.num_slots() {
                    return Err(SpecError::new(
                        format!(
                            "formula mentions slot {max} of `{}`, which has only {} slots",
                            sig.name(),
                            sig.num_slots()
                        ),
                        span,
                    ));
                }
            }
        }
        let (key, oriented) = if m1 <= m2 {
            ((m1, m2), formula)
        } else {
            ((m2, m1), formula.swap_sides())
        };
        if self.rules.contains_key(&key) {
            return Err(SpecError::new(
                format!(
                    "duplicate rule for pair ({}, {})",
                    self.methods[key.0.index()].name(),
                    self.methods[key.1.index()].name()
                ),
                span,
            ));
        }
        if key.0 == key.1 && !crate::resolve::is_symmetric(&oriented) {
            return Err(SpecError::new(
                format!(
                    "rule for ({0}, {0}) must be symmetric in its two actions",
                    self.methods[key.0.index()].name()
                ),
                span,
            ));
        }
        self.rules.insert(key, oriented);
        Ok(())
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Fails if two methods share a name.
    pub fn finish(self) -> Result<Spec, SpecError> {
        for (i, m) in self.methods.iter().enumerate() {
            if self.methods[..i].iter().any(|n| n.name() == m.name()) {
                return Err(SpecError::new(
                    format!("method `{}` declared twice", m.name()),
                    Span::point(0),
                ));
            }
        }
        Ok(Spec::from_parts(
            self.name,
            self.methods,
            self.rules,
            BTreeMap::new(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{CmpOp, Pred, Term};
    use crace_model::{ObjId, Value};

    fn register_spec() -> Spec {
        let mut b = SpecBuilder::new("register");
        let read = b.method("read", 0);
        let write = b.method("write", 1);
        b.rule(read.id, read.id, Formula::True).unwrap();
        b.rule(write.id, read.id, Formula::False).unwrap();
        b.rule(write.id, write.id, Formula::False).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn method_lookup() {
        let spec = register_spec();
        assert_eq!(spec.method_id("read"), Some(MethodId(0)));
        assert_eq!(spec.method_id("write"), Some(MethodId(1)));
        assert_eq!(spec.method_id("cas"), None);
        assert_eq!(spec.sig(MethodId(1)).num_args(), 1);
        assert_eq!(spec.num_methods(), 2);
    }

    #[test]
    fn missing_pairs_default_to_false() {
        let mut b = SpecBuilder::new("s");
        let m = b.method("m", 0);
        let spec = b.finish().unwrap();
        assert_eq!(spec.formula(m.id, m.id), Formula::False);
        assert_eq!(spec.missing_rules().len(), 1);
        assert!(register_spec().missing_rules().is_empty());
    }

    #[test]
    fn formula_orientation_swaps_for_reversed_lookup() {
        // Asymmetric cross formula between two different methods:
        // ϕ_a^b = x0 != y1.
        let mut b = SpecBuilder::new("s");
        let ma = b.method("a", 1);
        let mb = b.method("b", 1);
        b.rule(ma.id, mb.id, Formula::NeqCross { i: 0, j: 1 })
            .unwrap();
        let spec = b.finish().unwrap();
        assert_eq!(spec.formula(ma.id, mb.id), Formula::NeqCross { i: 0, j: 1 });
        assert_eq!(spec.formula(mb.id, ma.id), Formula::NeqCross { i: 1, j: 0 });
    }

    #[test]
    fn rule_declared_in_reverse_order_is_reoriented() {
        let mut b = SpecBuilder::new("s");
        let ma = b.method("a", 1);
        let mb = b.method("b", 1);
        // Declared as (b, a) with formula x1 != y0 — stored for (a, b).
        b.rule(mb.id, ma.id, Formula::NeqCross { i: 1, j: 0 })
            .unwrap();
        let spec = b.finish().unwrap();
        assert_eq!(spec.formula(ma.id, mb.id), Formula::NeqCross { i: 0, j: 1 });
    }

    #[test]
    fn commute_evaluates_on_slots() {
        let spec = register_spec();
        let read = Action::new(ObjId(0), MethodId(0), vec![], Value::Int(1));
        let write = Action::new(ObjId(0), MethodId(1), vec![Value::Int(2)], Value::Nil);
        assert!(spec.commute(&read, &read));
        assert!(!spec.commute(&read, &write));
        assert!(!spec.commute(&write, &read));
    }

    #[test]
    fn duplicate_rule_rejected() {
        let mut b = SpecBuilder::new("s");
        let m = b.method("m", 0);
        b.rule(m.id, m.id, Formula::True).unwrap();
        let err = b.rule(m.id, m.id, Formula::False).unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn asymmetric_same_method_rule_rejected() {
        let mut b = SpecBuilder::new("s");
        let m = b.method("m", 1);
        // x0 of the first action equals a constant — not symmetric.
        let lop = Formula::Atom {
            side: Side::First,
            pred: Pred::new(CmpOp::Eq, Term::Slot(0), Term::Const(Value::Int(1))),
        };
        let err = b.rule(m.id, m.id, lop).unwrap_err();
        assert!(err.message().contains("symmetric"));
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let mut b = SpecBuilder::new("s");
        let m = b.method("m", 0); // slots: just the return, index 0
        let err = b
            .rule(m.id, m.id, Formula::NeqCross { i: 1, j: 1 })
            .unwrap_err();
        assert!(err.message().contains("slot"));
    }

    #[test]
    fn duplicate_method_name_rejected() {
        let mut b = SpecBuilder::new("s");
        b.method("m", 0);
        b.method("m", 1);
        let err = b.finish().unwrap_err();
        assert!(err.message().contains("declared twice"));
    }

    #[test]
    fn lb_atoms_gathers_both_orientations() {
        let dict = crate::builtin::dictionary();
        let put = dict.method_id("put").unwrap();
        let atoms = dict.lb_atoms(put);
        // v == p, v == nil, p == nil (normalized).
        assert_eq!(atoms.len(), 3);
        let get = dict.method_id("get").unwrap();
        assert!(dict.lb_atoms(get).is_empty());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let spec = register_spec();
        let printed = spec.to_string();
        let reparsed = crate::parse(&printed).unwrap();
        assert_eq!(reparsed.name(), "register");
        assert_eq!(reparsed.num_methods(), 2);
    }
}
