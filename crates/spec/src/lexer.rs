//! Lexer for the specification language.

use crate::error::{Span, SpecError};
use std::fmt;

/// The kinds of tokens in the specification language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    // Keywords
    Spec,
    Method,
    Commute,
    When,
    True,
    False,
    Nil,
    // Literals and identifiers
    Ident(String),
    Int(i64),
    Str(String),
    Underscore,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Arrow,
    // Operators
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Spec => write!(f, "`spec`"),
            TokenKind::Method => write!(f, "`method`"),
            TokenKind::Commute => write!(f, "`commute`"),
            TokenKind::When => write!(f, "`when`"),
            TokenKind::True => write!(f, "`true`"),
            TokenKind::False => write!(f, "`false`"),
            TokenKind::Nil => write!(f, "`nil`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Underscore => write!(f, "`_`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Tokenizes `source`, returning the token stream terminated by
/// [`TokenKind::Eof`].
///
/// Line comments start with `//` or `#` and run to end of line.
pub fn tokenize(source: &str) -> Result<Vec<Token>, SpecError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    while pos < bytes.len() {
        let b = bytes[pos];
        // Whitespace
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Comments: `//` and `#`
        if b == b'#' || (b == b'/' && bytes.get(pos + 1) == Some(&b'/')) {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        let kind = match b {
            b'(' => {
                pos += 1;
                TokenKind::LParen
            }
            b')' => {
                pos += 1;
                TokenKind::RParen
            }
            b'{' => {
                pos += 1;
                TokenKind::LBrace
            }
            b'}' => {
                pos += 1;
                TokenKind::RBrace
            }
            b',' => {
                pos += 1;
                TokenKind::Comma
            }
            b';' => {
                pos += 1;
                TokenKind::Semi
            }
            b'-' if bytes.get(pos + 1) == Some(&b'>') => {
                pos += 2;
                TokenKind::Arrow
            }
            b'-' if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                pos += 1;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = &source[start..pos];
                let value = text.parse::<i64>().map_err(|_| {
                    SpecError::new(
                        format!("integer literal `{text}` out of range"),
                        Span::new(start as u32, pos as u32),
                    )
                })?;
                TokenKind::Int(value)
            }
            b'=' if bytes.get(pos + 1) == Some(&b'=') => {
                pos += 2;
                TokenKind::EqEq
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                pos += 2;
                TokenKind::NotEq
            }
            b'!' => {
                pos += 1;
                TokenKind::Bang
            }
            b'<' if bytes.get(pos + 1) == Some(&b'=') => {
                pos += 2;
                TokenKind::Le
            }
            b'<' => {
                pos += 1;
                TokenKind::Lt
            }
            b'>' if bytes.get(pos + 1) == Some(&b'=') => {
                pos += 2;
                TokenKind::Ge
            }
            b'>' => {
                pos += 1;
                TokenKind::Gt
            }
            b'&' if bytes.get(pos + 1) == Some(&b'&') => {
                pos += 2;
                TokenKind::AndAnd
            }
            b'|' if bytes.get(pos + 1) == Some(&b'|') => {
                pos += 2;
                TokenKind::OrOr
            }
            b'"' => {
                pos += 1;
                let content_start = pos;
                while pos < bytes.len() && bytes[pos] != b'"' {
                    if bytes[pos] == b'\n' {
                        return Err(SpecError::new(
                            "unterminated string literal",
                            Span::new(start as u32, pos as u32),
                        ));
                    }
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(SpecError::new(
                        "unterminated string literal",
                        Span::new(start as u32, pos as u32),
                    ));
                }
                let text = source[content_start..pos].to_string();
                pos += 1; // closing quote
                TokenKind::Str(text)
            }
            b'0'..=b'9' => {
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = &source[start..pos];
                let value = text.parse::<i64>().map_err(|_| {
                    SpecError::new(
                        format!("integer literal `{text}` out of range"),
                        Span::new(start as u32, pos as u32),
                    )
                })?;
                TokenKind::Int(value)
            }
            b'_' if !ident_continues(bytes.get(pos + 1)) => {
                pos += 1;
                TokenKind::Underscore
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while pos < bytes.len() && ident_continues(Some(&bytes[pos])) {
                    pos += 1;
                }
                match &source[start..pos] {
                    "spec" => TokenKind::Spec,
                    "method" => TokenKind::Method,
                    "commute" => TokenKind::Commute,
                    "when" => TokenKind::When,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "nil" => TokenKind::Nil,
                    ident => TokenKind::Ident(ident.to_string()),
                }
            }
            other => {
                return Err(SpecError::new(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start as u32, start as u32 + 1),
                ));
            }
        };
        tokens.push(Token {
            kind,
            span: Span::new(start as u32, pos as u32),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(bytes.len() as u32),
    });
    Ok(tokens)
}

fn ident_continues(b: Option<&u8>) -> bool {
    matches!(b, Some(b) if b.is_ascii_alphanumeric() || *b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("spec dictionary when whenx"),
            vec![
                TokenKind::Spec,
                TokenKind::Ident("dictionary".into()),
                TokenKind::When,
                TokenKind::Ident("whenx".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("== != <= >= < > && || ! ->"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Arrow,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn underscore_alone_is_wildcard_but_prefix_is_ident() {
        assert_eq!(
            kinds("_ _x x_"),
            vec![
                TokenKind::Underscore,
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("x_".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds(r#"42 "a.com" nil"#),
            vec![
                TokenKind::Int(42),
                TokenKind::Str("a.com".into()),
                TokenKind::Nil,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_negative_integers_but_not_arrow() {
        assert_eq!(
            kinds("-7 -> -0"),
            vec![
                TokenKind::Int(-7),
                TokenKind::Arrow,
                TokenKind::Int(0),
                TokenKind::Eof,
            ]
        );
        // A bare `-` is still an error.
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment ;;;\nb # another\nc"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 6));
        assert_eq!(toks[2].span, Span::point(6));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("\"abc").unwrap_err();
        assert!(err.message().contains("unterminated"));
        let err = tokenize("\"abc\ndef\"").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.message().contains('@'));
        assert_eq!(err.span(), Span::new(2, 3));
    }

    #[test]
    fn huge_integer_is_an_error() {
        let err = tokenize("99999999999999999999").unwrap_err();
        assert!(err.message().contains("out of range"));
    }

    #[test]
    fn single_ampersand_is_an_error() {
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("a | b").is_err());
    }
}
