//! Recursive-descent parser for the specification language.
//!
//! Grammar (terminals quoted):
//!
//! ```text
//! file    := spec+
//! spec    := "spec" IDENT "{" item* "}"
//! item    := method | rule
//! method  := "method" IDENT "(" (binder ("," binder)*)? ")" ("->" binder)? ";"
//! rule    := "commute" pattern "," pattern "when" formula ";"
//! pattern := IDENT "(" (binder ("," binder)*)? ")" ("->" binder)?
//! binder  := IDENT | "_"
//! formula := or
//! or      := and ("||" and)*
//! and     := unary ("&&" unary)*
//! unary   := "!" unary | primary
//! primary := "true" | "false" | "(" formula ")" | term cmp term
//! cmp     := "==" | "!=" | "<" | "<=" | ">" | ">="
//! term    := IDENT | INT | STRING | "nil"
//! ```

use crate::ast::{Binder, CommuteDecl, FormulaAst, MethodDecl, Pattern, SpecAst, TermAst};
use crate::error::{Span, SpecError};
use crate::formula::CmpOp;
use crate::lexer::{tokenize, Token, TokenKind};
use crace_model::Value;

/// Parses a source containing exactly one `spec` block.
pub fn parse_source(source: &str) -> Result<SpecAst, SpecError> {
    let mut specs = parse_source_multi(source)?;
    match specs.len() {
        1 => Ok(specs.pop().expect("length checked")),
        n => Err(SpecError::new(
            format!("expected exactly one spec block, found {n}"),
            Span::point(0),
        )),
    }
}

/// Parses a source containing one or more `spec` blocks.
pub fn parse_source_multi(source: &str) -> Result<Vec<SpecAst>, SpecError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut specs = Vec::new();
    while parser.peek() != &TokenKind::Eof {
        specs.push(parser.spec()?);
    }
    if specs.is_empty() {
        return Err(SpecError::new("expected a `spec` block", Span::point(0)));
    }
    Ok(specs)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, SpecError> {
        if self.peek() == kind {
            Ok(self.advance())
        } else {
            Err(SpecError::new(
                format!("expected {kind}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), SpecError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.advance();
                Ok((name, span))
            }
            other => Err(SpecError::new(
                format!("expected {what}, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn spec(&mut self) -> Result<SpecAst, SpecError> {
        self.expect(&TokenKind::Spec)?;
        let (name, name_span) = self.ident("specification name")?;
        self.expect(&TokenKind::LBrace)?;
        let mut methods = Vec::new();
        let mut rules = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Method => methods.push(self.method()?),
                TokenKind::Commute => rules.push(self.rule()?),
                TokenKind::RBrace => {
                    self.advance();
                    break;
                }
                other => {
                    return Err(SpecError::new(
                        format!("expected `method`, `commute` or `}}`, found {other}"),
                        self.peek_span(),
                    ));
                }
            }
        }
        Ok(SpecAst {
            name,
            name_span,
            methods,
            rules,
        })
    }

    fn method(&mut self) -> Result<MethodDecl, SpecError> {
        let start = self.expect(&TokenKind::Method)?.span;
        let (name, _) = self.ident("method name")?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let binder = self.binder()?;
                args.push(match binder {
                    Binder::Named(n, _) => n,
                    Binder::Wildcard(_) => "_".to_string(),
                });
                if self.peek() == &TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if self.peek() == &TokenKind::Arrow {
            self.advance();
            match self.binder()? {
                Binder::Named(n, _) => Some(n),
                Binder::Wildcard(_) => None,
            }
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(MethodDecl {
            name,
            span: start.cover(end),
            args,
            ret,
        })
    }

    fn rule(&mut self) -> Result<CommuteDecl, SpecError> {
        let start = self.expect(&TokenKind::Commute)?.span;
        let first = self.pattern()?;
        self.expect(&TokenKind::Comma)?;
        let second = self.pattern()?;
        self.expect(&TokenKind::When)?;
        let formula = self.formula()?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(CommuteDecl {
            first,
            second,
            formula,
            span: start.cover(end),
        })
    }

    fn pattern(&mut self) -> Result<Pattern, SpecError> {
        let (method, span) = self.ident("method name")?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.binder()?);
                if self.peek() == &TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let close = self.expect(&TokenKind::RParen)?.span;
        let ret = if self.peek() == &TokenKind::Arrow {
            self.advance();
            self.binder()?
        } else {
            Binder::Wildcard(close)
        };
        Ok(Pattern {
            method,
            span,
            args,
            ret,
        })
    }

    fn binder(&mut self) -> Result<Binder, SpecError> {
        match self.peek().clone() {
            TokenKind::Underscore => {
                let span = self.peek_span();
                self.advance();
                Ok(Binder::Wildcard(span))
            }
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.advance();
                Ok(Binder::Named(name, span))
            }
            other => Err(SpecError::new(
                format!("expected variable name or `_`, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn formula(&mut self) -> Result<FormulaAst, SpecError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<FormulaAst, SpecError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::OrOr {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = FormulaAst::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<FormulaAst, SpecError> {
        let mut lhs = self.unary()?;
        while self.peek() == &TokenKind::AndAnd {
            self.advance();
            let rhs = self.unary()?;
            lhs = FormulaAst::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<FormulaAst, SpecError> {
        if self.peek() == &TokenKind::Bang {
            let span = self.advance().span;
            let inner = self.unary()?;
            let full = span.cover(inner.span());
            return Ok(FormulaAst::Not(Box::new(inner), full));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<FormulaAst, SpecError> {
        match self.peek().clone() {
            // `true`/`false` are both nullary formulas and boolean literals;
            // a following comparison operator disambiguates.
            TokenKind::True if !self.next_is_cmp() => {
                let span = self.advance().span;
                Ok(FormulaAst::True(span))
            }
            TokenKind::False if !self.next_is_cmp() => {
                let span = self.advance().span;
                Ok(FormulaAst::False(span))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.formula()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            _ => self.comparison(),
        }
    }

    /// Is the token *after* the current one a comparison operator?
    fn next_is_cmp(&self) -> bool {
        matches!(
            self.tokens.get(self.pos + 1).map(|t| &t.kind),
            Some(
                TokenKind::EqEq
                    | TokenKind::NotEq
                    | TokenKind::Lt
                    | TokenKind::Le
                    | TokenKind::Gt
                    | TokenKind::Ge
            )
        )
    }

    fn comparison(&mut self) -> Result<FormulaAst, SpecError> {
        let lhs = self.term()?;
        let op = match self.peek() {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(SpecError::new(
                    format!("expected comparison operator, found {other}"),
                    self.peek_span(),
                ));
            }
        };
        self.advance();
        let rhs = self.term()?;
        let span = lhs.span().cover(rhs.span());
        Ok(FormulaAst::Cmp { op, lhs, rhs, span })
    }

    fn term(&mut self) -> Result<TermAst, SpecError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok(TermAst::Var(name, span))
            }
            TokenKind::Int(i) => {
                let span = self.advance().span;
                Ok(TermAst::Lit(Value::Int(i), span))
            }
            TokenKind::Str(s) => {
                let span = self.advance().span;
                Ok(TermAst::Lit(Value::str(s), span))
            }
            TokenKind::Nil => {
                let span = self.advance().span;
                Ok(TermAst::Lit(Value::Nil, span))
            }
            TokenKind::True => {
                let span = self.advance().span;
                Ok(TermAst::Lit(Value::Bool(true), span))
            }
            TokenKind::False => {
                let span = self.advance().span;
                Ok(TermAst::Lit(Value::Bool(false), span))
            }
            other => Err(SpecError::new(
                format!("expected a variable or literal, found {other}"),
                self.peek_span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DICT: &str = r#"
        spec dictionary {
            method put(k, v) -> p;
            method get(k) -> v;
            method size() -> r;
            commute put(k1, v1) -> p1, put(k2, v2) -> p2
                when k1 != k2 || (v1 == p1 && v2 == p2);
            commute get(_) -> _, size() -> _ when true;
        }
    "#;

    #[test]
    fn parses_dictionary_structure() {
        let ast = parse_source(DICT).unwrap();
        assert_eq!(ast.name, "dictionary");
        assert_eq!(ast.methods.len(), 3);
        assert_eq!(ast.rules.len(), 2);
        assert_eq!(ast.methods[0].name, "put");
        assert_eq!(ast.methods[0].args, vec!["k", "v"]);
        assert_eq!(ast.methods[0].ret.as_deref(), Some("p"));
        assert_eq!(ast.methods[2].args.len(), 0);
    }

    #[test]
    fn operator_precedence_and_binds_tighter() {
        let ast = parse_source(
            "spec s { method m(a); commute m(x1), m(x2) when x1 != x2 || x1 != x2 && x1 != x2; }",
        )
        .unwrap();
        match &ast.rules[0].formula {
            FormulaAst::Or(_, rhs) => {
                assert!(matches!(**rhs, FormulaAst::And(_, _)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let ast = parse_source(
            "spec s { method m(a); commute m(x1), m(x2) when (x1 != x2 || x1 != x2) && x1 != x2; }",
        )
        .unwrap();
        assert!(matches!(ast.rules[0].formula, FormulaAst::And(_, _)));
    }

    #[test]
    fn not_parses_prefix() {
        let ast = parse_source(
            "spec s { method m(a) -> r; commute m(x1) -> r1, m(_) when !(x1 == r1); }",
        )
        .unwrap();
        assert!(matches!(ast.rules[0].formula, FormulaAst::Not(_, _)));
    }

    #[test]
    fn pattern_without_arrow_gets_wildcard_return() {
        let ast =
            parse_source("spec s { method m(a); commute m(x1), m(x2) when x1 != x2; }").unwrap();
        assert!(matches!(ast.rules[0].first.ret, Binder::Wildcard(_)));
    }

    #[test]
    fn literals_in_formulas() {
        let ast = parse_source(
            r#"spec s { method m(a); commute m(x1), m(_) when x1 == 3 || x1 == "key" || x1 == nil; }"#,
        )
        .unwrap();
        // Just verify it parsed into a nested Or.
        assert!(matches!(ast.rules[0].formula, FormulaAst::Or(_, _)));
    }

    #[test]
    fn multi_spec_files() {
        let specs = parse_source_multi("spec a { method m(); } spec b { method n(); }").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].name, "b");
        assert!(parse_source("spec a { } spec b { }").is_err());
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_source("spec s { method m() }").unwrap_err();
        assert!(err.message().contains("`;`"), "{err}");
    }

    #[test]
    fn error_on_missing_when() {
        let err = parse_source("spec s { method m(); commute m(), m() true; }").unwrap_err();
        assert!(err.message().contains("`when`"), "{err}");
    }

    #[test]
    fn error_on_bare_variable_as_formula() {
        let err = parse_source("spec s { method m(a); commute m(x), m(_) when x; }").unwrap_err();
        assert!(err.message().contains("comparison"), "{err}");
    }

    #[test]
    fn error_on_empty_input() {
        assert!(parse_source("").is_err());
        assert!(parse_source("   // just a comment").is_err());
    }

    #[test]
    fn error_messages_carry_spans() {
        let src = "spec s { method m(; }";
        let err = parse_source(src).unwrap_err();
        // Span points at the misplaced `;`.
        assert_eq!(
            &src[err.span().start as usize..err.span().end as usize],
            ";"
        );
    }
}
