//! Diagnostics for the specification language.

use std::error::Error;
use std::fmt;

/// A byte range within a specification source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering bytes `start..end`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn cover(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width span at `offset` (used for end-of-input errors).
    pub fn point(offset: u32) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The 1-based line and column of `span`'s start within `source`.
///
/// # Examples
///
/// ```
/// use crace_spec::{line_col, Span};
/// assert_eq!(line_col("ab\ncd", Span::new(3, 4)), (2, 1));
/// ```
pub fn line_col(source: &str, span: Span) -> (usize, usize) {
    let start = (span.start as usize).min(source.len());
    let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    (
        source[..start].matches('\n').count() + 1,
        start - line_start + 1,
    )
}

/// Maximum number of source lines a snippet renders before eliding.
const MAX_SNIPPET_LINES: usize = 6;

/// Renders the source lines covered by `span`, each followed by a caret
/// line marking the covered columns — the snippet half of a compiler-style
/// report (the header with the message and line/column is the caller's).
///
/// Spans that cross newlines (e.g. a whole multi-line `commute` rule) get
/// every covered line with its own caret run, so the markers always sit
/// under the text they refer to.
///
/// # Examples
///
/// ```
/// use crace_spec::{render_snippet, Span};
/// let snippet = render_snippet("let x\n  = y;", Span::new(4, 10));
/// assert_eq!(snippet, "  | let x\n  |     ^\n  |   = y;\n  | ^^^^\n");
/// ```
pub fn render_snippet(source: &str, span: Span) -> String {
    let start = (span.start as usize).min(source.len());
    let end = (span.end as usize).clamp(start, source.len());
    let mut out = String::new();
    let mut line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    let mut shown = 0usize;
    loop {
        let line_end = source[line_start..]
            .find('\n')
            .map_or(source.len(), |i| line_start + i);
        if shown == MAX_SNIPPET_LINES {
            out.push_str("  | …\n");
            break;
        }
        let line = &source[line_start..line_end];
        let from = start.clamp(line_start, line_end) - line_start;
        let to = end.clamp(line_start, line_end) - line_start;
        out.push_str(&format!("  | {line}\n"));
        out.push_str(&format!(
            "  | {}{}\n",
            " ".repeat(from),
            "^".repeat((to - from).max(1))
        ));
        shown += 1;
        if end <= line_end || line_end == source.len() {
            break;
        }
        line_start = line_end + 1;
    }
    out
}

/// An error produced while lexing, parsing or resolving a specification.
///
/// The error carries the offending [`Span`]; [`SpecError::render`] produces
/// a compiler-style report with line/column information and a caret line
/// when given the original source.
///
/// # Examples
///
/// ```
/// use crace_spec::parse;
/// let src = "spec s { method m(; }";
/// let err = parse(src).unwrap_err();
/// let report = err.render(src);
/// assert!(report.contains("line 1"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    message: String,
    span: Span,
}

impl SpecError {
    /// Creates an error with a message anchored at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> SpecError {
        SpecError {
            message: message.into(),
            span,
        }
    }

    /// The error message (without location information).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders a compiler-style report against the original source text:
    /// message, `line:column`, and every offending line with caret markers
    /// (multi-line spans render each covered line — see [`render_snippet`]).
    pub fn render(&self, source: &str) -> String {
        let (line_no, col) = line_col(source, self.span);
        format!(
            "error: {} (line {line_no}, column {col})\n{}",
            self.message,
            render_snippet(source, self.span)
        )
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_spans() {
        let a = Span::new(3, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.cover(b), Span::new(3, 10));
        assert_eq!(b.cover(a), Span::new(3, 10));
    }

    #[test]
    fn render_points_at_offending_text() {
        let src = "first line\nsecond line here";
        // Span of "line" on the second line (offset 18..22).
        let err = SpecError::new("unexpected thing", Span::new(18, 22));
        let rendered = err.render(src);
        assert!(rendered.contains("line 2, column 8"), "{rendered}");
        assert!(rendered.contains("second line here"));
        assert!(rendered.contains("^^^^"));
    }

    #[test]
    fn render_multi_line_span_marks_every_line() {
        let src = "alpha\nbeta gamma\ndelta";
        // Span from "beta" through "delta" (offsets 6..22), crossing a newline.
        let err = SpecError::new("spread out", Span::new(6, 22));
        let rendered = err.render(src);
        assert!(rendered.contains("line 2, column 1"), "{rendered}");
        // Both covered lines appear, each with its own caret run; the caret
        // run for the middle line spans the whole line.
        assert!(
            rendered.contains("  | beta gamma\n  | ^^^^^^^^^^\n"),
            "{rendered}"
        );
        assert!(rendered.contains("  | delta\n  | ^^^^^\n"), "{rendered}");
        // The first line is not part of the span and must not be shown.
        assert!(!rendered.contains("alpha"), "{rendered}");
    }

    #[test]
    fn render_elides_very_tall_spans() {
        let src = (0..12)
            .map(|i| format!("line{i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let err = SpecError::new("tall", Span::new(0, src.len() as u32));
        let rendered = err.render(&src);
        assert!(rendered.contains("…"), "{rendered}");
        assert!(!rendered.contains("line7"), "{rendered}");
    }

    #[test]
    fn render_handles_span_at_end_of_input() {
        let src = "abc";
        let err = SpecError::new("unexpected end of input", Span::point(3));
        let rendered = err.render(src);
        assert!(rendered.contains("line 1, column 4"));
    }

    #[test]
    fn display_includes_span() {
        let err = SpecError::new("boom", Span::new(1, 2));
        assert_eq!(err.to_string(), "boom at 1..2");
        assert_eq!(err.message(), "boom");
    }
}
