//! Diagnostics for the specification language.

use std::error::Error;
use std::fmt;

/// A byte range within a specification source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering bytes `start..end`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn cover(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width span at `offset` (used for end-of-input errors).
    pub fn point(offset: u32) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced while lexing, parsing or resolving a specification.
///
/// The error carries the offending [`Span`]; [`SpecError::render`] produces
/// a compiler-style report with line/column information and a caret line
/// when given the original source.
///
/// # Examples
///
/// ```
/// use crace_spec::parse;
/// let src = "spec s { method m(; }";
/// let err = parse(src).unwrap_err();
/// let report = err.render(src);
/// assert!(report.contains("line 1"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    message: String,
    span: Span,
}

impl SpecError {
    /// Creates an error with a message anchored at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> SpecError {
        SpecError {
            message: message.into(),
            span,
        }
    }

    /// The error message (without location information).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders a compiler-style report against the original source text:
    /// message, `line:column`, the offending line, and a caret marker.
    pub fn render(&self, source: &str) -> String {
        let start = (self.span.start as usize).min(source.len());
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_no = source[..start].matches('\n').count() + 1;
        let col = start - line_start + 1;
        let line_end = source[start..]
            .find('\n')
            .map_or(source.len(), |i| start + i);
        let line = &source[line_start..line_end];
        let width = ((self.span.end as usize).min(line_end).max(start + 1) - start).max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "error: {} (line {line_no}, column {col})\n",
            self.message
        ));
        out.push_str(&format!("  | {line}\n"));
        out.push_str(&format!(
            "  | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        out
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_spans() {
        let a = Span::new(3, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.cover(b), Span::new(3, 10));
        assert_eq!(b.cover(a), Span::new(3, 10));
    }

    #[test]
    fn render_points_at_offending_text() {
        let src = "first line\nsecond line here";
        // Span of "line" on the second line (offset 18..22).
        let err = SpecError::new("unexpected thing", Span::new(18, 22));
        let rendered = err.render(src);
        assert!(rendered.contains("line 2, column 8"), "{rendered}");
        assert!(rendered.contains("second line here"));
        assert!(rendered.contains("^^^^"));
    }

    #[test]
    fn render_handles_span_at_end_of_input() {
        let src = "abc";
        let err = SpecError::new("unexpected end of input", Span::point(3));
        let rendered = err.render(src);
        assert!(rendered.contains("line 1, column 4"));
    }

    #[test]
    fn display_includes_span() {
        let err = SpecError::new("boom", Span::new(1, 2));
        assert_eq!(err.to_string(), "boom at 1..2");
        assert_eq!(err.message(), "boom");
    }
}
