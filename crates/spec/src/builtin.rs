//! Builtin commutativity specifications for common objects.
//!
//! [`dictionary`] is exactly Fig. 6 of the paper; the others follow the same
//! methodology for the objects the workloads use. All builtins are written
//! in the textual specification language (doubling as a test of the parser)
//! and all lie in the ECL fragment.

use crate::{parse, Spec};

/// Source text of the Fig. 6 dictionary specification.
pub const DICTIONARY_SRC: &str = r#"
spec dictionary {
    method put(k, v) -> p;
    method get(k) -> v;
    method size() -> r;

    commute put(k1, v1) -> p1, put(k2, v2) -> p2
        when k1 != k2 || (v1 == p1 && v2 == p2);
    commute put(k1, v1) -> p1, get(k2) -> v2
        when k1 != k2 || v1 == p1;
    commute put(k1, v1) -> p1, size() -> r
        when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
    commute get(_) -> _, get(_) -> _ when true;
    commute get(_) -> _, size() -> _ when true;
    commute size() -> _, size() -> _ when true;
}
"#;

/// Source text of the extended dictionary: Fig. 6 plus `remove` and
/// `contains_key`, which the evaluation workloads (MVStore, snitch) use.
///
/// `remove(k)/p` behaves as `put(k, nil)/p`, and its rules are obtained by
/// specializing the Fig. 6 put rules at `v = nil`. `contains_key` observes
/// only *presence*, so it tolerates puts that overwrite a present key with
/// a different value — a strictly more precise rule than `get`'s.
pub const DICTIONARY_EXT_SRC: &str = r#"
spec dictionary_ext {
    method put(k, v) -> p;
    method get(k) -> v;
    method size() -> r;
    method remove(k) -> p;
    method contains_key(k) -> b;

    commute put(k1, v1) -> p1, put(k2, v2) -> p2
        when k1 != k2 || (v1 == p1 && v2 == p2);
    commute put(k1, v1) -> p1, get(k2) -> v2
        when k1 != k2 || v1 == p1;
    commute put(k1, v1) -> p1, size() -> r
        when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
    commute put(k1, v1) -> p1, remove(k2) -> p2
        when k1 != k2 || (v1 == p1 && p2 == nil);
    commute put(k1, v1) -> p1, contains_key(k2) -> b2
        when k1 != k2 || (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);

    commute get(_) -> _, get(_) -> _ when true;
    commute get(_) -> _, size() -> _ when true;
    commute get(k1) -> v1, remove(k2) -> p2
        when k1 != k2 || p2 == nil;
    commute get(_) -> _, contains_key(_) -> _ when true;

    commute size() -> _, size() -> _ when true;
    commute size() -> _, remove(k2) -> p2 when p2 == nil;
    commute size() -> _, contains_key(_) -> _ when true;

    commute remove(k1) -> p1, remove(k2) -> p2
        when k1 != k2 || (p1 == nil && p2 == nil);
    commute remove(k1) -> p1, contains_key(k2) -> b2
        when k1 != k2 || p1 == nil;

    commute contains_key(_) -> _, contains_key(_) -> _ when true;
}
"#;

/// Source text of a mathematical set specification.
///
/// `add(x)/b` returns whether `x` was newly inserted; `remove(x)/b` whether
/// it was present. The shadow returns expose exactly the state the
/// commutativity conditions need (§4.1's "shadow return values").
pub const SET_SRC: &str = r#"
spec set {
    method add(x) -> b;
    method remove(x) -> b;
    method contains(x) -> b;
    method size() -> r;

    commute add(x1) -> b1, add(x2) -> b2
        when x1 != x2 || (b1 == false && b2 == false);
    commute add(x1) -> b1, remove(x2) -> b2
        when x1 != x2 || (b1 == false && b2 == false);
    commute add(x1) -> b1, contains(x2) -> _
        when x1 != x2 || b1 == false;
    commute add(x1) -> b1, size() -> _
        when b1 == false;

    commute remove(x1) -> b1, remove(x2) -> b2
        when x1 != x2 || (b1 == false && b2 == false);
    commute remove(x1) -> b1, contains(x2) -> _
        when x1 != x2 || b1 == false;
    commute remove(x1) -> b1, size() -> _
        when b1 == false;

    commute contains(_) -> _, contains(_) -> _ when true;
    commute contains(_) -> _, size() -> _ when true;
    commute size() -> _, size() -> _ when true;
}
"#;

/// Source text of a counter specification.
///
/// Increments and decrements return nothing, so they commute with each
/// other even though a read-write race detector sees every one of them as a
/// write — the canonical example of commutativity being coarser than
/// reads/writes.
pub const COUNTER_SRC: &str = r#"
spec counter {
    method inc();
    method dec();
    method read() -> v;

    commute inc(), inc() when true;
    commute inc(), dec() when true;
    commute dec(), dec() when true;
    commute inc(), read() -> _ when false;
    commute dec(), read() -> _ when false;
    commute read() -> _, read() -> _ when true;
}
"#;

/// Source text of an atomic register specification.
///
/// Note that `write/write` could be refined to "commute when they write the
/// same value" — but `x1 == x2` is a cross-action *equality*, which lies
/// outside ECL (§6.1 admits only cross-action `!=`), so the sound,
/// imprecise `false` is used (Definition 4.2 permits imprecision).
pub const REGISTER_SRC: &str = r#"
spec register {
    method read() -> v;
    method write(x);

    commute read() -> _, read() -> _ when true;
    commute read() -> _, write(_) when false;
    commute write(_), write(_) when false;
}
"#;

/// Source text of a FIFO queue specification. Almost nothing commutes —
/// queue operations are order-sensitive — making this the worst case for
/// any commutativity analysis.
pub const QUEUE_SRC: &str = r#"
spec queue {
    method enq(x);
    method deq() -> v;
    method len() -> r;

    commute enq(_), enq(_) when false;
    commute enq(_), deq() -> _ when false;
    commute enq(_), len() -> _ when false;
    commute deq() -> _, deq() -> _ when false;
    commute deq() -> _, len() -> _ when false;
    commute len() -> _, len() -> _ when true;
}
"#;

fn parse_builtin(src: &str) -> Spec {
    parse(src).expect("builtin specification must parse")
}

/// The dictionary specification of Fig. 6 (`put`, `get`, `size`).
pub fn dictionary() -> Spec {
    parse_builtin(DICTIONARY_SRC)
}

/// The extended dictionary specification (Fig. 6 plus `remove` and
/// `contains_key`).
pub fn dictionary_ext() -> Spec {
    parse_builtin(DICTIONARY_EXT_SRC)
}

/// A mathematical set (`add`, `remove`, `contains`, `size`).
pub fn set() -> Spec {
    parse_builtin(SET_SRC)
}

/// A counter (`inc`, `dec`, `read`).
pub fn counter() -> Spec {
    parse_builtin(COUNTER_SRC)
}

/// An atomic register (`read`, `write`).
pub fn register() -> Spec {
    parse_builtin(REGISTER_SRC)
}

/// A FIFO queue (`enq`, `deq`, `len`).
pub fn queue() -> Spec {
    parse_builtin(QUEUE_SRC)
}

/// The source text of the builtin specification called `name`, if any.
///
/// Names match the spec names used by [`all`]; tools that accept either a
/// builtin name or a file path (the CLI) use this to recover source text for
/// span-carrying diagnostics.
pub fn source(name: &str) -> Option<&'static str> {
    match name {
        "dictionary" => Some(DICTIONARY_SRC),
        "dictionary_ext" => Some(DICTIONARY_EXT_SRC),
        "set" => Some(SET_SRC),
        "counter" => Some(COUNTER_SRC),
        "register" => Some(REGISTER_SRC),
        "queue" => Some(QUEUE_SRC),
        _ => None,
    }
}

/// All builtin specifications.
pub fn all() -> Vec<Spec> {
    vec![
        dictionary(),
        dictionary_ext(),
        set(),
        counter(),
        register(),
        queue(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crace_model::{Action, ObjId, Value};

    fn act(spec: &Spec, method: &str, args: Vec<Value>, ret: Value) -> Action {
        let id = spec
            .method_id(method)
            .unwrap_or_else(|| panic!("method {method} not in spec {}", spec.name()));
        Action::new(ObjId(0), id, args, ret)
    }

    #[test]
    fn all_builtins_parse_are_ecl_and_complete() {
        for spec in all() {
            assert!(spec.is_ecl(), "{} is not ECL", spec.name());
            assert!(
                spec.missing_rules().is_empty(),
                "{} has missing rules: {:?}",
                spec.name(),
                spec.missing_rules()
            );
        }
    }

    #[test]
    fn all_builtins_round_trip_through_printer() {
        for spec in all() {
            let reparsed = parse(&spec.to_source()).unwrap();
            assert_eq!(reparsed.num_methods(), spec.num_methods());
            assert!(reparsed.is_ecl());
        }
    }

    #[test]
    fn dictionary_put_put_cases() {
        let d = dictionary();
        // Overwriting puts on the same key: race of the running example.
        let a = act(
            &d,
            "put",
            vec![Value::str("a.com"), Value::Int(1)],
            Value::Nil,
        );
        let b = act(
            &d,
            "put",
            vec![Value::str("a.com"), Value::Int(2)],
            Value::Int(1),
        );
        assert!(!d.commute(&a, &b));
        // Different keys commute.
        let c = act(
            &d,
            "put",
            vec![Value::str("b.com"), Value::Int(2)],
            Value::Nil,
        );
        assert!(d.commute(&a, &c));
        // Two no-op puts (v == p) on the same key commute.
        let r1 = act(&d, "put", vec![Value::Int(1), Value::Int(9)], Value::Int(9));
        let r2 = act(&d, "put", vec![Value::Int(1), Value::Int(9)], Value::Int(9));
        assert!(d.commute(&r1, &r2));
    }

    #[test]
    fn dictionary_put_get_cases() {
        let d = dictionary();
        let put = act(&d, "put", vec![Value::Int(5), Value::Int(7)], Value::Nil);
        let get_same = act(&d, "get", vec![Value::Int(5)], Value::Int(7));
        let get_other = act(&d, "get", vec![Value::Int(6)], Value::Nil);
        assert!(!d.commute(&put, &get_same));
        assert!(!d.commute(&get_same, &put)); // symmetric lookup
        assert!(d.commute(&put, &get_other));
        // A read-like put (v == p) commutes with any get.
        let noop_put = act(&d, "put", vec![Value::Int(5), Value::Int(7)], Value::Int(7));
        assert!(d.commute(&noop_put, &get_same));
    }

    #[test]
    fn dictionary_put_size_depends_only_on_resizing() {
        let d = dictionary();
        let size = act(&d, "size", vec![], Value::Int(3));
        // Insert into empty slot: resizes, conflicts with size().
        let grow = act(&d, "put", vec![Value::Int(1), Value::Int(2)], Value::Nil);
        assert!(!d.commute(&grow, &size));
        // Overwrite present key with non-nil: no resize, commutes.
        let overwrite = act(&d, "put", vec![Value::Int(1), Value::Int(2)], Value::Int(9));
        assert!(d.commute(&overwrite, &size));
        // put(k, nil) on a present key shrinks: conflicts.
        let shrink = act(&d, "put", vec![Value::Int(1), Value::Nil], Value::Int(9));
        assert!(!d.commute(&shrink, &size));
        // put(k, nil) on an absent key: no-op for size.
        let noop = act(&d, "put", vec![Value::Int(1), Value::Nil], Value::Nil);
        assert!(d.commute(&noop, &size));
    }

    #[test]
    fn dictionary_reads_always_commute() {
        let d = dictionary();
        let g1 = act(&d, "get", vec![Value::Int(1)], Value::Int(5));
        let g2 = act(&d, "get", vec![Value::Int(1)], Value::Int(5));
        let s = act(&d, "size", vec![], Value::Int(9));
        assert!(d.commute(&g1, &g2));
        assert!(d.commute(&g1, &s));
        assert!(d.commute(&s, &s));
    }

    #[test]
    fn dictionary_ext_remove_mirrors_put_nil() {
        let d = dictionary_ext();
        let size = act(&d, "size", vec![], Value::Int(0));
        // Removing a present key conflicts with size.
        let hit = act(&d, "remove", vec![Value::Int(1)], Value::Int(7));
        assert!(!d.commute(&hit, &size));
        // Removing an absent key is a no-op.
        let miss = act(&d, "remove", vec![Value::Int(1)], Value::Nil);
        assert!(d.commute(&miss, &size));
        // remove vs get on the same key: conflicts iff remove hit.
        let get = act(&d, "get", vec![Value::Int(1)], Value::Int(7));
        assert!(!d.commute(&hit, &get));
        assert!(d.commute(&miss, &get));
    }

    #[test]
    fn dictionary_ext_contains_is_presence_only() {
        let d = dictionary_ext();
        let contains = act(&d, "contains_key", vec![Value::Int(1)], Value::Bool(true));
        // Overwriting a present key with another non-nil value keeps
        // presence: commutes with contains_key — unlike get.
        let overwrite = act(&d, "put", vec![Value::Int(1), Value::Int(2)], Value::Int(9));
        assert!(d.commute(&overwrite, &contains));
        let get = act(&d, "get", vec![Value::Int(1)], Value::Int(9));
        assert!(!d.commute(&overwrite, &get));
        // Fresh insert changes presence: conflicts.
        let insert = act(&d, "put", vec![Value::Int(1), Value::Int(2)], Value::Nil);
        assert!(!d.commute(&insert, &contains));
    }

    #[test]
    fn set_add_semantics() {
        let s = set();
        let fresh1 = act(&s, "add", vec![Value::Int(1)], Value::Bool(true));
        let fresh2 = act(&s, "add", vec![Value::Int(1)], Value::Bool(true));
        let dup = act(&s, "add", vec![Value::Int(1)], Value::Bool(false));
        let size = act(&s, "size", vec![], Value::Int(1));
        assert!(!s.commute(&fresh1, &fresh2)); // both changed membership
        assert!(s.commute(&dup, &dup.clone())); // both no-ops
        assert!(!s.commute(&fresh1, &size));
        assert!(s.commute(&dup, &size));
        let other = act(&s, "add", vec![Value::Int(2)], Value::Bool(true));
        assert!(s.commute(&fresh1, &other));
    }

    #[test]
    fn counter_incs_commute_but_conflict_with_read() {
        let c = counter();
        let inc = act(&c, "inc", vec![], Value::Nil);
        let dec = act(&c, "dec", vec![], Value::Nil);
        let read = act(&c, "read", vec![], Value::Int(5));
        assert!(c.commute(&inc, &inc.clone()));
        assert!(c.commute(&inc, &dec));
        assert!(!c.commute(&inc, &read));
        assert!(c.commute(&read, &read.clone()));
    }

    #[test]
    fn register_writes_never_commute() {
        let r = register();
        let w1 = act(&r, "write", vec![Value::Int(1)], Value::Nil);
        let w2 = act(&r, "write", vec![Value::Int(1)], Value::Nil);
        let rd = act(&r, "read", vec![], Value::Int(1));
        assert!(!r.commute(&w1, &w2));
        assert!(!r.commute(&w1, &rd));
        assert!(r.commute(&rd, &rd.clone()));
    }

    #[test]
    fn queue_is_order_sensitive() {
        let q = queue();
        let enq = act(&q, "enq", vec![Value::Int(1)], Value::Nil);
        let deq = act(&q, "deq", vec![], Value::Int(1));
        let len = act(&q, "len", vec![], Value::Int(0));
        assert!(!q.commute(&enq, &enq.clone()));
        assert!(!q.commute(&enq, &deq));
        assert!(!q.commute(&deq, &len));
        assert!(q.commute(&len, &len.clone()));
    }
}
