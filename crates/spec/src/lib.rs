//! ECL commutativity specifications (§4.1 and §6.1 of the paper).
//!
//! A *logical commutativity specification* `Φ` gives, for every pair of
//! methods of an object, a formula `ϕ_{m1}^{m2}(x⃗₁; x⃗₂)` over the arguments
//! and return values of the two invocations; when the formula holds, the two
//! invocations commute. This crate provides:
//!
//! * a small **specification language** with a lexer, recursive-descent
//!   parser and resolver producing precise, span-carrying diagnostics
//!   (see [`parse`]),
//! * the **resolved formula representation** ([`Formula`], [`Pred`],
//!   [`Term`]) with evaluation against concrete actions,
//! * the **fragment classifier** implementing the grammars of §6.1:
//!   `LS` (Kulkarni et al.'s SIMPLE), `LB`, and their combination `ECL`
//!   (see [`Fragment`] and [`Formula::fragment`]),
//! * **β-substitution** ([`Formula::substitute`]) — plugging truth values of
//!   the LB atoms back into a formula, which by Lemma 6.4 leaves an `LS`
//!   residue ([`LsResidue`]); this is the engine of the ECL→access-point
//!   translation in `crace-core`,
//! * **builtin specifications** for the objects used in the paper and its
//!   evaluation: dictionaries (Fig. 6), sets, counters, registers and queues
//!   (see [`builtin`]).
//!
//! # Example: the dictionary specification of Fig. 6
//!
//! ```
//! use crace_spec::parse;
//!
//! let spec = parse(r#"
//!     spec dictionary {
//!         method put(k, v) -> p;
//!         method get(k) -> v;
//!         method size() -> r;
//!
//!         commute put(k1, v1) -> p1, put(k2, v2) -> p2
//!             when k1 != k2 || (v1 == p1 && v2 == p2);
//!         commute put(k1, v1) -> p1, get(k2) -> v2
//!             when k1 != k2 || v1 == p1;
//!         commute put(k1, v1) -> p1, size() -> r
//!             when (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
//!         commute get(_) -> _, get(_) -> _ when true;
//!         commute get(_) -> _, size() -> _ when true;
//!         commute size() -> _, size() -> _ when true;
//!     }
//! "#)?;
//! assert_eq!(spec.name(), "dictionary");
//! assert!(spec.is_ecl());
//! # Ok::<(), crace_spec::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builtin;
mod error;
mod formula;
mod lexer;
mod parser;
mod resolve;
mod spec;

pub use error::{line_col, render_snippet, Span, SpecError};
pub use formula::{CmpOp, Formula, Fragment, LsResidue, NormAtom, Pred, Side, Term};
pub use resolve::{is_symmetric, resolve_methods, resolve_rule, ResolvedRule};
pub use spec::{MethodRef, Spec, SpecBuilder};

/// Parses a single specification to its surface syntax tree without
/// resolving it.
///
/// This is the entry point for tools that apply their own policy to
/// whole-spec invariants — the spec linter resolves rule-by-rule with
/// [`resolve_rule`] so it can report *all* problems instead of stopping at
/// the first.
///
/// # Errors
///
/// Returns a [`SpecError`] for lexical and syntax errors only; name
/// resolution has not happened yet.
pub fn parse_ast(source: &str) -> Result<ast::SpecAst, SpecError> {
    parser::parse_source(source)
}

/// Parses and resolves a single specification from source text.
///
/// # Errors
///
/// Returns a [`SpecError`] with a source span for lexical errors, syntax
/// errors, unknown methods, arity mismatches, variables shared between the
/// two action patterns, and atoms that violate the ECL variable discipline
/// (e.g. cross-action equalities).
///
/// # Examples
///
/// ```
/// use crace_spec::parse;
/// let err = parse("spec s { commute a(), b() when true; }").unwrap_err();
/// assert!(err.to_string().contains("unknown method"));
/// ```
pub fn parse(source: &str) -> Result<Spec, SpecError> {
    let file = parser::parse_source(source)?;
    resolve::resolve(&file)
}

/// Parses a source file containing several `spec` blocks.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_all(source: &str) -> Result<Vec<Spec>, SpecError> {
    let file = parser::parse_source_multi(source)?;
    file.iter().map(resolve::resolve).collect()
}
